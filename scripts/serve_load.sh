#!/usr/bin/env bash
# Multi-client load smoke against a live flexagon_served daemon.
#
# Boots the daemon on a unix socket, waits for the readiness banner via a
# ping loop, drives two load runs (one exercising the operand cache with
# shared --ids, one sweeping the oracle), snapshots the per-tenant stats to
# a JSON artifact, and finally SIGTERMs the daemon asserting a clean
# graceful-drain exit (status 0) — the same lifecycle CI gates on.
#
# Usage: scripts/serve_load.sh [BIN_DIR] [STATS_JSON]
#   BIN_DIR    directory holding flexagon_served + serve_client
#              (default: target/release)
#   STATS_JSON where to write the stats snapshot
#              (default: target/serve_stats.json)
set -euo pipefail

BIN_DIR="${1:-target/release}"
STATS_JSON="${2:-target/serve_stats.json}"
SOCK="${TMPDIR:-/tmp}/flexagon-serve-$$.sock"
ADDR="unix:${SOCK}"

SERVED="${BIN_DIR}/flexagon_served"
CLIENT="${BIN_DIR}/serve_client"
for bin in "$SERVED" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "serve_load: missing binary $bin (build flexagon-serve first)" >&2
    exit 1
  fi
done

mkdir -p "$(dirname "$STATS_JSON")"

"$SERVED" --addr "$ADDR" --workers 2 --queue 64 &
SERVED_PID=$!
cleanup() {
  kill -9 "$SERVED_PID" 2>/dev/null || true
  rm -f "$SOCK"
}
trap cleanup EXIT

# Readiness: the daemon prints its banner once the socket accepts, but
# polling ping is racier-proof than scraping stdout.
for _ in $(seq 1 100); do
  if "$CLIENT" --addr "$ADDR" ping >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVED_PID" 2>/dev/null; then
    echo "serve_load: daemon died before accepting connections" >&2
    exit 1
  fi
  sleep 0.1
done
"$CLIENT" --addr "$ADDR" ping

# Run 1: cached-operand load — clients share matrix identities, so all but
# the first request per connection ride the operand cache.
"$CLIENT" --addr "$ADDR" load \
  --clients 4 --requests 6 --dim 64 --density 0.3 \
  --tenant smoke-cached --ids --seed 11

# Run 2: oracle load — every request sweeps all dataflows, heavier per-job
# work through the same scheduler.
"$CLIENT" --addr "$ADDR" load \
  --clients 2 --requests 3 --dim 48 --density 0.3 \
  --tenant smoke-oracle --strategy oracle --seed 23

"$CLIENT" --addr "$ADDR" stats --json "$STATS_JSON"
echo "serve_load: stats written to $STATS_JSON"

# Graceful drain on SIGTERM: in-flight work finishes, exit status is 0.
kill -TERM "$SERVED_PID"
if wait "$SERVED_PID"; then
  echo "serve_load: daemon drained cleanly on SIGTERM"
else
  status=$?
  echo "serve_load: daemon exited with status $status after SIGTERM" >&2
  exit 1
fi
trap - EXIT
rm -f "$SOCK"
