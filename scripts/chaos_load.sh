#!/usr/bin/env bash
# Chaos smoke against a live flexagon_served daemon with fault injection
# armed.
#
# Boots the daemon with --faults injecting a worker panic, an artificial
# delay, and a corrupted inbound frame every ~50 requests, then drives a
# 4-client load (200+ requests) with --tolerate-errors: typed error replies
# are expected, but every connection must survive and at least one request
# must succeed. Afterwards the stats snapshot must account for the faults
# (worker_panics >= 1, bad_frames >= 1), and the daemon must still drain
# cleanly on SIGTERM (exit 0) — a panicking worker pool must not cost the
# lifecycle contract.
#
# Usage: scripts/chaos_load.sh [BIN_DIR] [STATS_JSON]
#   BIN_DIR    directory holding flexagon_served + serve_client
#              (default: target/release)
#   STATS_JSON where to write the stats snapshot
#              (default: target/chaos_stats.json)
set -euo pipefail

BIN_DIR="${1:-target/release}"
STATS_JSON="${2:-target/chaos_stats.json}"
SOCK="${TMPDIR:-/tmp}/flexagon-chaos-$$.sock"
ADDR="unix:${SOCK}"
FAULTS="panic=50,slow=47:5,corrupt=53"

SERVED="${BIN_DIR}/flexagon_served"
CLIENT="${BIN_DIR}/serve_client"
for bin in "$SERVED" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "chaos_load: missing binary $bin (build flexagon-serve first)" >&2
    exit 1
  fi
done

mkdir -p "$(dirname "$STATS_JSON")"

"$SERVED" --addr "$ADDR" --workers 2 --queue 64 --faults "$FAULTS" &
SERVED_PID=$!
cleanup() {
  kill -9 "$SERVED_PID" 2>/dev/null || true
  rm -f "$SOCK"
}
trap cleanup EXIT

# Readiness: poll ping until the socket answers. Control frames count
# toward the corruption counter too, so a ping may legitimately get a
# bad_request reply (nonzero exit) — only daemon death is fatal here.
for _ in $(seq 1 100); do
  if "$CLIENT" --addr "$ADDR" ping >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVED_PID" 2>/dev/null; then
    echo "chaos_load: daemon died before accepting connections" >&2
    exit 1
  fi
  sleep 0.1
done

# 4 clients x 52 requests = 208: at least 3-4 injections of each fault
# kind. --tolerate-errors accepts typed error replies (the panicked and
# corrupted requests) but still fails on any connection-level error and
# requires at least one success.
"$CLIENT" --addr "$ADDR" load \
  --clients 4 --requests 52 --dim 48 --density 0.3 \
  --tenant chaos --seed 17 --tolerate-errors

# The stats frame itself can be the corrupted one; retry the snapshot.
stats_ok=0
for _ in $(seq 1 5); do
  if "$CLIENT" --addr "$ADDR" stats --json "$STATS_JSON" >/dev/null 2>&1; then
    stats_ok=1
    break
  fi
  sleep 0.1
done
if [[ "$stats_ok" != 1 ]]; then
  echo "chaos_load: stats snapshot failed" >&2
  exit 1
fi
echo "chaos_load: stats written to $STATS_JSON"

# The snapshot must show the faults were injected AND survived: caught
# worker panics and rejected corrupted frames, with completed requests
# alongside them.
get_counter() {
  sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" "$STATS_JSON" | head -n 1
}
PANICS="$(get_counter worker_panics)"
BAD_FRAMES="$(get_counter bad_frames)"
COMPLETED="$(get_counter completed)"
echo "chaos_load: worker_panics=${PANICS:-?} bad_frames=${BAD_FRAMES:-?} completed=${COMPLETED:-?}"
if [[ -z "$PANICS" || "$PANICS" -lt 1 ]]; then
  echo "chaos_load: expected >=1 caught worker panic in stats" >&2
  exit 1
fi
if [[ -z "$BAD_FRAMES" || "$BAD_FRAMES" -lt 1 ]]; then
  echo "chaos_load: expected >=1 bad frame in stats" >&2
  exit 1
fi
if [[ -z "$COMPLETED" || "$COMPLETED" -lt 100 ]]; then
  echo "chaos_load: expected >=100 completed requests, got ${COMPLETED:-0}" >&2
  exit 1
fi

# Graceful drain on SIGTERM: in-flight work finishes, exit status is 0 —
# even after the worker pool has caught panics.
kill -TERM "$SERVED_PID"
if wait "$SERVED_PID"; then
  echo "chaos_load: daemon drained cleanly on SIGTERM after chaos"
else
  status=$?
  echo "chaos_load: daemon exited with status $status after SIGTERM" >&2
  exit 1
fi
trap - EXIT
rm -f "$SOCK"
