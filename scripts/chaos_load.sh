#!/usr/bin/env bash
# Chaos smoke against a live flexagon_served daemon with fault injection
# armed.
#
# Boots the daemon with --faults injecting a worker panic, an artificial
# delay, and a corrupted inbound frame every ~50 requests, then drives a
# 4-client load (200+ requests) with --tolerate-errors: typed error replies
# are expected, but every connection must survive and at least one request
# must succeed. Afterwards the stats snapshot must account for the faults
# (worker_panics >= 1, bad_frames >= 1), and the daemon must still drain
# cleanly on SIGTERM (exit 0) — a panicking worker pool must not cost the
# lifecycle contract.
#
# A second leg then drives a small-queue daemon past capacity with short
# end-to-end deadlines: overload must surface as *typed* shedding
# (`queue_full` / `overloaded` / `timeout` replies on live connections,
# never dropped ones), the outcome counters must reconcile exactly with
# the number of requests issued, and SIGTERM must still drain to exit 0.
#
# Usage: scripts/chaos_load.sh [BIN_DIR] [STATS_JSON]
#   BIN_DIR    directory holding flexagon_served + serve_client
#              (default: target/release)
#   STATS_JSON where to write the stats snapshot
#              (default: target/chaos_stats.json; the overload leg writes
#              a second snapshot next to it with an .overload.json suffix)
set -euo pipefail

BIN_DIR="${1:-target/release}"
STATS_JSON="${2:-target/chaos_stats.json}"
OVERLOAD_JSON="${STATS_JSON%.json}.overload.json"
SOCK="${TMPDIR:-/tmp}/flexagon-chaos-$$.sock"
ADDR="unix:${SOCK}"
FAULTS="panic=50,slow=47:5,corrupt=53"

SERVED="${BIN_DIR}/flexagon_served"
CLIENT="${BIN_DIR}/serve_client"
for bin in "$SERVED" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "chaos_load: missing binary $bin (build flexagon-serve first)" >&2
    exit 1
  fi
done

mkdir -p "$(dirname "$STATS_JSON")"

"$SERVED" --addr "$ADDR" --workers 2 --queue 64 --faults "$FAULTS" &
SERVED_PID=$!
cleanup() {
  kill -9 "$SERVED_PID" 2>/dev/null || true
  rm -f "$SOCK"
}
trap cleanup EXIT

# Readiness: poll ping until the socket answers. Control frames count
# toward the corruption counter too, so a ping may legitimately get a
# bad_request reply (nonzero exit) — only daemon death is fatal here.
for _ in $(seq 1 100); do
  if "$CLIENT" --addr "$ADDR" ping >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVED_PID" 2>/dev/null; then
    echo "chaos_load: daemon died before accepting connections" >&2
    exit 1
  fi
  sleep 0.1
done

# 4 clients x 52 requests = 208: at least 3-4 injections of each fault
# kind. --tolerate-errors accepts typed error replies (the panicked and
# corrupted requests) but still fails on any connection-level error and
# requires at least one success.
"$CLIENT" --addr "$ADDR" load \
  --clients 4 --requests 52 --dim 48 --density 0.3 \
  --tenant chaos --seed 17 --tolerate-errors

# The stats frame itself can be the corrupted one; retry the snapshot.
stats_ok=0
for _ in $(seq 1 5); do
  if "$CLIENT" --addr "$ADDR" stats --json "$STATS_JSON" >/dev/null 2>&1; then
    stats_ok=1
    break
  fi
  sleep 0.1
done
if [[ "$stats_ok" != 1 ]]; then
  echo "chaos_load: stats snapshot failed" >&2
  exit 1
fi
echo "chaos_load: stats written to $STATS_JSON"

# The snapshot must show the faults were injected AND survived: caught
# worker panics and rejected corrupted frames, with completed requests
# alongside them.
get_counter() {
  sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" "$STATS_JSON" | head -n 1
}
PANICS="$(get_counter worker_panics)"
BAD_FRAMES="$(get_counter bad_frames)"
COMPLETED="$(get_counter completed)"
echo "chaos_load: worker_panics=${PANICS:-?} bad_frames=${BAD_FRAMES:-?} completed=${COMPLETED:-?}"
if [[ -z "$PANICS" || "$PANICS" -lt 1 ]]; then
  echo "chaos_load: expected >=1 caught worker panic in stats" >&2
  exit 1
fi
if [[ -z "$BAD_FRAMES" || "$BAD_FRAMES" -lt 1 ]]; then
  echo "chaos_load: expected >=1 bad frame in stats" >&2
  exit 1
fi
if [[ -z "$COMPLETED" || "$COMPLETED" -lt 100 ]]; then
  echo "chaos_load: expected >=100 completed requests, got ${COMPLETED:-0}" >&2
  exit 1
fi

# Graceful drain on SIGTERM: in-flight work finishes, exit status is 0 —
# even after the worker pool has caught panics.
kill -TERM "$SERVED_PID"
if wait "$SERVED_PID"; then
  echo "chaos_load: daemon drained cleanly on SIGTERM after chaos"
else
  status=$?
  echo "chaos_load: daemon exited with status $status after SIGTERM" >&2
  exit 1
fi
rm -f "$SOCK"

# ---------------------------------------------------------------------------
# Overload leg: a fresh daemon with a tiny queue, one worker, and a 12 ms
# injected service floor (slow=1:12 delays every job), driven past capacity.
# Phase 1 saturates the queue with feasible 150 ms deadlines: completions,
# queue_full rejections and deadline timeouts/cancellations all on live
# connections. Phase 2 issues deadlines (6 ms) below the service floor —
# the admission controller has learned the cost rate from phase 1's
# completions, so these are shed with a typed `overloaded` at the door.
# Every one of the 170 requests must be accounted for exactly once in the
# outcome counters, and the daemon must still drain to exit 0.
SOCK2="${TMPDIR:-/tmp}/flexagon-overload-$$.sock"
ADDR2="unix:${SOCK2}"
P1_CLIENTS=6; P1_REQUESTS=25
P2_CLIENTS=2; P2_REQUESTS=10

"$SERVED" --addr "$ADDR2" --workers 1 --queue 4 --faults "slow=1:12" &
SERVED2_PID=$!
cleanup2() {
  kill -9 "$SERVED2_PID" 2>/dev/null || true
  rm -f "$SOCK2"
}
trap cleanup2 EXIT

for _ in $(seq 1 100); do
  if "$CLIENT" --addr "$ADDR2" ping >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVED2_PID" 2>/dev/null; then
    echo "chaos_load: overload daemon died before accepting connections" >&2
    exit 1
  fi
  sleep 0.1
done

# Phase 1: 6 serial clients against 1 worker + 4 queue slots. Must exit 0:
# at least one completion, typed errors tolerated, no connection drops.
"$CLIENT" --addr "$ADDR2" load \
  --clients "$P1_CLIENTS" --requests "$P1_REQUESTS" --dim 48 --density 0.3 \
  --tenant overload --seed 23 --timeout-ms 150 --retries 0 --tolerate-errors

# Phase 2: deadlines below the service floor. Expect every reply to be a
# typed `overloaded`; serve_client then exits nonzero only because zero
# requests completed, so capture the output and assert the failure mode
# is shedding, not dropped connections.
P2_OUT="$("$CLIENT" --addr "$ADDR2" load \
  --clients "$P2_CLIENTS" --requests "$P2_REQUESTS" --dim 48 --density 0.3 \
  --tenant overload --seed 29 --timeout-ms 6 --retries 0 --tolerate-errors 2>&1 || true)"
echo "$P2_OUT" | tail -n 3
if echo "$P2_OUT" | grep -Eq "serve_client: (connect|request:)"; then
  echo "chaos_load: overload phase dropped a connection:" >&2
  echo "$P2_OUT" | grep -E "serve_client: (connect|request:)" >&2
  exit 1
fi
if ! echo "$P2_OUT" | grep -q "tolerated: "; then
  echo "chaos_load: expected typed shed/timeout replies in the overload phase" >&2
  exit 1
fi

if ! "$CLIENT" --addr "$ADDR2" stats --json "$OVERLOAD_JSON" >/dev/null 2>&1; then
  echo "chaos_load: overload stats snapshot failed" >&2
  exit 1
fi
echo "chaos_load: overload stats written to $OVERLOAD_JSON"

# Exact reconciliation: one outcome per issued request, no more, no less.
# Top-level completed/cancelled/shed are daemon-wide aggregates;
# timed_out/rejected/failed come from the single `overload` tenant entry
# (first match wins, and this daemon serves one tenant).
ocount() {
  sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" "$OVERLOAD_JSON" | head -n 1
}
O_COMPLETED="$(ocount completed)"
O_CANCELLED="$(ocount cancelled)"
O_SHED="$(ocount shed)"
O_TIMED_OUT="$(ocount timed_out)"
O_REJECTED="$(ocount rejected)"
O_FAILED="$(ocount failed)"
O_HIGH_WATER="$(ocount queue_depth_high_water)"
ISSUED=$((P1_CLIENTS * P1_REQUESTS + P2_CLIENTS * P2_REQUESTS))
ACCOUNTED=$((O_COMPLETED + O_CANCELLED + O_SHED + O_TIMED_OUT + O_REJECTED + O_FAILED))
echo "chaos_load: overload outcomes: completed=$O_COMPLETED timed_out=$O_TIMED_OUT \
cancelled=$O_CANCELLED rejected=$O_REJECTED shed=$O_SHED failed=$O_FAILED \
high_water=$O_HIGH_WATER (issued=$ISSUED)"
if [[ "$ACCOUNTED" -ne "$ISSUED" ]]; then
  echo "chaos_load: outcome counters ($ACCOUNTED) do not reconcile with issued requests ($ISSUED)" >&2
  exit 1
fi
if [[ "$((O_SHED + O_TIMED_OUT + O_CANCELLED + O_REJECTED))" -lt 1 ]]; then
  echo "chaos_load: expected at least one typed shed/timeout under overload" >&2
  exit 1
fi
if [[ "$O_FAILED" -ne 0 ]]; then
  echo "chaos_load: unexpected failed jobs under overload (no panic fault armed)" >&2
  exit 1
fi

# The overloaded daemon must still honor the lifecycle contract.
kill -TERM "$SERVED2_PID"
if wait "$SERVED2_PID"; then
  echo "chaos_load: overload daemon drained cleanly on SIGTERM"
else
  status=$?
  echo "chaos_load: overload daemon exited with status $status after SIGTERM" >&2
  exit 1
fi
trap - EXIT
rm -f "$SOCK2"
