//! The parallel-execution determinism guarantee, end to end: with a fixed
//! shard grain, the worker count must never change a byte of any execution
//! report or output matrix — across all six dataflows and the generator
//! families of `gen::scenario_sweep` (R-MAT skew, banded locality,
//! block-sparse pruning, exact-nnz extremes, cross-family products).
//!
//! This is the contract that makes intra-layer parallel simulation safe to
//! enable anywhere: the band decomposition is a pure function of the
//! operand structure and the grain, each band is an independent
//! sub-execution, and the reduction runs in band order — so threads only
//! change wall clock, never results.

use flexagon::core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon, SimdMode};
use flexagon::sparse::gen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &flexagon::sparse::CompressedMatrix,
    b: &flexagon::sparse::CompressedMatrix,
    df: Dataflow,
) -> flexagon::core::Result<flexagon::core::RunOutput> {
    accel
        .execute(flexagon::core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

/// One affordable representative per generator family keeps the debug
/// tier-1 runtime bounded while covering every structure class the sweep
/// generates.
fn representative_scenarios() -> Vec<gen::Scenario> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1E_CA60);
    let mut picked: Vec<gen::Scenario> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for s in gen::scenario_sweep(&mut rng) {
        let family = s.name.split('/').next().expect("family prefix").to_string();
        if seen.contains(&family) || s.a.nnz() + s.b.nnz() > 14_000 {
            continue;
        }
        seen.insert(family);
        picked.push(s);
    }
    assert!(
        picked.len() >= 4,
        "the sweep should offer small scenarios across families, got {:?}",
        picked.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    picked
}

#[test]
fn sharded_execution_is_byte_identical_across_worker_counts() {
    for s in representative_scenarios() {
        // A grain that yields a handful of bands per dataflow, so the
        // parallel path genuinely splits and reduces.
        let grain = (s.a.nnz() / 6).max(1);
        let run_all = |workers: usize| -> String {
            let mut cfg = AcceleratorConfig::table5();
            cfg.engine = cfg.engine.sharded(grain, workers);
            let accel = Flexagon::new(cfg);
            Dataflow::ALL
                .iter()
                .map(|&df| {
                    let out = run_df(&accel, &s.a, &s.b, df).expect("scenario run");
                    format!(
                        "{df}:{}:{}",
                        serde_json::to_string(&out.report).expect("report"),
                        serde_json::to_string(&out.c).expect("matrix")
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let sequential = run_all(1);
        for workers in [2usize, 3, 7] {
            assert_eq!(
                sequential,
                run_all(workers),
                "{} diverged at {workers} workers (grain {grain})",
                s.name
            );
        }
    }
}

#[test]
fn simd_and_sharding_compose_byte_identically() {
    // The SIMD kernel layer must be invisible in every report and output
    // byte, and must stay invisible when composed with band sharding:
    // {Auto, Scalar} x {1 worker, 4 workers} all produce one answer. (The
    // CI golden matrix additionally crosses the FLEXAGON_SIMD environment
    // override with worker counts across full golden_reports runs; this
    // in-process form covers the EngineConfig knob.)
    for s in representative_scenarios().into_iter().take(3) {
        let grain = (s.a.nnz() / 6).max(1);
        let run_all = |simd: SimdMode, workers: usize| -> String {
            let mut cfg = AcceleratorConfig::table5();
            cfg.engine = cfg.engine.sharded(grain, workers);
            cfg.engine.simd = simd;
            let accel = Flexagon::new(cfg);
            Dataflow::ALL
                .iter()
                .map(|&df| {
                    let out = run_df(&accel, &s.a, &s.b, df).expect("scenario run");
                    format!(
                        "{df}:{}:{}",
                        serde_json::to_string(&out.report).expect("report"),
                        serde_json::to_string(&out.c).expect("matrix")
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let reference = run_all(SimdMode::Auto, 1);
        for (simd, workers) in [
            (SimdMode::Auto, 4),
            (SimdMode::Scalar, 1),
            (SimdMode::Scalar, 4),
        ] {
            assert_eq!(
                reference,
                run_all(simd, workers),
                "{} diverged at simd {simd:?} x {workers} workers",
                s.name
            );
        }
    }
}

#[test]
fn sharding_grain_disabled_matches_defaults() {
    // The default engine (grain 0) and an explicit single-band grain must
    // agree with each other — the sharded machinery collapses exactly onto
    // the classic sequential path.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = gen::random(48, 64, 0.2, flexagon::sparse::MajorOrder::Row, &mut rng);
    let b = gen::random(64, 40, 0.25, flexagon::sparse::MajorOrder::Row, &mut rng);
    let default_accel = Flexagon::with_defaults();
    let mut cfg = AcceleratorConfig::table5();
    cfg.engine = cfg.engine.sharded(usize::MAX, 4);
    let one_band = Flexagon::new(cfg);
    for df in Dataflow::ALL {
        let d = run_df(&default_accel, &a, &b, df).expect("default run");
        let s = run_df(&one_band, &a, &b, df).expect("one-band run");
        assert_eq!(
            serde_json::to_string(&d.report).unwrap(),
            serde_json::to_string(&s.report).unwrap(),
            "{df}"
        );
        assert_eq!(d.c, s.c, "{df}");
    }
}
