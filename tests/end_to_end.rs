//! Cross-crate integration tests: the full stack from workload generation
//! through simulation to area models, exercised the way the harness uses it.

use flexagon::core::{
    mapper, transitions, Accelerator, CpuMkl, Dataflow, Flexagon, GammaLike, SigmaLike, SparchLike,
};
use flexagon::dnn::{table6, DnnModel};
use flexagon::rtl::{perf_per_area, table8_rows, AcceleratorKind};
use flexagon::sparse::{reference, DenseMatrix};

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &flexagon::sparse::CompressedMatrix,
    b: &flexagon::sparse::CompressedMatrix,
    df: Dataflow,
) -> flexagon::core::Result<flexagon::core::RunOutput> {
    accel
        .execute(flexagon::core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

/// A small Table 6 layer runs on all four accelerators and every result is
/// the true product.
#[test]
fn representative_layer_runs_everywhere() {
    let layer = table6::by_id("MB215").expect("table 6 layer");
    let mats = layer.spec.materialize(42);
    let want = DenseMatrix::from_compressed(&reference::spgemm(&mats.a, &mats.b).unwrap());

    let flexagon = Flexagon::with_defaults();
    let (best_df, best) = mapper::oracle(&flexagon, &mats.a, &mats.b).unwrap();
    assert!(DenseMatrix::from_compressed(&best.c).approx_eq(&want, 1e-1));

    let sigma = run_df(
        &SigmaLike::with_defaults(),
        &mats.a,
        &mats.b,
        Dataflow::InnerProductM,
    )
    .unwrap();
    let sparch = run_df(
        &SparchLike::with_defaults(),
        &mats.a,
        &mats.b,
        Dataflow::OuterProductM,
    )
    .unwrap();
    let gamma = run_df(
        &GammaLike::with_defaults(),
        &mats.a,
        &mats.b,
        Dataflow::GustavsonM,
    )
    .unwrap();
    for out in [&sigma, &sparch, &gamma] {
        assert!(DenseMatrix::from_compressed(&out.c).approx_eq(&want, 1e-1));
    }
    // Flexagon's oracle pick is at least as fast as every baseline.
    assert!(best.report.total_cycles <= sigma.report.total_cycles);
    assert!(best.report.total_cycles <= sparch.report.total_cycles);
    assert!(best.report.total_cycles <= gamma.report.total_cycles);
    // The paper groups MB215 with the Gustavson-friendly layers.
    assert_eq!(
        best_df.class(),
        Dataflow::GustavsonM.class(),
        "MB215 favours Gust"
    );
}

/// The CPU baseline is slower than every accelerator on a real layer.
#[test]
fn accelerators_beat_the_cpu() {
    let layer = table6::by_id("SQ11").expect("table 6 layer");
    let mats = layer.spec.materialize(42);
    let cpu = CpuMkl::with_defaults().run(&mats.a, &mats.b).unwrap();
    let (_, accel) = mapper::oracle(&Flexagon::with_defaults(), &mats.a, &mats.b).unwrap();
    let speedup = cpu.report.total_cycles as f64 / accel.report.total_cycles as f64;
    assert!(
        speedup > 5.0,
        "accelerator speed-up over CPU only {speedup:.1}x"
    );
}

/// A multi-layer chain planned with Table 4 never converts formats, and the
/// functional result matches the reference chain.
#[test]
fn three_layer_chain_without_conversions() {
    use flexagon::sparse::{gen, MajorOrder};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let x = gen::random(40, 48, 0.4, MajorOrder::Row, &mut rng);
    let w1 = gen::random(48, 56, 0.3, MajorOrder::Row, &mut rng);
    let w2 = gen::random(56, 32, 0.3, MajorOrder::Row, &mut rng);

    let plan = transitions::plan_chain(&[
        vec![Dataflow::InnerProductN, Dataflow::InnerProductM],
        vec![Dataflow::OuterProductM, Dataflow::OuterProductN],
    ])
    .expect("free plan exists");
    let accel = Flexagon::with_defaults();
    let l1 = run_df(&accel, &x, &w1.converted(plan[0].b_format()), plan[0]).unwrap();
    assert_eq!(l1.report.explicit_conversions, 0);
    assert_eq!(
        l1.c.order(),
        plan[1].a_format(),
        "chain is format-compatible"
    );
    let l2 = run_df(&accel, &l1.c, &w2.converted(plan[1].b_format()), plan[1]).unwrap();
    assert_eq!(l2.report.explicit_conversions, 0);

    let want = reference::spgemm(&reference::spgemm(&x, &w1).unwrap(), &w2).unwrap();
    assert!(l2.c.approx_eq(&want, 1e-1));
}

/// Fig. 18's computation: speed-ups divided by normalized areas, using the
/// calibrated Table 8 model.
#[test]
fn perf_per_area_pipeline() {
    let rows = table8_rows();
    let sigma_area = rows
        .iter()
        .find(|r| r.kind == AcceleratorKind::SigmaLike)
        .unwrap()
        .total()
        .area_mm2;
    let flexagon_area = rows
        .iter()
        .find(|r| r.kind == AcceleratorKind::Flexagon)
        .unwrap()
        .total()
        .area_mm2;
    // With a 2x speed-up, Flexagon's 25% extra area still wins on
    // efficiency — the paper's headline trade-off.
    let eff = perf_per_area(2.0, flexagon_area, sigma_area);
    assert!(eff > 1.5 && eff < 2.0, "eff = {eff}");
}

/// The oracle and heuristic mappers agree on clear-cut layers.
#[test]
fn mappers_agree_on_extremes() {
    let mb = table6::by_id("MB215").unwrap().spec.materialize(3);
    let accel = Flexagon::with_defaults();
    let (oracle_df, _) = mapper::oracle(&accel, &mb.a, &mb.b).unwrap();
    let heuristic_df = mapper::heuristic(accel.config(), &mb.a, &mb.b);
    assert_eq!(
        oracle_df.class(),
        heuristic_df.class(),
        "tiny-B layer is Gust territory"
    );
}

/// Whole-model execution stays functionally exact layer by layer.
#[test]
fn model_layers_all_verify() {
    // SqueezeNet's fire-module layers are the smallest real conv shapes in
    // the suite; verify a few under every M-stationary dataflow (keeping
    // debug-build runtime bounded).
    let model = DnnModel::squeezenet();
    let accel = Flexagon::with_defaults();
    for layer in model.layers.iter().skip(1).take(3) {
        let mats = layer.materialize(11);
        let want = reference::spgemm(&mats.a, &mats.b).unwrap();
        for df in Dataflow::M_STATIONARY {
            let out = run_df(&accel, &mats.a, &mats.b, df).unwrap();
            assert!(
                out.c.approx_eq(&want, 2e-1),
                "layer {} under {df}: functional mismatch",
                layer.name
            );
        }
    }
}
