//! Reports and configurations serialize to JSON — the interface downstream
//! tooling (plotting scripts, regression dashboards) consumes.

use flexagon::core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon};
use flexagon::sparse::{gen, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &flexagon::sparse::CompressedMatrix,
    b: &flexagon::sparse::CompressedMatrix,
    df: Dataflow,
) -> flexagon::core::Result<flexagon::core::RunOutput> {
    accel
        .execute(flexagon::core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

fn sample_report() -> flexagon::core::ExecutionReport {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = gen::random(16, 16, 0.4, MajorOrder::Row, &mut rng);
    let b = gen::random(16, 16, 0.4, MajorOrder::Row, &mut rng);
    run_df(
        &Flexagon::new(AcceleratorConfig::tiny()),
        &a,
        &b,
        Dataflow::OuterProductM,
    )
    .unwrap()
    .report
}

#[test]
fn execution_report_serializes_to_json() {
    let report = sample_report();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // The fields every consumer needs are present by name.
    for field in [
        "total_cycles",
        "phases",
        "traffic",
        "dram_read_bytes",
        "psum_onchip_bytes",
        "multiplications",
        "counters",
    ] {
        assert!(json.contains(field), "missing field {field} in:\n{json}");
    }
}

#[test]
fn accelerator_config_roundtrips_through_json() {
    let cfg = AcceleratorConfig::table5();
    let json = serde_json::to_string(&cfg).expect("config serializes");
    let back: AcceleratorConfig = serde_json::from_str(&json).expect("config deserializes");
    assert_eq!(cfg, back);
}

#[test]
fn dataflow_serializes_as_identifier() {
    let json = serde_json::to_string(&Dataflow::GustavsonM).unwrap();
    assert_eq!(json, "\"GustavsonM\"");
    let back: Dataflow = serde_json::from_str(&json).unwrap();
    assert_eq!(back, Dataflow::GustavsonM);
}

#[test]
fn compressed_matrix_roundtrips_through_json() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let m = gen::random(8, 9, 0.5, MajorOrder::Col, &mut rng);
    let json = serde_json::to_string(&m).unwrap();
    let back: flexagon::sparse::CompressedMatrix = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}
