//! Cross-crate property-based tests: for arbitrary sparse operands, every
//! dataflow on every accelerator computes the exact product, and the
//! system-level invariants hold.

use flexagon::core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon, MappingStrategy};
use flexagon::sparse::{CompressedMatrix, DenseMatrix, Element, Fiber, MajorOrder};
use proptest::prelude::*;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &flexagon::sparse::CompressedMatrix,
    b: &flexagon::sparse::CompressedMatrix,
    df: Dataflow,
) -> flexagon::core::Result<flexagon::core::RunOutput> {
    accel
        .execute(flexagon::core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

/// The per-instance regret bound recorded next to the accuracy floor in
/// `MAPPER_accuracy.json` (`thresholds.property_max_regret`), read and
/// parsed once (the property calls this per generated case).
fn recorded_property_regret_bound() -> f64 {
    static BOUND: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *BOUND.get_or_init(load_property_regret_bound)
}

fn load_property_regret_bound() -> f64 {
    struct Bound(f64);
    impl serde::Deserialize for Bound {
        fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
            let top = v
                .as_map()
                .ok_or_else(|| serde::DeError::new("expected an object"))?;
            let thresholds = serde::map_get(top, "thresholds")?
                .as_map()
                .ok_or_else(|| serde::DeError::new("expected thresholds object"))?;
            Ok(Bound(serde::Deserialize::from_value(serde::map_get(
                thresholds,
                "property_max_regret",
            )?)?))
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/MAPPER_accuracy.json");
    let text = std::fs::read_to_string(path).expect("MAPPER_accuracy.json is checked in");
    let Bound(b) = serde_json::from_str(&text).expect("thresholds.property_max_regret");
    assert!(b >= 1.0, "regret bound must be >= 1");
    b
}

/// Strategy: a small sparse matrix with arbitrary structure.
fn sparse_matrix(
    rows: std::ops::Range<u32>,
    cols: std::ops::Range<u32>,
) -> impl Strategy<Value = CompressedMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        let cells = (r * c) as usize;
        // A BTreeMap guarantees unique cell positions.
        proptest::collection::btree_map(0..cells, 0.5f32..1.5, 0..cells.min(120)).prop_map(
            move |entries| {
                let triplets: Vec<(u32, u32, f32)> = entries
                    .into_iter()
                    .map(|(p, v)| (p as u32 / c, p as u32 % c, v))
                    .collect();
                CompressedMatrix::from_triplets(r, c, &triplets, MajorOrder::Row)
                    .expect("generated triplets are unique and in range")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six dataflows on the tiny config equal the dense product.
    #[test]
    fn every_dataflow_computes_the_product(
        a in sparse_matrix(1..12, 1..12),
        bseed in 0u64..64,
    ) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 9, 0.4, MajorOrder::Row, &mut rng);
        let want = DenseMatrix::from_compressed(&a)
            .matmul(&DenseMatrix::from_compressed(&b))
            .unwrap();
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let out = run_df(&accel, &a, &b, df).unwrap();
            prop_assert!(
                DenseMatrix::from_compressed(&out.c).approx_eq(&want, 1e-2),
                "{df} mismatch"
            );
        }
    }

    /// Cycles, traffic and work are invariant under transposition duality:
    /// running df(N) on (A, B) costs exactly what df(M) costs on (Bᵀ, Aᵀ).
    #[test]
    fn n_stationary_duality(a in sparse_matrix(1..10, 1..10), bseed in 0u64..32) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 7, 0.5, MajorOrder::Row, &mut rng);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for (m_df, n_df) in [
            (Dataflow::InnerProductM, Dataflow::InnerProductN),
            (Dataflow::OuterProductM, Dataflow::OuterProductN),
            (Dataflow::GustavsonM, Dataflow::GustavsonN),
        ] {
            let n_run = run_df(&accel, &a, &b, n_df).unwrap();
            let bt = b.converted(n_df.b_format()).reinterpret_transposed();
            let at = a.converted(n_df.a_format()).reinterpret_transposed();
            let m_run = run_df(&accel, &bt, &at, m_df).unwrap();
            prop_assert_eq!(n_run.report.total_cycles, m_run.report.total_cycles);
            prop_assert_eq!(
                n_run.report.traffic.onchip_total(),
                m_run.report.traffic.onchip_total()
            );
        }
    }

    /// The output of any run is structurally valid and correctly shaped.
    #[test]
    fn outputs_are_well_formed(a in sparse_matrix(1..10, 1..10), bseed in 0u64..32) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 6, 0.3, MajorOrder::Row, &mut rng);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let out = run_df(&accel, &a, &b, df).unwrap();
            prop_assert!(out.c.validate().is_ok());
            prop_assert_eq!(out.c.order(), df.c_format());
            prop_assert_eq!(out.c.rows(), a.rows());
            prop_assert_eq!(out.c.cols(), b.cols());
            // Conservation: multiplications equal the work profile.
            prop_assert_eq!(out.report.multiplications, out.report.work.products);
        }
    }

    /// `Fixed(df)` is pure plumbing: its report and output are
    /// byte-identical to calling the engine with `df` directly.
    #[test]
    fn fixed_strategy_is_byte_identical_to_direct_run(
        a in sparse_matrix(1..12, 1..12),
        bseed in 0u64..64,
    ) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 8, 0.4, MajorOrder::Row, &mut rng);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let ex = accel
                .execute(
                    flexagon::core::ExecutionRequest::new(&a, &b)
                        .strategy(MappingStrategy::Fixed(df)),
                )
                .unwrap();
            let (chosen, strat) = (ex.dataflow, ex.output);
            let direct = run_df(&accel, &a, &b, df).unwrap();
            prop_assert_eq!(chosen, df);
            prop_assert_eq!(
                serde_json::to_string(&strat.report).unwrap(),
                serde_json::to_string(&direct.report).unwrap(),
                "{} report bytes differ", df
            );
            prop_assert_eq!(
                serde_json::to_string(&strat.c).unwrap(),
                serde_json::to_string(&direct.c).unwrap(),
                "{} output bytes differ", df
            );
        }
    }

    /// The calibrated heuristic never loses more than the recorded
    /// per-instance regret bound against the three-way oracle on randomly
    /// generated operands (Table 5 configuration — the domain the
    /// calibration is audited on; bound recorded in MAPPER_accuracy.json).
    #[test]
    fn heuristic_regret_stays_within_recorded_bound(
        dims in (16u32..96, 16u32..96, 16u32..96),
        da in 0.05f64..0.45,
        db in 0.05f64..0.45,
        seed in 0u64..1024,
    ) {
        let (m, k, n) = dims;
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
        let a = flexagon::sparse::gen::random(m, k, da, MajorOrder::Row, &mut rng);
        let b = flexagon::sparse::gen::random(k, n, db, MajorOrder::Row, &mut rng);
        let accel = Flexagon::with_defaults();
        let picked = flexagon::core::mapper::heuristic(accel.config(), &a, &b);
        let cycles = |df| run_df(&accel, &a, &b, df).unwrap().report.total_cycles;
        let measured = [
            cycles(Dataflow::InnerProductM),
            cycles(Dataflow::OuterProductM),
            cycles(Dataflow::GustavsonM),
        ];
        let best = *measured.iter().min().unwrap();
        let idx = Dataflow::M_STATIONARY.iter().position(|&d| d == picked).unwrap();
        let regret = measured[idx] as f64 / best as f64;
        let bound = recorded_property_regret_bound();
        prop_assert!(
            regret <= bound,
            "heuristic picked {} at {:.3}x regret (bound {:.2}x) on {}x{}x{} da {:.2} db {:.2}",
            picked, regret, bound, m, k, n, da, db
        );
    }

    /// Fibers survive arbitrary merge splits: merging any partition of a
    /// set of fibers accumulates to the same result.
    #[test]
    fn merge_is_partition_invariant(
        coords in proptest::collection::btree_set(0u32..40, 1..25),
        split in 1usize..5,
    ) {
        let elems: Vec<Element> =
            coords.iter().map(|&c| Element::new(c, c as f32 + 0.5)).collect();
        let whole = Fiber::from_sorted(elems.clone());
        // Partition round-robin into `split` fibers.
        let mut parts: Vec<Vec<Element>> = vec![Vec::new(); split];
        for (i, e) in elems.iter().enumerate() {
            parts[i % split].push(*e);
        }
        let fibers: Vec<Fiber> = parts.into_iter().map(Fiber::from_sorted).collect();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let (merged, _) = flexagon::sparse::merge::merge_accumulate(&views);
        prop_assert_eq!(merged, whole);
    }
}
