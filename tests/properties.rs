//! Cross-crate property-based tests: for arbitrary sparse operands, every
//! dataflow on every accelerator computes the exact product, and the
//! system-level invariants hold.

use flexagon::core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon};
use flexagon::sparse::{CompressedMatrix, DenseMatrix, Element, Fiber, MajorOrder};
use proptest::prelude::*;

/// Strategy: a small sparse matrix with arbitrary structure.
fn sparse_matrix(
    rows: std::ops::Range<u32>,
    cols: std::ops::Range<u32>,
) -> impl Strategy<Value = CompressedMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        let cells = (r * c) as usize;
        // A BTreeMap guarantees unique cell positions.
        proptest::collection::btree_map(0..cells, 0.5f32..1.5, 0..cells.min(120)).prop_map(
            move |entries| {
                let triplets: Vec<(u32, u32, f32)> = entries
                    .into_iter()
                    .map(|(p, v)| (p as u32 / c, p as u32 % c, v))
                    .collect();
                CompressedMatrix::from_triplets(r, c, &triplets, MajorOrder::Row)
                    .expect("generated triplets are unique and in range")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six dataflows on the tiny config equal the dense product.
    #[test]
    fn every_dataflow_computes_the_product(
        a in sparse_matrix(1..12, 1..12),
        bseed in 0u64..64,
    ) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 9, 0.4, MajorOrder::Row, &mut rng);
        let want = DenseMatrix::from_compressed(&a)
            .matmul(&DenseMatrix::from_compressed(&b))
            .unwrap();
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let out = accel.run(&a, &b, df).unwrap();
            prop_assert!(
                DenseMatrix::from_compressed(&out.c).approx_eq(&want, 1e-2),
                "{df} mismatch"
            );
        }
    }

    /// Cycles, traffic and work are invariant under transposition duality:
    /// running df(N) on (A, B) costs exactly what df(M) costs on (Bᵀ, Aᵀ).
    #[test]
    fn n_stationary_duality(a in sparse_matrix(1..10, 1..10), bseed in 0u64..32) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 7, 0.5, MajorOrder::Row, &mut rng);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for (m_df, n_df) in [
            (Dataflow::InnerProductM, Dataflow::InnerProductN),
            (Dataflow::OuterProductM, Dataflow::OuterProductN),
            (Dataflow::GustavsonM, Dataflow::GustavsonN),
        ] {
            let n_run = accel.run(&a, &b, n_df).unwrap();
            let bt = b.converted(n_df.b_format()).reinterpret_transposed();
            let at = a.converted(n_df.a_format()).reinterpret_transposed();
            let m_run = accel.run(&bt, &at, m_df).unwrap();
            prop_assert_eq!(n_run.report.total_cycles, m_run.report.total_cycles);
            prop_assert_eq!(
                n_run.report.traffic.onchip_total(),
                m_run.report.traffic.onchip_total()
            );
        }
    }

    /// The output of any run is structurally valid and correctly shaped.
    #[test]
    fn outputs_are_well_formed(a in sparse_matrix(1..10, 1..10), bseed in 0u64..32) {
        let k = a.cols();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(bseed);
        let b = flexagon::sparse::gen::random(k, 6, 0.3, MajorOrder::Row, &mut rng);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let out = accel.run(&a, &b, df).unwrap();
            prop_assert!(out.c.validate().is_ok());
            prop_assert_eq!(out.c.order(), df.c_format());
            prop_assert_eq!(out.c.rows(), a.rows());
            prop_assert_eq!(out.c.cols(), b.cols());
            // Conservation: multiplications equal the work profile.
            prop_assert_eq!(out.report.multiplications, out.report.work.products);
        }
    }

    /// Fibers survive arbitrary merge splits: merging any partition of a
    /// set of fibers accumulates to the same result.
    #[test]
    fn merge_is_partition_invariant(
        coords in proptest::collection::btree_set(0u32..40, 1..25),
        split in 1usize..5,
    ) {
        let elems: Vec<Element> =
            coords.iter().map(|&c| Element::new(c, c as f32 + 0.5)).collect();
        let whole = Fiber::from_sorted(elems.clone());
        // Partition round-robin into `split` fibers.
        let mut parts: Vec<Vec<Element>> = vec![Vec::new(); split];
        for (i, e) in elems.iter().enumerate() {
            parts[i % split].push(*e);
        }
        let fibers: Vec<Fiber> = parts.into_iter().map(Fiber::from_sorted).collect();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let (merged, _) = flexagon::sparse::merge::merge_accumulate(&views);
        prop_assert_eq!(merged, whole);
    }
}
