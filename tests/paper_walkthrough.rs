//! The paper's §3.2 walk-through: the example matrices of Figs. 5, 6 and 7
//! executed on a 4-multiplier accelerator, exactly as the paper draws them.
//!
//! A is 2x4 with elements {A01, A10, A12, A13}; B is 4x3 with elements
//! {B01, B02, B10, B12, B20, B30, B31, B32}; the product has the five
//! outputs {C00, C02, C10, C11, C12} the figures show emerging from the
//! tree.

use flexagon::core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon};
use flexagon::sparse::{CompressedMatrix, MajorOrder};

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &flexagon::sparse::CompressedMatrix,
    b: &flexagon::sparse::CompressedMatrix,
    df: Dataflow,
) -> flexagon::core::Result<flexagon::core::RunOutput> {
    accel
        .execute(flexagon::core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

/// The A matrix of Fig. 2/5/6/7 with distinguishable values.
fn paper_a() -> CompressedMatrix {
    CompressedMatrix::from_triplets(
        2,
        4,
        &[
            (0, 1, 2.0), // A01
            (1, 0, 3.0), // A10
            (1, 2, 5.0), // A12
            (1, 3, 7.0), // A13
        ],
        MajorOrder::Row,
    )
    .unwrap()
}

/// The B matrix of the walk-through.
fn paper_b() -> CompressedMatrix {
    CompressedMatrix::from_triplets(
        4,
        3,
        &[
            (0, 1, 1.0), // B01
            (0, 2, 2.0), // B02
            (1, 0, 3.0), // B10
            (1, 2, 4.0), // B12
            (2, 0, 5.0), // B20
            (3, 0, 6.0), // B30
            (3, 1, 7.0), // B31
            (3, 2, 8.0), // B32
        ],
        MajorOrder::Row,
    )
    .unwrap()
}

/// A 4-multiplier accelerator like the paper's pedagogical examples.
fn four_multiplier_accel() -> Flexagon {
    let mut cfg = AcceleratorConfig::table5();
    cfg.multipliers = 4;
    cfg.dn_bandwidth = 4;
    cfg.merge_bandwidth = 4;
    Flexagon::new(cfg)
}

/// The expected product, by hand:
///   C00 = A01*B10 = 6                  C02 = A01*B12 = 8
///   C10 = A12*B20 + A13*B30 = 67       C11 = A10*B01 + A13*B31 = 52
///   C12 = A10*B02 + A13*B32 = 62
fn check_product(c: &CompressedMatrix) {
    assert_eq!(c.get(0, 0), 6.0, "C00");
    assert_eq!(c.get(0, 1), 0.0, "C01 is structurally zero");
    assert_eq!(c.get(0, 2), 8.0, "C02");
    assert_eq!(c.get(1, 0), 67.0, "C10");
    assert_eq!(c.get(1, 1), 52.0, "C11");
    assert_eq!(c.get(1, 2), 62.0, "C12");
    assert_eq!(c.nnz(), 5, "the figures show exactly five outputs");
}

#[test]
fn fig5_inner_product_walkthrough() {
    let accel = four_multiplier_accel();
    let out = run_df(&accel, &paper_a(), &paper_b(), Dataflow::InnerProductM).unwrap();
    check_product(&out.c);
    let r = &out.report;
    // All four A elements fit the 4-multiplier array: one stationary tile.
    assert_eq!(r.tiles, 1);
    // "This dataflow obtains the best performance [on this example]" —
    // and produces no psums at all.
    assert_eq!(r.traffic.psum_onchip_bytes, 0);
    assert_eq!(r.phases.merge_cycles(), 0);
    // 8 effectual products — the same multiplications every dataflow
    // performs, discovered here through intersection.
    assert_eq!(r.multiplications, 8);
}

#[test]
fn fig6_outer_product_walkthrough() {
    let accel = four_multiplier_accel();
    let out = run_df(&accel, &paper_a(), &paper_b(), Dataflow::OuterProductM).unwrap();
    check_product(&out.c);
    let r = &out.report;
    assert_eq!(r.tiles, 1, "columns 0..3 of A fill the four multipliers");
    // Each multiplier linearly combines its B row: A10 x row0 (2 elems),
    // A01 x row1 (2), A12 x row2 (1), A13 x row3 (3) = 8 psums, exactly
    // the eight '*C' elements Fig. 6 stores in the PSRAM.
    assert_eq!(r.multiplications, 8);
    assert_eq!(
        r.traffic.psum_onchip_bytes,
        (8 + 8) * 4,
        "every psum written once and consumed once"
    );
    // The merging phase is where psums become the five outputs.
    assert!(r.phases.merge_cycles() > 0);
}

#[test]
fn fig7_gustavson_walkthrough() {
    let accel = four_multiplier_accel();
    let out = run_df(&accel, &paper_a(), &paper_b(), Dataflow::GustavsonM).unwrap();
    check_product(&out.c);
    let r = &out.report;
    // Fig. 7 maps row 0 (1 element) and row 1 (3 elements) spatially in
    // one pass of the four multipliers.
    assert_eq!(r.tiles, 1);
    assert_eq!(r.multiplications, 8, "same 8 products as OP");
    // "We can merge the psums immediately after their generation": both
    // rows fit their clusters, so nothing ever reaches the PSRAM and no
    // separate merging phase runs.
    assert_eq!(r.traffic.psum_onchip_bytes, 0);
    assert_eq!(r.phases.merge_cycles(), 0);
}

#[test]
fn walkthrough_dataflow_costs_differ() {
    // Even on the toy example the three dataflows charge different cycle
    // counts — the observation motivating the whole design.
    let accel = four_multiplier_accel();
    let a = paper_a();
    let b = paper_b();
    let cycles: Vec<u64> = Dataflow::M_STATIONARY
        .iter()
        .map(|&df| run_df(&accel, &a, &b, df).unwrap().report.total_cycles)
        .collect();
    assert!(
        cycles.iter().any(|&c| c != cycles[0]),
        "costs differ: {cycles:?}"
    );
}

#[test]
fn n_stationary_variants_on_walkthrough() {
    let accel = four_multiplier_accel();
    let a = paper_a();
    let b = paper_b();
    for df in [
        Dataflow::InnerProductN,
        Dataflow::OuterProductN,
        Dataflow::GustavsonN,
    ] {
        let out = run_df(&accel, &a, &b, df).unwrap();
        check_product(&out.c);
        assert_eq!(out.c.order(), MajorOrder::Col, "{df} outputs CSC");
    }
}
