//! NEON implementations (aarch64).
//!
//! NEON is a baseline feature of the `aarch64-unknown-linux-gnu`-family
//! targets, so no runtime probe is needed; the dispatchers still call these
//! through `unsafe` for symmetry with the AVX2 path. Lane masks are
//! extracted with the narrow-to-u16 / reinterpret-as-u64 trick (each lane
//! contributes 16 mask bits), popcounts via the `vcnt` + pairwise-widening
//! chain. The compress-store drain has no cheap NEON equivalent of
//! `vpermps`, so [`crate::compress_word`] keeps the scalar loop on aarch64.

#![allow(clippy::missing_safety_doc)] // SAFETY contract is module-wide: NEON is baseline on aarch64.

use core::arch::aarch64::*;

/// 64-bit mask with 16 bits per lane, set where the lane predicate held.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn mask4(cmp: uint32x4_t) -> u64 {
    vget_lane_u64(vreinterpret_u64_u16(vmovn_u32(cmp)), 0)
}

/// See [`crate::prefix_lt_u32`].
#[target_feature(enable = "neon")]
pub unsafe fn prefix_lt_u32(xs: &[u32], pivot: u32) -> usize {
    let n = xs.len();
    let pv = vdupq_n_u32(pivot);
    let mut i = 0;
    while i + 4 <= n {
        let v = unsafe { vld1q_u32(xs.as_ptr().add(i)) };
        let m = unsafe { mask4(vcltq_u32(v, pv)) };
        if m != u64::MAX {
            // 16 mask bits per lane; the first lane failing `x < pivot`
            // ends the prefix.
            return i + (m.trailing_ones() / 16) as usize;
        }
        i += 4;
    }
    i + crate::scalar::prefix_lt_u32(&xs[i..], pivot)
}

/// See [`crate::find_eq_u32`].
#[target_feature(enable = "neon")]
pub unsafe fn find_eq_u32(xs: &[u32], target: u32) -> Option<usize> {
    let n = xs.len();
    let tv = vdupq_n_u32(target);
    let mut i = 0;
    while i + 4 <= n {
        let v = unsafe { vld1q_u32(xs.as_ptr().add(i)) };
        let m = unsafe { mask4(vceqq_u32(v, tv)) };
        if m != 0 {
            return Some(i + (m.trailing_zeros() / 16) as usize);
        }
        i += 4;
    }
    crate::scalar::find_eq_u32(&xs[i..], target).map(|p| i + p)
}

/// Per-128-bit-chunk popcount reduced to a u64x2 partial sum.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn popcount_chunk(v: uint8x16_t) -> uint64x2_t {
    vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))))
}

/// See [`crate::popcount_u64`].
#[target_feature(enable = "neon")]
pub unsafe fn popcount_u64(ws: &[u64]) -> u64 {
    let n = ws.len();
    let mut acc = vdupq_n_u64(0);
    let mut i = 0;
    while i + 2 <= n {
        let v = unsafe { vld1q_u8(ws.as_ptr().add(i) as *const u8) };
        acc = vaddq_u64(acc, unsafe { popcount_chunk(v) });
        i += 2;
    }
    let mut total = vgetq_lane_u64(acc, 0).wrapping_add(vgetq_lane_u64(acc, 1));
    total += crate::scalar::popcount_u64(&ws[i..]);
    total
}

/// See [`crate::and_popcount_u64`]. Caller guarantees equal lengths.
#[target_feature(enable = "neon")]
pub unsafe fn and_popcount_u64(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len();
    let mut acc = vdupq_n_u64(0);
    let mut i = 0;
    while i + 2 <= n {
        let va = unsafe { vld1q_u8(a.as_ptr().add(i) as *const u8) };
        let vb = unsafe { vld1q_u8(b.as_ptr().add(i) as *const u8) };
        acc = vaddq_u64(acc, unsafe { popcount_chunk(vandq_u8(va, vb)) });
        i += 2;
    }
    let mut total = vgetq_lane_u64(acc, 0).wrapping_add(vgetq_lane_u64(acc, 1));
    total += crate::scalar::and_popcount_u64(&a[i..], &b[i..]);
    total
}

/// See [`crate::extend_scaled_f32`].
#[target_feature(enable = "neon")]
pub unsafe fn extend_scaled_f32(src: &[f32], factor: f32, out: &mut Vec<f32>) {
    let n = src.len();
    out.reserve(n);
    let mut o = out.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the load; `reserve(n)` above bounds
        // the store.
        unsafe {
            let v = vld1q_f32(src.as_ptr().add(i));
            vst1q_f32(out.as_mut_ptr().add(o), vmulq_n_f32(v, factor));
        }
        i += 4;
        o += 4;
    }
    // SAFETY: `o` lanes are initialized and within capacity.
    unsafe { out.set_len(o) };
    out.extend(src[i..].iter().map(|&v| v * factor));
}
