//! Portable-SIMD shim for the Flexagon kernels (offline build).
//!
//! The build environment has no crates.io access, so instead of `std::simd`
//! (nightly) or the `wide` crate this in-tree shim exposes the *slice
//! kernels* the simulator's hot loops need, each implemented three times:
//!
//! * an **x86_64 / AVX2** path over `core::arch::x86_64` intrinsics, taken
//!   only after `is_x86_feature_detected!("avx2")` succeeds at runtime;
//! * an **aarch64 / NEON** path over `core::arch::aarch64` intrinsics
//!   (NEON is baseline on `aarch64-unknown-linux-gnu`, so no runtime probe
//!   is needed);
//! * a **mandatory scalar fallback** ([`scalar`]) that defines the
//!   semantics: every SIMD path must be bit-identical to it — including
//!   `f32` results, which is why the primitives only ever perform *lanewise*
//!   float arithmetic (IEEE-754 multiplies round identically lane by lane)
//!   and never reassociate sums.
//!
//! Dispatch is a per-call [`level()`] check: one relaxed atomic load plus a
//! well-predicted branch, amortized to noise by the slice-granular API (a
//! call processes a whole run, word, or fiber, not a lane).
//!
//! # Forcing the scalar path
//!
//! Two knobs force [`Level::Scalar`] everywhere, for A/B measurement and
//! for covering the fallback in CI:
//!
//! * the `FLEXAGON_SIMD` environment variable — `off`, `0`, `false` or
//!   `scalar` (case-insensitive), read once at first use;
//! * [`set_scalar_only`] — the programmatic form behind
//!   `EngineConfig::simd`. Like the environment variable it is
//!   process-global; this is safe because every kernel is bit-identical on
//!   either path, so a concurrent toggle can change *speed* but never a
//!   result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

#[cfg(target_arch = "aarch64")]
mod neon;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

/// The instruction-set level the dispatching primitives will use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// The scalar fallback — also the semantic reference.
    Scalar,
    /// 128-bit NEON (aarch64 baseline).
    Neon,
    /// 256-bit AVX2 (runtime-detected on x86_64).
    Avx2,
}

impl Level {
    /// Level name for diagnostics and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Neon => "neon",
            Level::Avx2 => "avx2",
        }
    }
}

/// Runtime override set by [`set_scalar_only`] (the `EngineConfig::simd`
/// knob); `false` by default.
static RUNTIME_SCALAR: AtomicBool = AtomicBool::new(false);

/// Whether `FLEXAGON_SIMD` forces the scalar path. Read once: the
/// environment is a process-lifetime policy, not a per-call one.
fn env_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("FLEXAGON_SIMD")
            .map(|v| {
                let v = v.to_ascii_lowercase();
                matches!(v.as_str(), "off" | "0" | "false" | "scalar")
            })
            .unwrap_or(false)
    })
}

/// The best instruction-set level this machine supports (cached).
fn detected() -> Level {
    static DETECTED: OnceLock<Level> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                Level::Scalar
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            Level::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            Level::Scalar
        }
    })
}

/// The level the primitives dispatch to right now: the detected level,
/// unless the environment or [`set_scalar_only`] forces the fallback.
#[inline]
pub fn level() -> Level {
    if env_scalar() || RUNTIME_SCALAR.load(Ordering::Relaxed) {
        Level::Scalar
    } else {
        detected()
    }
}

/// Forces (`true`) or releases (`false`) the scalar fallback process-wide.
///
/// The environment override ([`env_scalar`]) always wins; this flag only
/// adds a second way to force scalar, it can never enable SIMD that
/// `FLEXAGON_SIMD=off` disabled.
pub fn set_scalar_only(scalar: bool) {
    RUNTIME_SCALAR.store(scalar, Ordering::Relaxed);
}

/// Whether the scalar fallback is currently forced (by either knob).
pub fn scalar_forced() -> bool {
    env_scalar() || RUNTIME_SCALAR.load(Ordering::Relaxed)
}

/// Length of the longest prefix of `xs` whose elements are all `< pivot`.
///
/// For a sorted slice this is `xs.partition_point(|&x| x < pivot)` — the
/// crossover the merge and intersection kernels advance by — found with
/// 8-lane (AVX2) or 4-lane (NEON) unsigned compares instead of a
/// branch-per-element scan.
#[inline]
pub fn prefix_lt_u32(xs: &[u32], pivot: u32) -> usize {
    #[cfg(target_arch = "x86_64")]
    if level() == Level::Avx2 {
        // SAFETY: AVX2 presence was runtime-detected by `level()`.
        return unsafe { x86::prefix_lt_u32(xs, pivot) };
    }
    #[cfg(target_arch = "aarch64")]
    if level() == Level::Neon {
        // SAFETY: NEON is a baseline feature of the aarch64 targets.
        return unsafe { neon::prefix_lt_u32(xs, pivot) };
    }
    scalar::prefix_lt_u32(xs, pivot)
}

/// Length of the inline scalar head of [`run_lt_u32`].
const RUN_HEAD: usize = 8;

/// [`prefix_lt_u32`] tuned for *run discovery* in merge and intersection
/// loops, where the common run length depends on the operand shapes and is
/// often 1–2: the first [`RUN_HEAD`] elements are compared inline, so short
/// runs never pay the dispatch check or the (non-inlinable,
/// `#[target_feature]`) call into the vector scan, while a run that
/// survives the head hands the remainder to [`prefix_lt_u32`] and gets the
/// wide compares exactly where they amortize. Returns the same count as
/// [`prefix_lt_u32`] on every input.
///
/// `#[inline(always)]`: the head is a handful of compares that must fuse
/// into the caller's loop — at a call boundary it would cost exactly the
/// overhead it exists to avoid.
#[inline(always)]
pub fn run_lt_u32(xs: &[u32], pivot: u32) -> usize {
    let head = xs.len().min(RUN_HEAD);
    let mut n = 0usize;
    while n < head {
        if xs[n] >= pivot {
            return n;
        }
        n += 1;
    }
    if n < xs.len() {
        n + prefix_lt_u32(&xs[n..], pivot)
    } else {
        n
    }
}

/// Position of the first element equal to `target`, scanning left to right.
///
/// The vector paths compare whole blocks and recover the lane from the
/// movemask, so short-tier index probes touch 4–8 coordinates per compare.
#[inline]
pub fn find_eq_u32(xs: &[u32], target: u32) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if level() == Level::Avx2 {
        // SAFETY: AVX2 presence was runtime-detected by `level()`.
        return unsafe { x86::find_eq_u32(xs, target) };
    }
    #[cfg(target_arch = "aarch64")]
    if level() == Level::Neon {
        // SAFETY: NEON is a baseline feature of the aarch64 targets.
        return unsafe { neon::find_eq_u32(xs, target) };
    }
    scalar::find_eq_u32(xs, target)
}

/// Total set bits across `ws` — the rank query of the bitmap tiers.
#[inline]
pub fn popcount_u64(ws: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if level() == Level::Avx2 {
        // SAFETY: AVX2 presence was runtime-detected by `level()`.
        return unsafe { x86::popcount_u64(ws) };
    }
    #[cfg(target_arch = "aarch64")]
    if level() == Level::Neon {
        // SAFETY: NEON is a baseline feature of the aarch64 targets.
        return unsafe { neon::popcount_u64(ws) };
    }
    scalar::popcount_u64(ws)
}

/// Set bits of the wide AND of two equal-length masks — the structural
/// intersection count of two bitmaps.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_popcount_u64(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "mask lengths must match");
    #[cfg(target_arch = "x86_64")]
    if level() == Level::Avx2 {
        // SAFETY: AVX2 presence was runtime-detected by `level()`.
        return unsafe { x86::and_popcount_u64(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if level() == Level::Neon {
        // SAFETY: NEON is a baseline feature of the aarch64 targets.
        return unsafe { neon::and_popcount_u64(a, b) };
    }
    scalar::and_popcount_u64(a, b)
}

/// Appends, for every set bit `b` of `word` in ascending order,
/// `base.wrapping_add(b)` to `coords` and `vals[b]` to `values` — the
/// presence-word compaction step of the accumulator drains.
///
/// The AVX2 path is a compress-store: per mask byte, a precomputed
/// shuffle-index table compacts 8 value lanes with one `vpermps` and
/// derives the coordinates from the same index vector, advancing the
/// output by the byte's popcount. Words with fewer than
/// [`COMPRESS_DENSE_MIN_BITS`] set bits take the scalar bit loop on every
/// level: the per-byte permute setup only amortizes on dense words, and
/// the mostly-empty pages of the paged accumulator tier are measurably
/// faster through `trailing_zeros` stepping.
///
/// # Panics
///
/// Panics if `vals` holds fewer than 64 slots (the fixed window a presence
/// word addresses).
#[inline]
pub fn compress_word(
    word: u64,
    base: u32,
    vals: &[f32],
    coords: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    assert!(vals.len() >= 64, "a presence word addresses 64 value slots");
    #[cfg(target_arch = "x86_64")]
    if word.count_ones() >= COMPRESS_DENSE_MIN_BITS && level() == Level::Avx2 {
        // SAFETY: AVX2 presence was runtime-detected by `level()`.
        unsafe { x86::compress_word(word, base, vals, coords, values) };
        return;
    }
    scalar::compress_word(word, base, vals, coords, values)
}

/// Set-bit density below which [`compress_word`] prefers the scalar bit
/// loop (see its docs). A quarter-full word gives each nonzero mask byte
/// ~2 lanes of useful permute work, about where the vector path breaks
/// even with `trailing_zeros` stepping on this container class.
#[cfg(target_arch = "x86_64")]
const COMPRESS_DENSE_MIN_BITS: u32 = 16;

/// Appends `src[i] * factor` for every element of `src` to `out`.
///
/// Lanewise IEEE-754 multiplies round identically to the scalar loop, so
/// the result is bit-identical — this is the streaming-phase scaling of
/// the Outer-Product and Gustavson dataflows.
#[inline]
pub fn extend_scaled_f32(src: &[f32], factor: f32, out: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    if level() == Level::Avx2 {
        // SAFETY: AVX2 presence was runtime-detected by `level()`.
        unsafe { x86::extend_scaled_f32(src, factor, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if level() == Level::Neon {
        // SAFETY: NEON is a baseline feature of the aarch64 targets.
        unsafe { neon::extend_scaled_f32(src, factor, out) };
        return;
    }
    scalar::extend_scaled_f32(src, factor, out)
}

/// Shuffle-index table for [`compress_word`]: entry `m` holds the bit
/// positions of the set bits of the byte `m`, in ascending order, padded
/// with zeros — simultaneously the `vpermps` control vector and the
/// coordinate offsets.
#[cfg(target_arch = "x86_64")]
pub(crate) static COMPRESS_IDX: [[u32; 8]; 256] = build_compress_idx();

#[cfg(target_arch = "x86_64")]
const fn build_compress_idx() -> [[u32; 8]; 256] {
    let mut lut = [[0u32; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut out = 0usize;
        let mut b = 0usize;
        while b < 8 {
            if m & (1 << b) != 0 {
                lut[m][out] = b as u32;
                out += 1;
            }
            b += 1;
        }
        m += 1;
    }
    lut
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(seed: u64, len: usize, space: u32) -> Vec<u32> {
        // Deterministic pseudo-random strictly-increasing coordinates.
        let mut out = Vec::with_capacity(len);
        let mut x = seed;
        let mut c = 0u32;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            c = c.saturating_add(1 + (x >> 33) as u32 % (space / len.max(1) as u32).max(1));
            out.push(c);
        }
        out
    }

    #[test]
    fn prefix_lt_matches_scalar_on_all_lengths() {
        for len in 0..70 {
            let xs = sorted(7, len, 4 * len.max(1) as u32);
            for &pivot in &[0u32, 1, 5, u32::MAX] {
                assert_eq!(
                    prefix_lt_u32(&xs, pivot),
                    scalar::prefix_lt_u32(&xs, pivot),
                    "len {len} pivot {pivot}"
                );
            }
            // Pivot inside the slice: exact crossovers.
            for &p in xs.iter().step_by(3) {
                assert_eq!(prefix_lt_u32(&xs, p), scalar::prefix_lt_u32(&xs, p));
                assert_eq!(
                    prefix_lt_u32(&xs, p.wrapping_add(1)),
                    scalar::prefix_lt_u32(&xs, p.wrapping_add(1))
                );
            }
        }
    }

    #[test]
    fn run_lt_matches_prefix_lt_on_all_lengths() {
        // The inline head must be invisible: same count as the plain
        // primitive at every length, including lengths straddling the head.
        for len in 0..70 {
            let xs = sorted(13, len, 4 * len.max(1) as u32);
            for &pivot in &[0u32, 1, 5, u32::MAX] {
                assert_eq!(run_lt_u32(&xs, pivot), scalar::prefix_lt_u32(&xs, pivot));
            }
            for &p in xs.iter().step_by(3) {
                assert_eq!(run_lt_u32(&xs, p), scalar::prefix_lt_u32(&xs, p));
                assert_eq!(
                    run_lt_u32(&xs, p.wrapping_add(1)),
                    scalar::prefix_lt_u32(&xs, p.wrapping_add(1))
                );
            }
        }
    }

    #[test]
    fn find_eq_matches_scalar() {
        for len in 0..70 {
            let xs = sorted(11, len, 8 * len.max(1) as u32);
            for probe in 0..xs.last().copied().unwrap_or(0) + 2 {
                assert_eq!(find_eq_u32(&xs, probe), scalar::find_eq_u32(&xs, probe));
            }
        }
        // First match wins on duplicates (unsorted input is allowed).
        let dup = [3u32, 9, 9, 1, 9];
        assert_eq!(find_eq_u32(&dup, 9), Some(1));
    }

    #[test]
    fn popcounts_match_scalar() {
        for len in 0..20 {
            let ws: Vec<u64> = (0..len)
                .map(|i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64) << 7)
                .collect();
            let other: Vec<u64> = ws.iter().map(|w| w.rotate_left(13) ^ 0xff00ff00).collect();
            assert_eq!(popcount_u64(&ws), scalar::popcount_u64(&ws));
            assert_eq!(
                and_popcount_u64(&ws, &other),
                scalar::and_popcount_u64(&ws, &other)
            );
        }
    }

    #[test]
    fn compress_word_matches_scalar() {
        let vals: Vec<f32> = (0..64).map(|i| i as f32 * 1.5 - 7.0).collect();
        let words = [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0001,
            0xAAAA_5555_F0F0_0F0F,
            0x0123_4567_89AB_CDEF,
        ];
        for &w in &words {
            let (mut c1, mut v1) = (vec![99u32], vec![0.5f32]);
            let (mut c2, mut v2) = (vec![99u32], vec![0.5f32]);
            compress_word(w, 1000, &vals, &mut c1, &mut v1);
            scalar::compress_word(w, 1000, &vals, &mut c2, &mut v2);
            assert_eq!(c1, c2, "word {w:#x}");
            assert_eq!(v1, v2, "word {w:#x}");
        }
    }

    #[test]
    fn extend_scaled_matches_scalar_bitwise() {
        for len in 0..40 {
            let src: Vec<f32> = (0..len).map(|i| (i as f32 - 3.5) * 0.3).collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            extend_scaled_f32(&src, 0.7, &mut a);
            scalar::extend_scaled_f32(&src, 0.7, &mut b);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn scalar_override_forces_fallback() {
        set_scalar_only(true);
        assert_eq!(level(), Level::Scalar);
        assert!(scalar_forced());
        set_scalar_only(false);
        // Whatever the machine supports; just must not panic.
        let _ = level().name();
    }
}
