//! Scalar reference implementations — the semantic ground truth.
//!
//! Every vector path in this crate must produce results bit-identical to
//! these loops on all inputs; the differential tests in `flexagon-sparse`
//! compare against them directly. They are also the runtime fallback when
//! no vector unit is detected or `FLEXAGON_SIMD=off` forces them, so they
//! are written to be good scalar code, not just specifications.

/// See [`crate::prefix_lt_u32`].
#[inline]
pub fn prefix_lt_u32(xs: &[u32], pivot: u32) -> usize {
    let mut i = 0;
    while i < xs.len() && xs[i] < pivot {
        i += 1;
    }
    i
}

/// See [`crate::find_eq_u32`].
#[inline]
pub fn find_eq_u32(xs: &[u32], target: u32) -> Option<usize> {
    xs.iter().position(|&x| x == target)
}

/// See [`crate::popcount_u64`].
#[inline]
pub fn popcount_u64(ws: &[u64]) -> u64 {
    ws.iter().map(|w| w.count_ones() as u64).sum()
}

/// See [`crate::and_popcount_u64`]. Callers guarantee equal lengths.
#[inline]
pub fn and_popcount_u64(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as u64)
        .sum()
}

/// See [`crate::compress_word`]: ascending bit extraction via
/// `trailing_zeros` + clear-lowest-set-bit.
#[inline]
pub fn compress_word(
    word: u64,
    base: u32,
    vals: &[f32],
    coords: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    let mut w = word;
    while w != 0 {
        let b = w.trailing_zeros() as usize;
        coords.push(base.wrapping_add(b as u32));
        values.push(vals[b]);
        w &= w - 1;
    }
}

/// See [`crate::extend_scaled_f32`].
#[inline]
pub fn extend_scaled_f32(src: &[f32], factor: f32, out: &mut Vec<f32>) {
    out.extend(src.iter().map(|&v| v * factor));
}
