//! AVX2 implementations (x86_64, runtime-detected).
//!
//! Every function here carries `#[target_feature(enable = "avx2")]` and is
//! `unsafe` to call: the dispatchers in the crate root only reach them after
//! `is_x86_feature_detected!("avx2")` succeeded. Unsigned 32-bit compares
//! are synthesized by XOR-biasing both operands with `i32::MIN` and using
//! the signed compare AVX2 does have; popcounts use the nibble-LUT + `vpsadbw`
//! reduction (Mula's method); the compress-store drain combines a per-byte
//! shuffle-index table with `vpermps`.

#![allow(clippy::missing_safety_doc)] // SAFETY contract is module-wide: caller detected AVX2.

use core::arch::x86_64::*;

use crate::COMPRESS_IDX;

/// Movemask of the per-lane `x < pivot` predicate for 8 u32 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn lt_mask(v: __m256i, biased_pivot: __m256i, bias: __m256i) -> u32 {
    let vb = _mm256_xor_si256(v, bias);
    let lt = _mm256_cmpgt_epi32(biased_pivot, vb);
    _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32
}

/// See [`crate::prefix_lt_u32`].
#[target_feature(enable = "avx2")]
pub unsafe fn prefix_lt_u32(xs: &[u32], pivot: u32) -> usize {
    let n = xs.len();
    let bias = _mm256_set1_epi32(i32::MIN);
    let pv = _mm256_xor_si256(_mm256_set1_epi32(pivot as i32), bias);
    let mut i = 0;
    while i + 8 <= n {
        let v = unsafe { _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i) };
        let mask = unsafe { lt_mask(v, pv, bias) };
        if mask != 0xff {
            // First lane that fails `x < pivot` ends the prefix.
            return i + mask.trailing_ones() as usize;
        }
        i += 8;
    }
    i + crate::scalar::prefix_lt_u32(&xs[i..], pivot)
}

/// See [`crate::find_eq_u32`].
#[target_feature(enable = "avx2")]
pub unsafe fn find_eq_u32(xs: &[u32], target: u32) -> Option<usize> {
    let n = xs.len();
    let tv = _mm256_set1_epi32(target as i32);
    let mut i = 0;
    while i + 8 <= n {
        let v = unsafe { _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i) };
        let eq = _mm256_cmpeq_epi32(v, tv);
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
        if mask != 0 {
            // Lowest set lane is the leftmost match.
            return Some(i + mask.trailing_zeros() as usize);
        }
        i += 8;
    }
    crate::scalar::find_eq_u32(&xs[i..], target).map(|p| i + p)
}

/// Per-byte popcount of a 256-bit vector, reduced to four u64 partial sums
/// (Mula's nibble-LUT method: two `vpshufb` lookups + `vpsadbw`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_bytes(v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lookup = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_nibble = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_nibble);
    let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble);
    let cnt = _mm256_add_epi8(
        _mm256_shuffle_epi8(lookup, lo),
        _mm256_shuffle_epi8(lookup, hi),
    );
    _mm256_sad_epu8(cnt, _mm256_setzero_si256())
}

/// Horizontal sum of the four u64 lanes of `acc`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi64(acc: __m256i) -> u64 {
    let mut lanes = [0u64; 4];
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
    lanes[0]
        .wrapping_add(lanes[1])
        .wrapping_add(lanes[2])
        .wrapping_add(lanes[3])
}

/// See [`crate::popcount_u64`].
#[target_feature(enable = "avx2")]
pub unsafe fn popcount_u64(ws: &[u64]) -> u64 {
    let n = ws.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        let v = unsafe { _mm256_loadu_si256(ws.as_ptr().add(i) as *const __m256i) };
        acc = _mm256_add_epi64(acc, unsafe { popcount_bytes(v) });
        i += 4;
    }
    let mut total = unsafe { hsum_epi64(acc) };
    total += crate::scalar::popcount_u64(&ws[i..]);
    total
}

/// See [`crate::and_popcount_u64`]. Caller guarantees equal lengths.
#[target_feature(enable = "avx2")]
pub unsafe fn and_popcount_u64(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        let va = unsafe { _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i) };
        let vb = unsafe { _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i) };
        acc = _mm256_add_epi64(acc, unsafe { popcount_bytes(_mm256_and_si256(va, vb)) });
        i += 4;
    }
    let mut total = unsafe { hsum_epi64(acc) };
    total += crate::scalar::and_popcount_u64(&a[i..], &b[i..]);
    total
}

/// See [`crate::compress_word`]. Caller guarantees `vals.len() >= 64`.
///
/// Processes the presence word one mask byte at a time: the shuffle-index
/// table entry for the byte compacts the corresponding 8 value lanes to the
/// front with a single `vpermps`, and doubles as the coordinate offsets
/// (broadcast base + index vector). Both stores write a full 8-lane block
/// and only advance the logical length by the byte's popcount — the slack
/// lanes are overwritten by the next byte or discarded by the final
/// `set_len`, which is why `reserve` adds 8 lanes beyond the exact count.
#[target_feature(enable = "avx2")]
pub unsafe fn compress_word(
    word: u64,
    base: u32,
    vals: &[f32],
    coords: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    let total = word.count_ones() as usize;
    coords.reserve(total + 8);
    values.reserve(total + 8);
    let mut ci = coords.len();
    let mut vi = values.len();
    for k in 0..8usize {
        let m = ((word >> (k * 8)) & 0xff) as usize;
        if m == 0 {
            continue;
        }
        // SAFETY: the LUT row is 8 u32s; `vals[k*8..k*8+8]` is in bounds for
        // `vals.len() >= 64`; both destinations have >= 8 lanes of reserved
        // capacity past their logical length (see doc above).
        unsafe {
            let idx = _mm256_loadu_si256(COMPRESS_IDX[m].as_ptr() as *const __m256i);
            let v = _mm256_loadu_ps(vals.as_ptr().add(k * 8));
            let packed = _mm256_permutevar8x32_ps(v, idx);
            let base_k = _mm256_set1_epi32(base.wrapping_add((k as u32) * 8) as i32);
            let cvec = _mm256_add_epi32(base_k, idx);
            _mm256_storeu_si256(coords.as_mut_ptr().add(ci) as *mut __m256i, cvec);
            _mm256_storeu_ps(values.as_mut_ptr().add(vi), packed);
        }
        let c = m.count_ones() as usize;
        ci += c;
        vi += c;
    }
    // SAFETY: exactly `total` lanes past the original lengths were written
    // with initialized data, and capacity was reserved above.
    unsafe {
        coords.set_len(ci);
        values.set_len(vi);
    }
}

/// See [`crate::extend_scaled_f32`].
#[target_feature(enable = "avx2")]
pub unsafe fn extend_scaled_f32(src: &[f32], factor: f32, out: &mut Vec<f32>) {
    let n = src.len();
    out.reserve(n);
    let f = _mm256_set1_ps(factor);
    let mut o = out.len();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the load; `reserve(n)` above bounds
        // the store at `o < out.len() + n - 7`.
        unsafe {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(o), _mm256_mul_ps(v, f));
        }
        i += 8;
        o += 8;
    }
    // SAFETY: `o` lanes are initialized and within capacity.
    unsafe { out.set_len(o) };
    out.extend(src[i..].iter().map(|&v| v * factor));
}
