//! Minimal in-tree rand shim.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the `rand` 0.8 API the simulator uses: [`RngCore`],
//! [`SeedableRng`], and the extension trait [`Rng`] with `gen`, `gen_range`
//! and `gen_bool`. Distributions are uniform; determinism is guaranteed for a
//! fixed seed (the property the workload suite relies on), though the exact
//! streams differ from upstream `rand`.

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator. Deterministic across platforms and runs.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the full domain (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $std:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$std as Standard>::sample_standard(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32 => f32, f64 => f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
