//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde shim.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny serde-compatible surface. This crate hand-parses the derive input
//! token stream (no `syn`/`quote` available) and supports the shapes the
//! simulator actually uses:
//!
//! * structs with named fields
//! * enums whose variants are all unit variants
//!
//! `#[serde(...)]` attributes are not supported (none are used in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Unit-variant enum: variant identifiers in declaration order.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let mut is_enum = false;
    // Skip attributes and visibility until the `struct` / `enum` keyword.
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the bracket group is the next token.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" {
                    break;
                }
                if word == "enum" {
                    is_enum = true;
                    break;
                }
                // `pub` / `pub(crate)` — the optional paren group is skipped
                // by the surrounding loop as an ordinary token.
            }
            Some(_) => {}
            None => panic!("derive input has no struct or enum keyword"),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, got {other:?}"),
    };
    let shape = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    Shape::Enum(parse_variants(g.stream()))
                } else {
                    Shape::Struct(parse_fields(g.stream()))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                break Shape::Tuple(count_tuple_fields(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("generic types are not supported by the vendored serde derive")
            }
            Some(_) => continue,
            None => panic!("missing body for type {name}"),
        }
    };
    Input { name, shape }
}

fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments arrive as `#[doc = ...]`).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        // Skip visibility.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(
                tokens.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                tokens.next();
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("unsupported field syntax at {other:?} (tuple struct?)"),
        }
        // Skip the `: Type` tail up to the next top-level comma. Commas inside
        // generic arguments are shielded by tracking angle-bracket depth;
        // commas inside parens/brackets are inside `Group` tokens already.
        let mut angle_depth = 0i64;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break,
            }
        }
        if tokens.peek().is_none() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    // Count top-level commas (angle-depth aware); a trailing comma does not
    // add a field.
    let mut fields = 0usize;
    let mut angle_depth = 0i64;
    let mut saw_tokens = false;
    let mut pending = false;
    for tt in body {
        saw_tokens = true;
        pending = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    pending = false;
                }
                _ => {}
            }
        }
    }
    if saw_tokens && pending {
        fields += 1;
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("unsupported enum syntax at {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => {
                panic!("vendored serde derive supports only unit enum variants, got {other:?}")
            }
        }
    }
    variants
}

/// Derives the shim's `serde::Serialize` (`to_value`) implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__m)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: String = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => \"{v}\","))
                .collect();
            format!("::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` (`from_value`) implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_get(__m, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::new(\"expected a JSON object for struct {name}\"))?; \
                 ::std::result::Result::Ok(Self {{ {inits} }})"
            )
        }
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Shape::Tuple(n) => {
            let items: String = (0..n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__s.get({i}).ok_or_else(|| \
                         ::serde::DeError::new(\"tuple too short\"))?)?,"
                    )
                })
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::new(\"expected a JSON array for tuple struct {name}\"))?; \
                 ::std::result::Result::Ok(Self({items}))"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok(Self::{v}),"))
                .collect();
            format!(
                "match __v.as_str() {{ \
                   ::std::option::Option::Some(__s) => match __s {{ \
                     {arms} \
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                       &::std::format!(\"unknown variant '{{__other}}' for enum {name}\"))), \
                   }}, \
                   ::std::option::Option::None => ::std::result::Result::Err(\
                     ::serde::DeError::new(\"expected a string for enum {name}\")), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
