//! Minimal in-tree rayon shim.
//!
//! Implements the data-parallel surface the benchmark runner uses —
//! `par_iter().map(..).collect()` over slices, plus [`join`] — on top of
//! `std::thread::scope`. Results are collected in input order, so a parallel
//! map is a drop-in replacement for the sequential one: determinism is
//! preserved as long as the mapped closure is a pure function of its item.
//!
//! Thread count comes from the `RAYON_NUM_THREADS` environment variable
//! when set (honored exactly, like real rayon's global pool — a request
//! above the hardware parallelism oversubscribes), otherwise from
//! `std::thread::available_parallelism`.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation may use.
///
/// `RAYON_NUM_THREADS` is honored exactly when set (like real rayon's
/// global pool, a request above the hardware parallelism oversubscribes);
/// otherwise `available_parallelism` decides.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("joined closure panicked"), rb)
    })
}

/// Parallel iterator over `&[T]` produced by [`IntoParallelRefIterator::par_iter`].
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Lazily mapped parallel iterator.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
    max_threads: Option<usize>,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item through `f` in parallel.
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
            max_threads: None,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Caps this operation at `n` worker threads, overriding the ambient
    /// thread count (shim extension standing in for real rayon's
    /// `ThreadPool::install`; like an explicit pool, a cap above the
    /// hardware parallelism oversubscribes).
    pub fn max_threads(mut self, n: usize) -> Self {
        self.max_threads = Some(n.max(1));
        self
    }

    /// Evaluates the map on worker threads, preserving input order.
    pub fn collect<C: FromParallelResults<U>>(self) -> C {
        let threads = self
            .max_threads
            .unwrap_or_else(current_num_threads)
            .min(self.items.len().max(1));
        C::from_ordered(parallel_map(self.items, &self.f, threads))
    }
}

/// Collections buildable from an ordered parallel map result.
pub trait FromParallelResults<U> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<U>) -> Self;
}

impl<U> FromParallelResults<U> for Vec<U> {
    fn from_ordered(items: Vec<U>) -> Self {
        items
    }
}

fn parallel_map<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync>(
    items: &'a [T],
    f: &F,
    threads: usize,
) -> Vec<U> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_ptr = SlotsPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let slot_ptr = &slot_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(&items[i]);
                // SAFETY: each index is claimed by exactly one worker via the
                // atomic counter, slots outlives the scope, and `Option<U>`
                // writes to distinct elements never alias.
                unsafe { *slot_ptr.0.add(i) = Some(value) };
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by a worker"))
        .collect()
}

struct SlotsPtr<U>(*mut Option<U>);
// SAFETY: workers write disjoint indices; synchronization is provided by the
// scope join before the vector is read.
unsafe impl<U: Send> Sync for SlotsPtr<U> {}
unsafe impl<U: Send> Send for SlotsPtr<U> {}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: 'a;
    /// Creates the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn max_threads_cap_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x + 1).max_threads(3).collect();
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
