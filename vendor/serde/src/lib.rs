//! Minimal in-tree serde shim.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! small serde surface the simulator uses: `Serialize` / `Deserialize` traits
//! over a self-describing [`Value`] model, plus derive macros re-exported from
//! the companion `serde_derive` shim. `serde_json` (also vendored) renders
//! [`Value`] to and from JSON text.
//!
//! The design intentionally collapses serde's serializer/visitor machinery to
//! a concrete value tree: every type serializes by building a [`Value`] and
//! deserializes by reading one. That is ample for the simulator's reports,
//! configs and matrices, and keeps the shim a few hundred lines.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign, fraction or exponent).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: &str) -> Self {
        Self(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up `key` in a map's entries (helper used by derived impls).
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field '{key}'")))
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value-model representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    DeError(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round trip back through `as f32` is too.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_tuple!((0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));
