//! Minimal in-tree proptest shim.
//!
//! Provides the strategy combinators and macros the simulator's property
//! tests use: range strategies, tuple strategies, `prop_map` /
//! `prop_flat_map`, the `collection` module (`vec`, `btree_set`,
//! `btree_map`), and the `proptest!` / `prop_assert*` macros. Cases are
//! generated from a deterministic per-test ChaCha stream; there is no
//! shrinking — a failing case panics with the standard assertion message.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test case generator.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the RNG for `test_name` / `case`, deterministically.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(ChaCha8Rng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use super::*;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for a `BTreeSet` with up to `size` distinct elements.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy for a `BTreeMap` with up to `size` distinct keys.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    fn draw_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        if size.start >= size.end {
            size.start
        } else {
            rng.gen_range(size.clone())
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = draw_len(&self.size, rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = draw_len(&self.size, rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = draw_len(&self.size, rng);
            (0..len)
                .map(|_| (self.key.gen_value(rng), self.value.gen_value(rng)))
                .collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs the
/// body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
