//! Minimal in-tree criterion shim.
//!
//! Implements the benchmarking surface the `flexagon-bench` suites use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`,
//! `criterion_group!` and `criterion_main!`. Each benchmark is warmed up and
//! then timed in batches until a wall-clock budget is spent; the harness
//! prints one line per benchmark and appends machine-readable JSON records
//! to the path named by `FLEXAGON_BENCH_JSON` (default
//! `target/bench_results.json`).
//!
//! Environment knobs:
//! * `FLEXAGON_BENCH_MS` — measurement budget per benchmark in milliseconds
//!   (default 300).
//! * `FLEXAGON_BENCH_JSON` — output path for the JSON records. Relative
//!   paths (and the default) resolve against the workspace root, because
//!   `cargo bench` runs harnesses from the package directory.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark: name and nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/param`).
    pub name: String,
    /// Median nanoseconds per iteration across measurement batches.
    pub ns_per_iter: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    filters: Vec<String>,
}

impl Criterion {
    /// Creates a driver with default settings, taking substring filters
    /// from the command line like real criterion: `cargo bench --bench
    /// <suite> -- <substring>...` runs only benchmarks whose full id
    /// contains one of the substrings. Flag-shaped arguments (cargo passes
    /// `--bench` through to the harness) are ignored.
    pub fn new() -> Self {
        Self {
            results: Vec::new(),
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    fn budget() -> Duration {
        let ms = std::env::var("FLEXAGON_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Duration::from_millis(ms)
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        if !self.selected(&name) {
            return;
        }
        let mut bencher = Bencher {
            batches: Vec::new(),
            budget: Self::budget(),
        };
        f(&mut bencher);
        let mut per_iter: Vec<f64> = bencher
            .batches
            .iter()
            .map(|&(ns, iters)| ns as f64 / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = if per_iter.is_empty() {
            0.0
        } else {
            per_iter[per_iter.len() / 2]
        };
        let iterations: u64 = bencher.batches.iter().map(|&(_, iters)| iters).sum();
        println!("bench: {name:<56} {median:>14.1} ns/iter ({iterations} iters)");
        self.results.push(BenchResult {
            name,
            ns_per_iter: median,
            iterations,
        });
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Serializes all measured results as a JSON array.
    pub fn results_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}}}",
                r.name, r.ns_per_iter, r.iterations
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// Writes the JSON results to `FLEXAGON_BENCH_JSON` (appends records by
    /// rewriting the whole file for simplicity: one file per bench binary).
    ///
    /// A relative path — including the `target/bench_results.json` default —
    /// is resolved against the *workspace root*, not the process working
    /// directory: `cargo bench` runs harnesses with the package directory as
    /// CWD, which used to silently scatter results under
    /// `crates/<pkg>/target/` unless the caller remembered to pass an
    /// absolute path.
    pub fn flush_results(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var("FLEXAGON_BENCH_JSON")
            .unwrap_or_else(|_| "target/bench_results.json".to_string());
        let path = resolve_output_path(&path);
        let path = path.to_string_lossy().into_owned();
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                for r in &self.results {
                    let _ = writeln!(
                        file,
                        "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}}}",
                        r.name, r.ns_per_iter, r.iterations
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot write bench results to {path}: {e}"),
        }
    }
}

/// Resolves a bench-results path: absolute paths pass through; relative
/// paths anchor at the nearest ancestor directory holding a `Cargo.lock`
/// (the workspace root), falling back to the path as given when no
/// workspace root is found.
///
/// Public so non-criterion recorders (the wall-clock runner bin) append to
/// the same file the bench harnesses write, under the same rule.
pub fn resolve_output_path(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() {
        return p;
    }
    let Ok(mut dir) = std::env::current_dir() else {
        return p;
    };
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(&p);
        }
        if !dir.pop() {
            return p;
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.criterion
            .run_one(format!("{}/{}", self.name, id.label()), f);
        self
    }

    /// Runs one benchmark that receives a reference to `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.criterion
            .run_one(format!("{}/{}", self.name, id.label()), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Times closures in batches until the measurement budget is spent.
#[derive(Debug)]
pub struct Bencher {
    /// `(elapsed_ns, iterations)` per measured batch.
    batches: Vec<(u128, u64)>,
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, measuring batched wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes roughly 1/20 of the
        // budget per batch, so the median is taken over ~20 batches.
        let calibration_start = Instant::now();
        black_box(f());
        let one = calibration_start.elapsed().as_nanos().max(1);
        let mut batch_iters = 1u64;
        let target_batch = (self.budget.as_nanos() / 20).max(1);
        while one.saturating_mul(batch_iters as u128) < target_batch && batch_iters < 1 << 20 {
            batch_iters *= 2;
        }
        // Warm-up batch.
        for _ in 0..batch_iters.min(16) {
            black_box(f());
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            self.batches.push((start.elapsed().as_nanos(), batch_iters));
        }
        if self.batches.is_empty() {
            let start = Instant::now();
            black_box(f());
            self.batches.push((start.elapsed().as_nanos(), 1));
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
            criterion.flush_results();
        }
    };
}
