//! Minimal in-tree serde_json shim: renders the vendored serde [`Value`]
//! model to JSON text and parses JSON text back into it.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let text = format!("{f}");
                out.push_str(&text);
                // Keep floats distinguishable from integers in the output.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(value, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error("invalid utf-8 in string".into()))?,
                    );
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}
