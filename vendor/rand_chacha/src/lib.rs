//! In-tree ChaCha8 random number generator for the vendored rand shim.
//!
//! A faithful ChaCha stream-cipher core (8 double-rounds) keyed from a
//! 32-byte seed. Deterministic for a fixed seed on every platform, which is
//! the property the workload suite needs; the word stream is not guaranteed
//! to match the upstream `rand_chacha` crate bit-for-bit.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds: the paper-suite's deterministic workload generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block`.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, base) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*base);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, bytes) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        let mut rng = Self {
            state,
            block: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_advances() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let unique: std::collections::HashSet<_> = first.iter().collect();
        assert!(unique.len() > 30, "keystream should not repeat immediately");
    }
}
