/root/repo/target/debug/deps/fig14_onchip_traffic-f76f0ece8d515350.d: crates/bench/src/bin/fig14_onchip_traffic.rs

/root/repo/target/debug/deps/fig14_onchip_traffic-f76f0ece8d515350: crates/bench/src/bin/fig14_onchip_traffic.rs

crates/bench/src/bin/fig14_onchip_traffic.rs:
