/root/repo/target/debug/deps/report_invariants-8618efe4a470d71d.d: crates/core/tests/report_invariants.rs

/root/repo/target/debug/deps/report_invariants-8618efe4a470d71d: crates/core/tests/report_invariants.rs

crates/core/tests/report_invariants.rs:
