/root/repo/target/debug/deps/fig17_naive_design-7094783c32a1cc19.d: crates/bench/src/bin/fig17_naive_design.rs

/root/repo/target/debug/deps/fig17_naive_design-7094783c32a1cc19: crates/bench/src/bin/fig17_naive_design.rs

crates/bench/src/bin/fig17_naive_design.rs:
