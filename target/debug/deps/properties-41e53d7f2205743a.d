/root/repo/target/debug/deps/properties-41e53d7f2205743a.d: tests/properties.rs

/root/repo/target/debug/deps/properties-41e53d7f2205743a: tests/properties.rs

tests/properties.rs:
