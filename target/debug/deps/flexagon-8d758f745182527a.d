/root/repo/target/debug/deps/flexagon-8d758f745182527a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon-8d758f745182527a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
