/root/repo/target/debug/deps/proptest-596846faed7e92ff.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-596846faed7e92ff.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-596846faed7e92ff.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
