/root/repo/target/debug/deps/spgemm_cli-ba5eac240c58eaec.d: crates/bench/src/bin/spgemm_cli.rs

/root/repo/target/debug/deps/spgemm_cli-ba5eac240c58eaec: crates/bench/src/bin/spgemm_cli.rs

crates/bench/src/bin/spgemm_cli.rs:
