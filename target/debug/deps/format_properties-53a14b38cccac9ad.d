/root/repo/target/debug/deps/format_properties-53a14b38cccac9ad.d: crates/sparse/tests/format_properties.rs

/root/repo/target/debug/deps/format_properties-53a14b38cccac9ad: crates/sparse/tests/format_properties.rs

crates/sparse/tests/format_properties.rs:
