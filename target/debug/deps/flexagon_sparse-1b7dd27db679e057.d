/root/repo/target/debug/deps/flexagon_sparse-1b7dd27db679e057.d: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs

/root/repo/target/debug/deps/libflexagon_sparse-1b7dd27db679e057.rlib: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs

/root/repo/target/debug/deps/libflexagon_sparse-1b7dd27db679e057.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bitmap.rs:
crates/sparse/src/compressed.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/element.rs:
crates/sparse/src/error.rs:
crates/sparse/src/fiber.rs:
crates/sparse/src/gen.rs:
crates/sparse/src/io.rs:
crates/sparse/src/merge.rs:
crates/sparse/src/reference.rs:
crates/sparse/src/stats.rs:
