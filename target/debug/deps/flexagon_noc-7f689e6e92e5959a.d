/root/repo/target/debug/deps/flexagon_noc-7f689e6e92e5959a.d: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

/root/repo/target/debug/deps/libflexagon_noc-7f689e6e92e5959a.rlib: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

/root/repo/target/debug/deps/libflexagon_noc-7f689e6e92e5959a.rmeta: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

crates/noc/src/lib.rs:
crates/noc/src/distribution.rs:
crates/noc/src/mrn.rs:
crates/noc/src/multiplier.rs:
