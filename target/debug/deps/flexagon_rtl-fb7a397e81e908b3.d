/root/repo/target/debug/deps/flexagon_rtl-fb7a397e81e908b3.d: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/debug/deps/libflexagon_rtl-fb7a397e81e908b3.rlib: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/debug/deps/libflexagon_rtl-fb7a397e81e908b3.rmeta: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

crates/rtl/src/lib.rs:
crates/rtl/src/components.rs:
crates/rtl/src/energy.rs:
crates/rtl/src/naive.rs:
crates/rtl/src/table8.rs:
