/root/repo/target/debug/deps/flexagon-fe5bed8c0569b697.d: src/lib.rs

/root/repo/target/debug/deps/flexagon-fe5bed8c0569b697: src/lib.rs

src/lib.rs:
