/root/repo/target/debug/deps/fig16_offchip_traffic-3d5983d6a4703b1d.d: crates/bench/src/bin/fig16_offchip_traffic.rs

/root/repo/target/debug/deps/fig16_offchip_traffic-3d5983d6a4703b1d: crates/bench/src/bin/fig16_offchip_traffic.rs

crates/bench/src/bin/fig16_offchip_traffic.rs:
