/root/repo/target/debug/deps/fig12_end_to_end-ecb739fe5b1aec64.d: crates/bench/src/bin/fig12_end_to_end.rs

/root/repo/target/debug/deps/fig12_end_to_end-ecb739fe5b1aec64: crates/bench/src/bin/fig12_end_to_end.rs

crates/bench/src/bin/fig12_end_to_end.rs:
