/root/repo/target/debug/deps/table3_taxonomy-7648c53f3934bfea.d: crates/bench/src/bin/table3_taxonomy.rs

/root/repo/target/debug/deps/table3_taxonomy-7648c53f3934bfea: crates/bench/src/bin/table3_taxonomy.rs

crates/bench/src/bin/table3_taxonomy.rs:
