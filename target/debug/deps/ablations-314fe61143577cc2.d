/root/repo/target/debug/deps/ablations-314fe61143577cc2.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-314fe61143577cc2: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
