/root/repo/target/debug/deps/table8_area_power-d97b6c32d64bba6a.d: crates/bench/src/bin/table8_area_power.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_area_power-d97b6c32d64bba6a.rmeta: crates/bench/src/bin/table8_area_power.rs Cargo.toml

crates/bench/src/bin/table8_area_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
