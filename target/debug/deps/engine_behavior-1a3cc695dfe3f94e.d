/root/repo/target/debug/deps/engine_behavior-1a3cc695dfe3f94e.d: crates/core/tests/engine_behavior.rs

/root/repo/target/debug/deps/engine_behavior-1a3cc695dfe3f94e: crates/core/tests/engine_behavior.rs

crates/core/tests/engine_behavior.rs:
