/root/repo/target/debug/deps/fig14_onchip_traffic-5e3b840bd14a5131.d: crates/bench/src/bin/fig14_onchip_traffic.rs

/root/repo/target/debug/deps/fig14_onchip_traffic-5e3b840bd14a5131: crates/bench/src/bin/fig14_onchip_traffic.rs

crates/bench/src/bin/fig14_onchip_traffic.rs:
