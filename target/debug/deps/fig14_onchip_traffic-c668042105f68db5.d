/root/repo/target/debug/deps/fig14_onchip_traffic-c668042105f68db5.d: crates/bench/src/bin/fig14_onchip_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_onchip_traffic-c668042105f68db5.rmeta: crates/bench/src/bin/fig14_onchip_traffic.rs Cargo.toml

crates/bench/src/bin/fig14_onchip_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
