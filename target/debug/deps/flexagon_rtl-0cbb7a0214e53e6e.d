/root/repo/target/debug/deps/flexagon_rtl-0cbb7a0214e53e6e.d: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/debug/deps/libflexagon_rtl-0cbb7a0214e53e6e.rlib: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/debug/deps/libflexagon_rtl-0cbb7a0214e53e6e.rmeta: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

crates/rtl/src/lib.rs:
crates/rtl/src/components.rs:
crates/rtl/src/energy.rs:
crates/rtl/src/naive.rs:
crates/rtl/src/table8.rs:
