/root/repo/target/debug/deps/network_properties-0f35da1637cb3ee4.d: crates/noc/tests/network_properties.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_properties-0f35da1637cb3ee4.rmeta: crates/noc/tests/network_properties.rs Cargo.toml

crates/noc/tests/network_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
