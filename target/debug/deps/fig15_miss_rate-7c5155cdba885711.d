/root/repo/target/debug/deps/fig15_miss_rate-7c5155cdba885711.d: crates/bench/src/bin/fig15_miss_rate.rs

/root/repo/target/debug/deps/fig15_miss_rate-7c5155cdba885711: crates/bench/src/bin/fig15_miss_rate.rs

crates/bench/src/bin/fig15_miss_rate.rs:
