/root/repo/target/debug/deps/flexagon_bench-0ff55e2a80a4a5fe.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_bench-0ff55e2a80a4a5fe.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
