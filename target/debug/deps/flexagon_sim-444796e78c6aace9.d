/root/repo/target/debug/deps/flexagon_sim-444796e78c6aace9.d: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

/root/repo/target/debug/deps/flexagon_sim-444796e78c6aace9: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/counters.rs:
crates/sim/src/phase.rs:
crates/sim/src/timing.rs:
