/root/repo/target/debug/deps/fig18_perf_per_area-d355406b0cd9d1d7.d: crates/bench/src/bin/fig18_perf_per_area.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_perf_per_area-d355406b0cd9d1d7.rmeta: crates/bench/src/bin/fig18_perf_per_area.rs Cargo.toml

crates/bench/src/bin/fig18_perf_per_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
