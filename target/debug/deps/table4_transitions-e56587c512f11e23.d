/root/repo/target/debug/deps/table4_transitions-e56587c512f11e23.d: crates/bench/src/bin/table4_transitions.rs

/root/repo/target/debug/deps/table4_transitions-e56587c512f11e23: crates/bench/src/bin/table4_transitions.rs

crates/bench/src/bin/table4_transitions.rs:
