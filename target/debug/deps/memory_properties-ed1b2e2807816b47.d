/root/repo/target/debug/deps/memory_properties-ed1b2e2807816b47.d: crates/mem/tests/memory_properties.rs

/root/repo/target/debug/deps/memory_properties-ed1b2e2807816b47: crates/mem/tests/memory_properties.rs

crates/mem/tests/memory_properties.rs:
