/root/repo/target/debug/deps/spgemm_cli-a096c5ce4bada8ca.d: crates/bench/src/bin/spgemm_cli.rs

/root/repo/target/debug/deps/spgemm_cli-a096c5ce4bada8ca: crates/bench/src/bin/spgemm_cli.rs

crates/bench/src/bin/spgemm_cli.rs:
