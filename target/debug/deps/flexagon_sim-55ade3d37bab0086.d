/root/repo/target/debug/deps/flexagon_sim-55ade3d37bab0086.d: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

/root/repo/target/debug/deps/libflexagon_sim-55ade3d37bab0086.rlib: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

/root/repo/target/debug/deps/libflexagon_sim-55ade3d37bab0086.rmeta: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/counters.rs:
crates/sim/src/phase.rs:
crates/sim/src/timing.rs:
