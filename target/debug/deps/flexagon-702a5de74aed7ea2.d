/root/repo/target/debug/deps/flexagon-702a5de74aed7ea2.d: src/lib.rs

/root/repo/target/debug/deps/libflexagon-702a5de74aed7ea2.rlib: src/lib.rs

/root/repo/target/debug/deps/libflexagon-702a5de74aed7ea2.rmeta: src/lib.rs

src/lib.rs:
