/root/repo/target/debug/deps/table6_layers-773430176ba40929.d: crates/bench/src/bin/table6_layers.rs

/root/repo/target/debug/deps/table6_layers-773430176ba40929: crates/bench/src/bin/table6_layers.rs

crates/bench/src/bin/table6_layers.rs:
