/root/repo/target/debug/deps/engine_correctness-13cbc13b68aeb210.d: crates/core/tests/engine_correctness.rs

/root/repo/target/debug/deps/engine_correctness-13cbc13b68aeb210: crates/core/tests/engine_correctness.rs

crates/core/tests/engine_correctness.rs:
