/root/repo/target/debug/deps/flexagon_noc-a7fe1238ecd4e51a.d: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

/root/repo/target/debug/deps/flexagon_noc-a7fe1238ecd4e51a: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

crates/noc/src/lib.rs:
crates/noc/src/distribution.rs:
crates/noc/src/mrn.rs:
crates/noc/src/multiplier.rs:
