/root/repo/target/debug/deps/flexagon_core-7dd30cbd862bb8fc.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dataflow.rs crates/core/src/engine/mod.rs crates/core/src/engine/gustavson.rs crates/core/src/engine/inner_product.rs crates/core/src/engine/outer_product.rs crates/core/src/engine/tiling.rs crates/core/src/error.rs crates/core/src/mapper.rs crates/core/src/report.rs crates/core/src/transitions.rs

/root/repo/target/debug/deps/libflexagon_core-7dd30cbd862bb8fc.rlib: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dataflow.rs crates/core/src/engine/mod.rs crates/core/src/engine/gustavson.rs crates/core/src/engine/inner_product.rs crates/core/src/engine/outer_product.rs crates/core/src/engine/tiling.rs crates/core/src/error.rs crates/core/src/mapper.rs crates/core/src/report.rs crates/core/src/transitions.rs

/root/repo/target/debug/deps/libflexagon_core-7dd30cbd862bb8fc.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dataflow.rs crates/core/src/engine/mod.rs crates/core/src/engine/gustavson.rs crates/core/src/engine/inner_product.rs crates/core/src/engine/outer_product.rs crates/core/src/engine/tiling.rs crates/core/src/error.rs crates/core/src/mapper.rs crates/core/src/report.rs crates/core/src/transitions.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/dataflow.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/gustavson.rs:
crates/core/src/engine/inner_product.rs:
crates/core/src/engine/outer_product.rs:
crates/core/src/engine/tiling.rs:
crates/core/src/error.rs:
crates/core/src/mapper.rs:
crates/core/src/report.rs:
crates/core/src/transitions.rs:
