/root/repo/target/debug/deps/engine_correctness-7ce5ceccacc22342.d: crates/core/tests/engine_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libengine_correctness-7ce5ceccacc22342.rmeta: crates/core/tests/engine_correctness.rs Cargo.toml

crates/core/tests/engine_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
