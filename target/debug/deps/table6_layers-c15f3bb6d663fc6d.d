/root/repo/target/debug/deps/table6_layers-c15f3bb6d663fc6d.d: crates/bench/src/bin/table6_layers.rs

/root/repo/target/debug/deps/table6_layers-c15f3bb6d663fc6d: crates/bench/src/bin/table6_layers.rs

crates/bench/src/bin/table6_layers.rs:
