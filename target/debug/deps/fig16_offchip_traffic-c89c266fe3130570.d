/root/repo/target/debug/deps/fig16_offchip_traffic-c89c266fe3130570.d: crates/bench/src/bin/fig16_offchip_traffic.rs

/root/repo/target/debug/deps/fig16_offchip_traffic-c89c266fe3130570: crates/bench/src/bin/fig16_offchip_traffic.rs

crates/bench/src/bin/fig16_offchip_traffic.rs:
