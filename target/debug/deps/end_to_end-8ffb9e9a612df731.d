/root/repo/target/debug/deps/end_to_end-8ffb9e9a612df731.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8ffb9e9a612df731: tests/end_to_end.rs

tests/end_to_end.rs:
