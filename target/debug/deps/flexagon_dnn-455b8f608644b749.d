/root/repo/target/debug/deps/flexagon_dnn-455b8f608644b749.d: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

/root/repo/target/debug/deps/libflexagon_dnn-455b8f608644b749.rlib: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

/root/repo/target/debug/deps/libflexagon_dnn-455b8f608644b749.rmeta: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

crates/dnn/src/lib.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/models.rs:
crates/dnn/src/stats.rs:
crates/dnn/src/table6.rs:
