/root/repo/target/debug/deps/table6_layers-1ee3f57a68641ba7.d: crates/bench/src/bin/table6_layers.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_layers-1ee3f57a68641ba7.rmeta: crates/bench/src/bin/table6_layers.rs Cargo.toml

crates/bench/src/bin/table6_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
