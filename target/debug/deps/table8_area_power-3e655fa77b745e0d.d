/root/repo/target/debug/deps/table8_area_power-3e655fa77b745e0d.d: crates/bench/src/bin/table8_area_power.rs

/root/repo/target/debug/deps/table8_area_power-3e655fa77b745e0d: crates/bench/src/bin/table8_area_power.rs

crates/bench/src/bin/table8_area_power.rs:
