/root/repo/target/debug/deps/fig17_naive_design-8d73de4d95207e95.d: crates/bench/src/bin/fig17_naive_design.rs

/root/repo/target/debug/deps/fig17_naive_design-8d73de4d95207e95: crates/bench/src/bin/fig17_naive_design.rs

crates/bench/src/bin/fig17_naive_design.rs:
