/root/repo/target/debug/deps/fig17_naive_design-02e05995ae95feaa.d: crates/bench/src/bin/fig17_naive_design.rs

/root/repo/target/debug/deps/fig17_naive_design-02e05995ae95feaa: crates/bench/src/bin/fig17_naive_design.rs

crates/bench/src/bin/fig17_naive_design.rs:
