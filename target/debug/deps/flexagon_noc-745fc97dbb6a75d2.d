/root/repo/target/debug/deps/flexagon_noc-745fc97dbb6a75d2.d: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_noc-745fc97dbb6a75d2.rmeta: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/distribution.rs:
crates/noc/src/mrn.rs:
crates/noc/src/multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
