/root/repo/target/debug/deps/table4_transitions-73366c669b0d1b35.d: crates/bench/src/bin/table4_transitions.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_transitions-73366c669b0d1b35.rmeta: crates/bench/src/bin/table4_transitions.rs Cargo.toml

crates/bench/src/bin/table4_transitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
