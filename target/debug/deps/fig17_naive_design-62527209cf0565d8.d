/root/repo/target/debug/deps/fig17_naive_design-62527209cf0565d8.d: crates/bench/src/bin/fig17_naive_design.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_naive_design-62527209cf0565d8.rmeta: crates/bench/src/bin/fig17_naive_design.rs Cargo.toml

crates/bench/src/bin/fig17_naive_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
