/root/repo/target/debug/deps/fig16_offchip_traffic-b812d332056993ce.d: crates/bench/src/bin/fig16_offchip_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_offchip_traffic-b812d332056993ce.rmeta: crates/bench/src/bin/fig16_offchip_traffic.rs Cargo.toml

crates/bench/src/bin/fig16_offchip_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
