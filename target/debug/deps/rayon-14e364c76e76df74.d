/root/repo/target/debug/deps/rayon-14e364c76e76df74.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-14e364c76e76df74.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
