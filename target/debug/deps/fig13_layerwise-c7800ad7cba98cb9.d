/root/repo/target/debug/deps/fig13_layerwise-c7800ad7cba98cb9.d: crates/bench/src/bin/fig13_layerwise.rs

/root/repo/target/debug/deps/fig13_layerwise-c7800ad7cba98cb9: crates/bench/src/bin/fig13_layerwise.rs

crates/bench/src/bin/fig13_layerwise.rs:
