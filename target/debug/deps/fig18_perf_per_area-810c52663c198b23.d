/root/repo/target/debug/deps/fig18_perf_per_area-810c52663c198b23.d: crates/bench/src/bin/fig18_perf_per_area.rs

/root/repo/target/debug/deps/fig18_perf_per_area-810c52663c198b23: crates/bench/src/bin/fig18_perf_per_area.rs

crates/bench/src/bin/fig18_perf_per_area.rs:
