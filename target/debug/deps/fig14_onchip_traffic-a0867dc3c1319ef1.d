/root/repo/target/debug/deps/fig14_onchip_traffic-a0867dc3c1319ef1.d: crates/bench/src/bin/fig14_onchip_traffic.rs

/root/repo/target/debug/deps/fig14_onchip_traffic-a0867dc3c1319ef1: crates/bench/src/bin/fig14_onchip_traffic.rs

crates/bench/src/bin/fig14_onchip_traffic.rs:
