/root/repo/target/debug/deps/paper_walkthrough-d7360a856db8a140.d: tests/paper_walkthrough.rs

/root/repo/target/debug/deps/paper_walkthrough-d7360a856db8a140: tests/paper_walkthrough.rs

tests/paper_walkthrough.rs:
