/root/repo/target/debug/deps/fig01_best_dataflow-398df3f9b8e654c4.d: crates/bench/src/bin/fig01_best_dataflow.rs

/root/repo/target/debug/deps/fig01_best_dataflow-398df3f9b8e654c4: crates/bench/src/bin/fig01_best_dataflow.rs

crates/bench/src/bin/fig01_best_dataflow.rs:
