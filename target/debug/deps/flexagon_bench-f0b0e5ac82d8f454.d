/root/repo/target/debug/deps/flexagon_bench-f0b0e5ac82d8f454.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexagon_bench-f0b0e5ac82d8f454.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexagon_bench-f0b0e5ac82d8f454.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/runner.rs:
