/root/repo/target/debug/deps/proptest-322a4cf58def1516.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-322a4cf58def1516.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
