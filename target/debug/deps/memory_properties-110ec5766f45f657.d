/root/repo/target/debug/deps/memory_properties-110ec5766f45f657.d: crates/mem/tests/memory_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_properties-110ec5766f45f657.rmeta: crates/mem/tests/memory_properties.rs Cargo.toml

crates/mem/tests/memory_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
