/root/repo/target/debug/deps/fig01_best_dataflow-f646e31ff734d605.d: crates/bench/src/bin/fig01_best_dataflow.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_best_dataflow-f646e31ff734d605.rmeta: crates/bench/src/bin/fig01_best_dataflow.rs Cargo.toml

crates/bench/src/bin/fig01_best_dataflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
