/root/repo/target/debug/deps/fig15_miss_rate-5fe41f9fd15429de.d: crates/bench/src/bin/fig15_miss_rate.rs

/root/repo/target/debug/deps/fig15_miss_rate-5fe41f9fd15429de: crates/bench/src/bin/fig15_miss_rate.rs

crates/bench/src/bin/fig15_miss_rate.rs:
