/root/repo/target/debug/deps/table2_models-6769449458a3ee2a.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/debug/deps/table2_models-6769449458a3ee2a: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
