/root/repo/target/debug/deps/flexagon_sim-8974702b4590a3d6.d: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_sim-8974702b4590a3d6.rmeta: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/counters.rs:
crates/sim/src/phase.rs:
crates/sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
