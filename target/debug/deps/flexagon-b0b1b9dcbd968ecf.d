/root/repo/target/debug/deps/flexagon-b0b1b9dcbd968ecf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon-b0b1b9dcbd968ecf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
