/root/repo/target/debug/deps/table8_area_power-2f06de829ccbf05f.d: crates/bench/src/bin/table8_area_power.rs

/root/repo/target/debug/deps/table8_area_power-2f06de829ccbf05f: crates/bench/src/bin/table8_area_power.rs

crates/bench/src/bin/table8_area_power.rs:
