/root/repo/target/debug/deps/fig13_layerwise-e6c5765c8fa4fe43.d: crates/bench/src/bin/fig13_layerwise.rs

/root/repo/target/debug/deps/fig13_layerwise-e6c5765c8fa4fe43: crates/bench/src/bin/fig13_layerwise.rs

crates/bench/src/bin/fig13_layerwise.rs:
