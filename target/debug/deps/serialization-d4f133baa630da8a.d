/root/repo/target/debug/deps/serialization-d4f133baa630da8a.d: tests/serialization.rs Cargo.toml

/root/repo/target/debug/deps/libserialization-d4f133baa630da8a.rmeta: tests/serialization.rs Cargo.toml

tests/serialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
