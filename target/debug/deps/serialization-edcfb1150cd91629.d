/root/repo/target/debug/deps/serialization-edcfb1150cd91629.d: tests/serialization.rs

/root/repo/target/debug/deps/serialization-edcfb1150cd91629: tests/serialization.rs

tests/serialization.rs:
