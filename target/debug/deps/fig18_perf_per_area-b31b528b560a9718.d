/root/repo/target/debug/deps/fig18_perf_per_area-b31b528b560a9718.d: crates/bench/src/bin/fig18_perf_per_area.rs

/root/repo/target/debug/deps/fig18_perf_per_area-b31b528b560a9718: crates/bench/src/bin/fig18_perf_per_area.rs

crates/bench/src/bin/fig18_perf_per_area.rs:
