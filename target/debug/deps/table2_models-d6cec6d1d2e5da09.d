/root/repo/target/debug/deps/table2_models-d6cec6d1d2e5da09.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/debug/deps/table2_models-d6cec6d1d2e5da09: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
