/root/repo/target/debug/deps/spgemm_cli-4a4e9c6304f7be10.d: crates/bench/src/bin/spgemm_cli.rs

/root/repo/target/debug/deps/spgemm_cli-4a4e9c6304f7be10: crates/bench/src/bin/spgemm_cli.rs

crates/bench/src/bin/spgemm_cli.rs:
