/root/repo/target/debug/deps/spgemm_cli-68fa854458cc9601.d: crates/bench/src/bin/spgemm_cli.rs Cargo.toml

/root/repo/target/debug/deps/libspgemm_cli-68fa854458cc9601.rmeta: crates/bench/src/bin/spgemm_cli.rs Cargo.toml

crates/bench/src/bin/spgemm_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
