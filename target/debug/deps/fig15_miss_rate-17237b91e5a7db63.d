/root/repo/target/debug/deps/fig15_miss_rate-17237b91e5a7db63.d: crates/bench/src/bin/fig15_miss_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_miss_rate-17237b91e5a7db63.rmeta: crates/bench/src/bin/fig15_miss_rate.rs Cargo.toml

crates/bench/src/bin/fig15_miss_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
