/root/repo/target/debug/deps/flexagon_bench-24b4e611f87da4ac.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/flexagon_bench-24b4e611f87da4ac: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/runner.rs:
