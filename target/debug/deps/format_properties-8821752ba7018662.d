/root/repo/target/debug/deps/format_properties-8821752ba7018662.d: crates/sparse/tests/format_properties.rs Cargo.toml

/root/repo/target/debug/deps/libformat_properties-8821752ba7018662.rmeta: crates/sparse/tests/format_properties.rs Cargo.toml

crates/sparse/tests/format_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
