/root/repo/target/debug/deps/table8_area_power-c2394d409bbe5f4b.d: crates/bench/src/bin/table8_area_power.rs

/root/repo/target/debug/deps/table8_area_power-c2394d409bbe5f4b: crates/bench/src/bin/table8_area_power.rs

crates/bench/src/bin/table8_area_power.rs:
