/root/repo/target/debug/deps/fig12_end_to_end-72781155ff6d1689.d: crates/bench/src/bin/fig12_end_to_end.rs

/root/repo/target/debug/deps/fig12_end_to_end-72781155ff6d1689: crates/bench/src/bin/fig12_end_to_end.rs

crates/bench/src/bin/fig12_end_to_end.rs:
