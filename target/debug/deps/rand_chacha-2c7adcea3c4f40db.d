/root/repo/target/debug/deps/rand_chacha-2c7adcea3c4f40db.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-2c7adcea3c4f40db.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
