/root/repo/target/debug/deps/flexagon_mem-fc1281f816710dea.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/flexagon_mem-fc1281f816710dea: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/fifo.rs:
crates/mem/src/psram.rs:
crates/mem/src/wbuf.rs:
