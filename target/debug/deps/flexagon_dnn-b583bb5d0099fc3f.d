/root/repo/target/debug/deps/flexagon_dnn-b583bb5d0099fc3f.d: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

/root/repo/target/debug/deps/flexagon_dnn-b583bb5d0099fc3f: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

crates/dnn/src/lib.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/models.rs:
crates/dnn/src/stats.rs:
crates/dnn/src/table6.rs:
