/root/repo/target/debug/deps/flexagon_mem-1c79c9e1c7ca6284.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_mem-1c79c9e1c7ca6284.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/fifo.rs:
crates/mem/src/psram.rs:
crates/mem/src/wbuf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
