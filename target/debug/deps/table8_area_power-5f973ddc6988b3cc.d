/root/repo/target/debug/deps/table8_area_power-5f973ddc6988b3cc.d: crates/bench/src/bin/table8_area_power.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_area_power-5f973ddc6988b3cc.rmeta: crates/bench/src/bin/table8_area_power.rs Cargo.toml

crates/bench/src/bin/table8_area_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
