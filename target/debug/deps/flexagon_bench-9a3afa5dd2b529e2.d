/root/repo/target/debug/deps/flexagon_bench-9a3afa5dd2b529e2.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexagon_bench-9a3afa5dd2b529e2.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexagon_bench-9a3afa5dd2b529e2.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/runner.rs:
