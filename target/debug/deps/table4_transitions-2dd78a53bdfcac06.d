/root/repo/target/debug/deps/table4_transitions-2dd78a53bdfcac06.d: crates/bench/src/bin/table4_transitions.rs

/root/repo/target/debug/deps/table4_transitions-2dd78a53bdfcac06: crates/bench/src/bin/table4_transitions.rs

crates/bench/src/bin/table4_transitions.rs:
