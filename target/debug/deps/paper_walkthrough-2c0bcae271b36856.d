/root/repo/target/debug/deps/paper_walkthrough-2c0bcae271b36856.d: tests/paper_walkthrough.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_walkthrough-2c0bcae271b36856.rmeta: tests/paper_walkthrough.rs Cargo.toml

tests/paper_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
