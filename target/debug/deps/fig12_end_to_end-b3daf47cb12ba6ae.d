/root/repo/target/debug/deps/fig12_end_to_end-b3daf47cb12ba6ae.d: crates/bench/src/bin/fig12_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_end_to_end-b3daf47cb12ba6ae.rmeta: crates/bench/src/bin/fig12_end_to_end.rs Cargo.toml

crates/bench/src/bin/fig12_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
