/root/repo/target/debug/deps/fig13_layerwise-4f8c6942433cfa3f.d: crates/bench/src/bin/fig13_layerwise.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_layerwise-4f8c6942433cfa3f.rmeta: crates/bench/src/bin/fig13_layerwise.rs Cargo.toml

crates/bench/src/bin/fig13_layerwise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
