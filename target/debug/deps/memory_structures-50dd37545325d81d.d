/root/repo/target/debug/deps/memory_structures-50dd37545325d81d.d: crates/bench/benches/memory_structures.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_structures-50dd37545325d81d.rmeta: crates/bench/benches/memory_structures.rs Cargo.toml

crates/bench/benches/memory_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
