/root/repo/target/debug/deps/fig18_perf_per_area-69edffd4a17c3b90.d: crates/bench/src/bin/fig18_perf_per_area.rs

/root/repo/target/debug/deps/fig18_perf_per_area-69edffd4a17c3b90: crates/bench/src/bin/fig18_perf_per_area.rs

crates/bench/src/bin/fig18_perf_per_area.rs:
