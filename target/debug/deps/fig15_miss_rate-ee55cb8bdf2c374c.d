/root/repo/target/debug/deps/fig15_miss_rate-ee55cb8bdf2c374c.d: crates/bench/src/bin/fig15_miss_rate.rs

/root/repo/target/debug/deps/fig15_miss_rate-ee55cb8bdf2c374c: crates/bench/src/bin/fig15_miss_rate.rs

crates/bench/src/bin/fig15_miss_rate.rs:
