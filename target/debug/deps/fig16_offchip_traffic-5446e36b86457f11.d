/root/repo/target/debug/deps/fig16_offchip_traffic-5446e36b86457f11.d: crates/bench/src/bin/fig16_offchip_traffic.rs

/root/repo/target/debug/deps/fig16_offchip_traffic-5446e36b86457f11: crates/bench/src/bin/fig16_offchip_traffic.rs

crates/bench/src/bin/fig16_offchip_traffic.rs:
