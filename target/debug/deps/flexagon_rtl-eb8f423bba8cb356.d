/root/repo/target/debug/deps/flexagon_rtl-eb8f423bba8cb356.d: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/debug/deps/flexagon_rtl-eb8f423bba8cb356: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

crates/rtl/src/lib.rs:
crates/rtl/src/components.rs:
crates/rtl/src/energy.rs:
crates/rtl/src/naive.rs:
crates/rtl/src/table8.rs:
