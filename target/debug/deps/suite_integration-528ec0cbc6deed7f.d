/root/repo/target/debug/deps/suite_integration-528ec0cbc6deed7f.d: crates/dnn/tests/suite_integration.rs

/root/repo/target/debug/deps/suite_integration-528ec0cbc6deed7f: crates/dnn/tests/suite_integration.rs

crates/dnn/tests/suite_integration.rs:
