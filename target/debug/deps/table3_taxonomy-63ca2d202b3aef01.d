/root/repo/target/debug/deps/table3_taxonomy-63ca2d202b3aef01.d: crates/bench/src/bin/table3_taxonomy.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_taxonomy-63ca2d202b3aef01.rmeta: crates/bench/src/bin/table3_taxonomy.rs Cargo.toml

crates/bench/src/bin/table3_taxonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
