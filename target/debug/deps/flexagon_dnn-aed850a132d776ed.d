/root/repo/target/debug/deps/flexagon_dnn-aed850a132d776ed.d: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_dnn-aed850a132d776ed.rmeta: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs Cargo.toml

crates/dnn/src/lib.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/models.rs:
crates/dnn/src/stats.rs:
crates/dnn/src/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
