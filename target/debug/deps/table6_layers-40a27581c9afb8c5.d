/root/repo/target/debug/deps/table6_layers-40a27581c9afb8c5.d: crates/bench/src/bin/table6_layers.rs

/root/repo/target/debug/deps/table6_layers-40a27581c9afb8c5: crates/bench/src/bin/table6_layers.rs

crates/bench/src/bin/table6_layers.rs:
