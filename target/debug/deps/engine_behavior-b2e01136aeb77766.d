/root/repo/target/debug/deps/engine_behavior-b2e01136aeb77766.d: crates/core/tests/engine_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libengine_behavior-b2e01136aeb77766.rmeta: crates/core/tests/engine_behavior.rs Cargo.toml

crates/core/tests/engine_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
