/root/repo/target/debug/deps/spgemm_kernels-84e2d726b909afcc.d: crates/bench/benches/spgemm_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libspgemm_kernels-84e2d726b909afcc.rmeta: crates/bench/benches/spgemm_kernels.rs Cargo.toml

crates/bench/benches/spgemm_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
