/root/repo/target/debug/deps/flexagon_core-d61984d0da90593c.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dataflow.rs crates/core/src/engine/mod.rs crates/core/src/engine/gustavson.rs crates/core/src/engine/inner_product.rs crates/core/src/engine/outer_product.rs crates/core/src/engine/tiling.rs crates/core/src/error.rs crates/core/src/mapper.rs crates/core/src/report.rs crates/core/src/transitions.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_core-d61984d0da90593c.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dataflow.rs crates/core/src/engine/mod.rs crates/core/src/engine/gustavson.rs crates/core/src/engine/inner_product.rs crates/core/src/engine/outer_product.rs crates/core/src/engine/tiling.rs crates/core/src/error.rs crates/core/src/mapper.rs crates/core/src/report.rs crates/core/src/transitions.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/dataflow.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/gustavson.rs:
crates/core/src/engine/inner_product.rs:
crates/core/src/engine/outer_product.rs:
crates/core/src/engine/tiling.rs:
crates/core/src/error.rs:
crates/core/src/mapper.rs:
crates/core/src/report.rs:
crates/core/src/transitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
