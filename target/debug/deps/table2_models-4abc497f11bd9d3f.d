/root/repo/target/debug/deps/table2_models-4abc497f11bd9d3f.d: crates/bench/src/bin/table2_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_models-4abc497f11bd9d3f.rmeta: crates/bench/src/bin/table2_models.rs Cargo.toml

crates/bench/src/bin/table2_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
