/root/repo/target/debug/deps/fig16_offchip_traffic-03da334cdd68de95.d: crates/bench/src/bin/fig16_offchip_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_offchip_traffic-03da334cdd68de95.rmeta: crates/bench/src/bin/fig16_offchip_traffic.rs Cargo.toml

crates/bench/src/bin/fig16_offchip_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
