/root/repo/target/debug/deps/repro_all-7ec298aae06d87d1.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-7ec298aae06d87d1: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
