/root/repo/target/debug/deps/repro_all-776c0185b6380445.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-776c0185b6380445: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
