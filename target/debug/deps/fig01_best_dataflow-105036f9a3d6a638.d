/root/repo/target/debug/deps/fig01_best_dataflow-105036f9a3d6a638.d: crates/bench/src/bin/fig01_best_dataflow.rs

/root/repo/target/debug/deps/fig01_best_dataflow-105036f9a3d6a638: crates/bench/src/bin/fig01_best_dataflow.rs

crates/bench/src/bin/fig01_best_dataflow.rs:
