/root/repo/target/debug/deps/network_properties-e01275419f7b7fa0.d: crates/noc/tests/network_properties.rs

/root/repo/target/debug/deps/network_properties-e01275419f7b7fa0: crates/noc/tests/network_properties.rs

crates/noc/tests/network_properties.rs:
