/root/repo/target/debug/deps/repro_all-54a1c7143b0480b3.d: crates/bench/src/bin/repro_all.rs Cargo.toml

/root/repo/target/debug/deps/librepro_all-54a1c7143b0480b3.rmeta: crates/bench/src/bin/repro_all.rs Cargo.toml

crates/bench/src/bin/repro_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
