/root/repo/target/debug/deps/table3_taxonomy-adb797c1441a4248.d: crates/bench/src/bin/table3_taxonomy.rs

/root/repo/target/debug/deps/table3_taxonomy-adb797c1441a4248: crates/bench/src/bin/table3_taxonomy.rs

crates/bench/src/bin/table3_taxonomy.rs:
