/root/repo/target/debug/deps/flexagon_rtl-73af6613991fc9c3.d: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_rtl-73af6613991fc9c3.rmeta: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/components.rs:
crates/rtl/src/energy.rs:
crates/rtl/src/naive.rs:
crates/rtl/src/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
