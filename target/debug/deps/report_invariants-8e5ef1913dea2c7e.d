/root/repo/target/debug/deps/report_invariants-8e5ef1913dea2c7e.d: crates/core/tests/report_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libreport_invariants-8e5ef1913dea2c7e.rmeta: crates/core/tests/report_invariants.rs Cargo.toml

crates/core/tests/report_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
