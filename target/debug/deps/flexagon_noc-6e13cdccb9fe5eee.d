/root/repo/target/debug/deps/flexagon_noc-6e13cdccb9fe5eee.d: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_noc-6e13cdccb9fe5eee.rmeta: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/distribution.rs:
crates/noc/src/mrn.rs:
crates/noc/src/multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
