/root/repo/target/debug/deps/suite_integration-5ed0f59accbfa651.d: crates/dnn/tests/suite_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_integration-5ed0f59accbfa651.rmeta: crates/dnn/tests/suite_integration.rs Cargo.toml

crates/dnn/tests/suite_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
