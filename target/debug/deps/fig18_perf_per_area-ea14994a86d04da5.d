/root/repo/target/debug/deps/fig18_perf_per_area-ea14994a86d04da5.d: crates/bench/src/bin/fig18_perf_per_area.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_perf_per_area-ea14994a86d04da5.rmeta: crates/bench/src/bin/fig18_perf_per_area.rs Cargo.toml

crates/bench/src/bin/fig18_perf_per_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
