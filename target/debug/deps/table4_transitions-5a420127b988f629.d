/root/repo/target/debug/deps/table4_transitions-5a420127b988f629.d: crates/bench/src/bin/table4_transitions.rs

/root/repo/target/debug/deps/table4_transitions-5a420127b988f629: crates/bench/src/bin/table4_transitions.rs

crates/bench/src/bin/table4_transitions.rs:
