/root/repo/target/debug/deps/flexagon_sparse-059f40cb01647d4c.d: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libflexagon_sparse-059f40cb01647d4c.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/bitmap.rs:
crates/sparse/src/compressed.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/element.rs:
crates/sparse/src/error.rs:
crates/sparse/src/fiber.rs:
crates/sparse/src/gen.rs:
crates/sparse/src/io.rs:
crates/sparse/src/merge.rs:
crates/sparse/src/reference.rs:
crates/sparse/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
