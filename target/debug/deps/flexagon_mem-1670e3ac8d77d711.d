/root/repo/target/debug/deps/flexagon_mem-1670e3ac8d77d711.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/libflexagon_mem-1670e3ac8d77d711.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/libflexagon_mem-1670e3ac8d77d711.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/fifo.rs:
crates/mem/src/psram.rs:
crates/mem/src/wbuf.rs:
