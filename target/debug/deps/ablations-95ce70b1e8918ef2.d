/root/repo/target/debug/deps/ablations-95ce70b1e8918ef2.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-95ce70b1e8918ef2: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
