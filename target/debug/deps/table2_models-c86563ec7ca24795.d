/root/repo/target/debug/deps/table2_models-c86563ec7ca24795.d: crates/bench/src/bin/table2_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_models-c86563ec7ca24795.rmeta: crates/bench/src/bin/table2_models.rs Cargo.toml

crates/bench/src/bin/table2_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
