/root/repo/target/debug/deps/fig13_layerwise-4203f10d4f087bf5.d: crates/bench/src/bin/fig13_layerwise.rs

/root/repo/target/debug/deps/fig13_layerwise-4203f10d4f087bf5: crates/bench/src/bin/fig13_layerwise.rs

crates/bench/src/bin/fig13_layerwise.rs:
