/root/repo/target/debug/examples/format_transitions-b8d27faf819b7d8e.d: examples/format_transitions.rs Cargo.toml

/root/repo/target/debug/examples/libformat_transitions-b8d27faf819b7d8e.rmeta: examples/format_transitions.rs Cargo.toml

examples/format_transitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
