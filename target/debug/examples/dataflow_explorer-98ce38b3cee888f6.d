/root/repo/target/debug/examples/dataflow_explorer-98ce38b3cee888f6.d: examples/dataflow_explorer.rs

/root/repo/target/debug/examples/dataflow_explorer-98ce38b3cee888f6: examples/dataflow_explorer.rs

examples/dataflow_explorer.rs:
