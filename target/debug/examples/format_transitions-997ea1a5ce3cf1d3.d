/root/repo/target/debug/examples/format_transitions-997ea1a5ce3cf1d3.d: examples/format_transitions.rs

/root/repo/target/debug/examples/format_transitions-997ea1a5ce3cf1d3: examples/format_transitions.rs

examples/format_transitions.rs:
