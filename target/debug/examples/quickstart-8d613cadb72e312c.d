/root/repo/target/debug/examples/quickstart-8d613cadb72e312c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8d613cadb72e312c: examples/quickstart.rs

examples/quickstart.rs:
