/root/repo/target/debug/examples/dnn_inference-ab5a15f0da6c518b.d: examples/dnn_inference.rs

/root/repo/target/debug/examples/dnn_inference-ab5a15f0da6c518b: examples/dnn_inference.rs

examples/dnn_inference.rs:
