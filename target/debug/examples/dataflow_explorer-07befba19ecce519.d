/root/repo/target/debug/examples/dataflow_explorer-07befba19ecce519.d: examples/dataflow_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libdataflow_explorer-07befba19ecce519.rmeta: examples/dataflow_explorer.rs Cargo.toml

examples/dataflow_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
