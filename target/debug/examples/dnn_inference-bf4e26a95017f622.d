/root/repo/target/debug/examples/dnn_inference-bf4e26a95017f622.d: examples/dnn_inference.rs Cargo.toml

/root/repo/target/debug/examples/libdnn_inference-bf4e26a95017f622.rmeta: examples/dnn_inference.rs Cargo.toml

examples/dnn_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
