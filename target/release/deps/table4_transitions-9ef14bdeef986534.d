/root/repo/target/release/deps/table4_transitions-9ef14bdeef986534.d: crates/bench/src/bin/table4_transitions.rs

/root/repo/target/release/deps/table4_transitions-9ef14bdeef986534: crates/bench/src/bin/table4_transitions.rs

crates/bench/src/bin/table4_transitions.rs:
