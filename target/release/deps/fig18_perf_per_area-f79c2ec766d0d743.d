/root/repo/target/release/deps/fig18_perf_per_area-f79c2ec766d0d743.d: crates/bench/src/bin/fig18_perf_per_area.rs

/root/repo/target/release/deps/fig18_perf_per_area-f79c2ec766d0d743: crates/bench/src/bin/fig18_perf_per_area.rs

crates/bench/src/bin/fig18_perf_per_area.rs:
