/root/repo/target/release/deps/table2_models-10bf8d5213b38013.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/release/deps/table2_models-10bf8d5213b38013: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
