/root/repo/target/release/deps/flexagon_sparse-8b332944bd45f996.d: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs

/root/repo/target/release/deps/libflexagon_sparse-8b332944bd45f996.rlib: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs

/root/repo/target/release/deps/libflexagon_sparse-8b332944bd45f996.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bitmap.rs crates/sparse/src/compressed.rs crates/sparse/src/dense.rs crates/sparse/src/element.rs crates/sparse/src/error.rs crates/sparse/src/fiber.rs crates/sparse/src/gen.rs crates/sparse/src/io.rs crates/sparse/src/merge.rs crates/sparse/src/reference.rs crates/sparse/src/stats.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bitmap.rs:
crates/sparse/src/compressed.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/element.rs:
crates/sparse/src/error.rs:
crates/sparse/src/fiber.rs:
crates/sparse/src/gen.rs:
crates/sparse/src/io.rs:
crates/sparse/src/merge.rs:
crates/sparse/src/reference.rs:
crates/sparse/src/stats.rs:
