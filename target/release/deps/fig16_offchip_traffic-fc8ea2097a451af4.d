/root/repo/target/release/deps/fig16_offchip_traffic-fc8ea2097a451af4.d: crates/bench/src/bin/fig16_offchip_traffic.rs

/root/repo/target/release/deps/fig16_offchip_traffic-fc8ea2097a451af4: crates/bench/src/bin/fig16_offchip_traffic.rs

crates/bench/src/bin/fig16_offchip_traffic.rs:
