/root/repo/target/release/deps/serde_json-2d3e4eb1dc158def.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-2d3e4eb1dc158def.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-2d3e4eb1dc158def.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
