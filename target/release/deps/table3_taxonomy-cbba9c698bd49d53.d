/root/repo/target/release/deps/table3_taxonomy-cbba9c698bd49d53.d: crates/bench/src/bin/table3_taxonomy.rs

/root/repo/target/release/deps/table3_taxonomy-cbba9c698bd49d53: crates/bench/src/bin/table3_taxonomy.rs

crates/bench/src/bin/table3_taxonomy.rs:
