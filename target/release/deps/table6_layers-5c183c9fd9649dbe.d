/root/repo/target/release/deps/table6_layers-5c183c9fd9649dbe.d: crates/bench/src/bin/table6_layers.rs

/root/repo/target/release/deps/table6_layers-5c183c9fd9649dbe: crates/bench/src/bin/table6_layers.rs

crates/bench/src/bin/table6_layers.rs:
