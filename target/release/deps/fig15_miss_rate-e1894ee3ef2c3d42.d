/root/repo/target/release/deps/fig15_miss_rate-e1894ee3ef2c3d42.d: crates/bench/src/bin/fig15_miss_rate.rs

/root/repo/target/release/deps/fig15_miss_rate-e1894ee3ef2c3d42: crates/bench/src/bin/fig15_miss_rate.rs

crates/bench/src/bin/fig15_miss_rate.rs:
