/root/repo/target/release/deps/fig14_onchip_traffic-4ae21bbe43606662.d: crates/bench/src/bin/fig14_onchip_traffic.rs

/root/repo/target/release/deps/fig14_onchip_traffic-4ae21bbe43606662: crates/bench/src/bin/fig14_onchip_traffic.rs

crates/bench/src/bin/fig14_onchip_traffic.rs:
