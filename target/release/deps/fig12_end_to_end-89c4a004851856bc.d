/root/repo/target/release/deps/fig12_end_to_end-89c4a004851856bc.d: crates/bench/src/bin/fig12_end_to_end.rs

/root/repo/target/release/deps/fig12_end_to_end-89c4a004851856bc: crates/bench/src/bin/fig12_end_to_end.rs

crates/bench/src/bin/fig12_end_to_end.rs:
