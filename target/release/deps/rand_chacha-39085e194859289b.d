/root/repo/target/release/deps/rand_chacha-39085e194859289b.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-39085e194859289b.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-39085e194859289b.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
