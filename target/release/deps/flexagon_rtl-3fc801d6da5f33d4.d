/root/repo/target/release/deps/flexagon_rtl-3fc801d6da5f33d4.d: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/release/deps/libflexagon_rtl-3fc801d6da5f33d4.rlib: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

/root/repo/target/release/deps/libflexagon_rtl-3fc801d6da5f33d4.rmeta: crates/rtl/src/lib.rs crates/rtl/src/components.rs crates/rtl/src/energy.rs crates/rtl/src/naive.rs crates/rtl/src/table8.rs

crates/rtl/src/lib.rs:
crates/rtl/src/components.rs:
crates/rtl/src/energy.rs:
crates/rtl/src/naive.rs:
crates/rtl/src/table8.rs:
