/root/repo/target/release/deps/flexagon_noc-7c1cdf5811b43b2d.d: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

/root/repo/target/release/deps/libflexagon_noc-7c1cdf5811b43b2d.rlib: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

/root/repo/target/release/deps/libflexagon_noc-7c1cdf5811b43b2d.rmeta: crates/noc/src/lib.rs crates/noc/src/distribution.rs crates/noc/src/mrn.rs crates/noc/src/multiplier.rs

crates/noc/src/lib.rs:
crates/noc/src/distribution.rs:
crates/noc/src/mrn.rs:
crates/noc/src/multiplier.rs:
