/root/repo/target/release/deps/ablations-c30e25efa201da29.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-c30e25efa201da29: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
