/root/repo/target/release/deps/repro_all-731bfcf3cc44b0f0.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-731bfcf3cc44b0f0: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
