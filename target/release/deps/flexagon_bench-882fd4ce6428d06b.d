/root/repo/target/release/deps/flexagon_bench-882fd4ce6428d06b.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libflexagon_bench-882fd4ce6428d06b.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libflexagon_bench-882fd4ce6428d06b.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/runner.rs:
