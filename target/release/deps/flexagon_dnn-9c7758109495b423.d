/root/repo/target/release/deps/flexagon_dnn-9c7758109495b423.d: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

/root/repo/target/release/deps/libflexagon_dnn-9c7758109495b423.rlib: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

/root/repo/target/release/deps/libflexagon_dnn-9c7758109495b423.rmeta: crates/dnn/src/lib.rs crates/dnn/src/layer.rs crates/dnn/src/models.rs crates/dnn/src/stats.rs crates/dnn/src/table6.rs

crates/dnn/src/lib.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/models.rs:
crates/dnn/src/stats.rs:
crates/dnn/src/table6.rs:
