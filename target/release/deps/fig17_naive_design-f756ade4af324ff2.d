/root/repo/target/release/deps/fig17_naive_design-f756ade4af324ff2.d: crates/bench/src/bin/fig17_naive_design.rs

/root/repo/target/release/deps/fig17_naive_design-f756ade4af324ff2: crates/bench/src/bin/fig17_naive_design.rs

crates/bench/src/bin/fig17_naive_design.rs:
