/root/repo/target/release/deps/fig13_layerwise-e92f83b081cdaadb.d: crates/bench/src/bin/fig13_layerwise.rs

/root/repo/target/release/deps/fig13_layerwise-e92f83b081cdaadb: crates/bench/src/bin/fig13_layerwise.rs

crates/bench/src/bin/fig13_layerwise.rs:
