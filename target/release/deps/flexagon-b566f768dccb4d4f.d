/root/repo/target/release/deps/flexagon-b566f768dccb4d4f.d: src/lib.rs

/root/repo/target/release/deps/libflexagon-b566f768dccb4d4f.rlib: src/lib.rs

/root/repo/target/release/deps/libflexagon-b566f768dccb4d4f.rmeta: src/lib.rs

src/lib.rs:
