/root/repo/target/release/deps/flexagon_mem-32965cbf0c165236.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

/root/repo/target/release/deps/libflexagon_mem-32965cbf0c165236.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

/root/repo/target/release/deps/libflexagon_mem-32965cbf0c165236.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/fifo.rs crates/mem/src/psram.rs crates/mem/src/wbuf.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/fifo.rs:
crates/mem/src/psram.rs:
crates/mem/src/wbuf.rs:
