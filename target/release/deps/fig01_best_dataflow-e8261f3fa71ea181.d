/root/repo/target/release/deps/fig01_best_dataflow-e8261f3fa71ea181.d: crates/bench/src/bin/fig01_best_dataflow.rs

/root/repo/target/release/deps/fig01_best_dataflow-e8261f3fa71ea181: crates/bench/src/bin/fig01_best_dataflow.rs

crates/bench/src/bin/fig01_best_dataflow.rs:
