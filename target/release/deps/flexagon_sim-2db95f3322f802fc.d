/root/repo/target/release/deps/flexagon_sim-2db95f3322f802fc.d: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

/root/repo/target/release/deps/libflexagon_sim-2db95f3322f802fc.rlib: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

/root/repo/target/release/deps/libflexagon_sim-2db95f3322f802fc.rmeta: crates/sim/src/lib.rs crates/sim/src/counters.rs crates/sim/src/phase.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/counters.rs:
crates/sim/src/phase.rs:
crates/sim/src/timing.rs:
