/root/repo/target/release/deps/spgemm_cli-371c92a4d98933ae.d: crates/bench/src/bin/spgemm_cli.rs

/root/repo/target/release/deps/spgemm_cli-371c92a4d98933ae: crates/bench/src/bin/spgemm_cli.rs

crates/bench/src/bin/spgemm_cli.rs:
