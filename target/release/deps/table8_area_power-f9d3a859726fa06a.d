/root/repo/target/release/deps/table8_area_power-f9d3a859726fa06a.d: crates/bench/src/bin/table8_area_power.rs

/root/repo/target/release/deps/table8_area_power-f9d3a859726fa06a: crates/bench/src/bin/table8_area_power.rs

crates/bench/src/bin/table8_area_power.rs:
