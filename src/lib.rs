//! # Flexagon
//!
//! A from-scratch Rust reproduction of *"Flexagon: A Multi-Dataflow
//! Sparse-Sparse Matrix Multiplication Accelerator for Efficient DNN
//! Processing"* (ASPLOS 2023).
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! * [`sparse`] — compressed formats (unified CSR/CSC), fibers, generators,
//!   reference SpMSpM kernels.
//! * [`sim`] — cycle-accounting substrate.
//! * [`mem`] — the 3-tier L1 memory organization (STA FIFO, STR cache,
//!   PSRAM) plus the DRAM model.
//! * [`noc`] — the three on-chip networks (distribution, multiplier,
//!   merger-reduction) and the baseline reduction/merger networks.
//! * [`core`] — the accelerator engine, the six dataflows, the baseline
//!   accelerators (SIGMA-like, SpArch-like, GAMMA-like, CPU) and the mapper.
//! * [`dnn`] — the eight-model sparse DNN workload suite.
//! * [`rtl`] — area/power models calibrated to the paper's RTL results.
//!
//! # Quickstart
//!
//! ```
//! use flexagon::core::{Accelerator, Dataflow, Flexagon};
//! use flexagon::sparse::{gen, MajorOrder};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let a = gen::random(64, 64, 0.2, MajorOrder::Row, &mut rng);
//! let b = gen::random(64, 64, 0.3, MajorOrder::Row, &mut rng);
//!
//! let accel = Flexagon::with_defaults();
//! let run = accel.run(&a, &b, Dataflow::GustavsonM)?;
//! println!("{} cycles, {} bytes off-chip", run.report.total_cycles, run.report.offchip_bytes());
//! # Ok(())
//! # }
//! ```

pub use flexagon_core as core;
pub use flexagon_dnn as dnn;
pub use flexagon_mem as mem;
pub use flexagon_noc as noc;
pub use flexagon_rtl as rtl;
pub use flexagon_sim as sim;
pub use flexagon_sparse as sparse;
