//! End-to-end sparse DNN execution: run a full model from the paper's
//! suite layer by layer, letting the oracle mapper pick each layer's
//! dataflow, and compare against the fixed-dataflow baselines.
//!
//! Run with `cargo run --release --example dnn_inference [MODEL]` where
//! MODEL is one of A, S, V, R, S-R, S-M, DB, MB (default: S).

use flexagon::core::{
    Accelerator, Dataflow, ExecutionRequest, Flexagon, GammaLike, SigmaLike, SparchLike,
};
use flexagon::dnn::{suite, DnnModel};

fn pick_model(arg: Option<String>) -> DnnModel {
    let code = arg.unwrap_or_else(|| "S".to_owned());
    suite()
        .into_iter()
        .find(|m| m.short == code)
        .unwrap_or_else(|| {
            eprintln!("unknown model '{code}', using SqueezeNet");
            DnnModel::squeezenet()
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = pick_model(std::env::args().nth(1));
    println!(
        "Running {} ({} layers, domain {})\n",
        model.name,
        model.layers.len(),
        model.domain
    );

    let flexagon = Flexagon::with_defaults();
    let sigma = SigmaLike::with_defaults();
    let sparch = SparchLike::with_defaults();
    let gamma = GammaLike::with_defaults();

    let mut totals = [0u64; 4]; // sigma, sparch, gamma, flexagon
    let mut winners = [0usize; 3];
    for layer in &model.layers {
        let mats = layer.materialize(7);
        let ip = sigma
            .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(Dataflow::InnerProductM))?
            .output;
        let op = sparch
            .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(Dataflow::OuterProductM))?
            .output;
        let gu = gamma
            .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(Dataflow::GustavsonM))?
            .output;
        let cycles = [
            ip.report.total_cycles,
            op.report.total_cycles,
            gu.report.total_cycles,
        ];
        let best = (0..3).min_by_key(|&i| cycles[i]).expect("three runs");
        winners[best] += 1;
        totals[0] += cycles[0];
        totals[1] += cycles[1];
        totals[2] += cycles[2];
        totals[3] += cycles[best];
        println!(
            "  layer {:>3} {:<10} [{}x{}x{}]  IP {:>10}  OP {:>10}  Gust {:>10}  -> {}",
            layer.index,
            layer.name,
            layer.m,
            layer.k,
            layer.n,
            cycles[0],
            cycles[1],
            cycles[2],
            ["IP", "OP", "Gust"][best],
        );
    }
    let _ = &flexagon; // Flexagon's per-layer result is the winning dataflow.

    println!("\nTotals over the whole model:");
    for (name, cycles) in ["SIGMA-like", "Sparch-like", "GAMMA-like", "Flexagon"]
        .iter()
        .zip(totals)
    {
        println!(
            "  {:<12} {:>12} cycles  ({:.2}x vs SIGMA-like)",
            name,
            cycles,
            totals[0] as f64 / cycles as f64
        );
    }
    println!(
        "\nPer-layer winners: IP {} / OP {} / Gust {} — the dataflow mix is what \
         a fixed-dataflow accelerator cannot exploit.",
        winners[0], winners[1], winners[2]
    );
    Ok(())
}
