//! Quickstart: build two sparse matrices, run Flexagon under all six
//! dataflows, verify the result against a dense reference, and inspect the
//! report.
//!
//! Run with `cargo run --release --example quickstart`.

use flexagon::core::{Accelerator, Dataflow, ExecutionRequest, Flexagon};
use flexagon::sparse::{gen, DenseMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a sparse problem: C[256x192] = A[256x320] x B[320x192],
    //    with 80% zero weights and 55% zero activations.
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    let a = gen::random(256, 320, 0.20, MajorOrder::Row, &mut rng);
    let b = gen::random(320, 192, 0.45, MajorOrder::Row, &mut rng);
    println!(
        "A: {}x{}, {} nnz ({:.1}% sparse); B: {}x{}, {} nnz ({:.1}% sparse)\n",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.sparsity_percent(),
        b.rows(),
        b.cols(),
        b.nnz(),
        b.sparsity_percent()
    );

    // 2. Run the paper's Table 5 configuration under every dataflow.
    let accel = Flexagon::with_defaults();
    let golden = DenseMatrix::from_compressed(&a).matmul(&DenseMatrix::from_compressed(&b))?;
    println!(
        "{:<20} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "dataflow", "cycles", "tiles", "miss%", "onchip MiB", "offchip KiB"
    );
    let mut best: Option<(Dataflow, u64)> = None;
    for df in Dataflow::ALL {
        let out = accel
            .execute(ExecutionRequest::new(&a, &b).dataflow(df))?
            .output;
        // Every dataflow computes the exact same product.
        assert!(
            DenseMatrix::from_compressed(&out.c).approx_eq(&golden, 1e-2),
            "functional mismatch under {df}"
        );
        let r = &out.report;
        println!(
            "{:<20} {:>10} {:>8} {:>7.2}% {:>12.2} {:>12.1}",
            df.to_string(),
            r.total_cycles,
            r.tiles,
            100.0 * r.cache.miss_rate(),
            r.onchip_bytes() as f64 / (1024.0 * 1024.0),
            r.offchip_bytes() as f64 / 1024.0,
        );
        if best.is_none_or(|(_, c)| r.total_cycles < c) {
            best = Some((df, r.total_cycles));
        }
    }
    let (best_df, best_cycles) = best.expect("six dataflows ran");
    println!("\nBest dataflow for this layer: {best_df} ({best_cycles} cycles).");

    // 3. The heuristic strategy picks a dataflow from matrix features alone
    //    (its calibrated cost model; no six-way sweep) and runs it once —
    //    the production fast path, with the oracle sweep above as auditor.
    use flexagon::core::MappingStrategy;
    let ex = accel.execute(ExecutionRequest::new(&a, &b).strategy(MappingStrategy::Heuristic))?;
    let (predicted, fast) = (ex.dataflow, ex.output);
    println!(
        "Heuristic mapper picks:       {predicted} ({} cycles, {:.2}x the best, 1 run instead of 6)",
        fast.report.total_cycles,
        fast.report.total_cycles as f64 / best_cycles as f64
    );

    // 4. The storage format is a mapping dimension too: `auto` lets the
    //    mapper pick a lossless fiber format from the stationary operand's
    //    shape (blocked for clustered structure, ELL for uniform rows).
    //    Lossless formats are result-transparent — same C, same report.
    use flexagon::core::FormatChoice;
    let fmt = accel.execute(
        ExecutionRequest::new(&a, &b)
            .strategy(MappingStrategy::Heuristic)
            .format_choice(FormatChoice::Auto),
    )?;
    assert_eq!(fmt.output.c, fast.c, "lossless formats never change C");
    println!(
        "Auto format picks:            {} (identical output, {} cycles)",
        fmt.format, fmt.output.report.total_cycles
    );
    Ok(())
}
