//! Inter-layer dataflow chaining (paper §3.3, Fig. 8): execute a three-layer
//! network where each layer uses a different dataflow, with every layer
//! consuming the previous layer's output **in the format it was produced**
//! — no explicit CSR/CSC conversion anywhere.
//!
//! Run with `cargo run --release --example format_transitions`.

use flexagon::core::{transitions, Accelerator, Dataflow, ExecutionRequest, Flexagon};
use flexagon::sparse::{gen, reference, DenseMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accel = Flexagon::with_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(8);

    // The activations entering layer 1, and each layer's weights. Weights
    // are prepared offline in whichever format the planned dataflow needs
    // ("the weights are assumed to be stored offline in both formats").
    let x0 = gen::random(96, 128, 0.4, MajorOrder::Row, &mut rng);
    let w1 = gen::random(128, 160, 0.25, MajorOrder::Row, &mut rng);
    let w2 = gen::random(160, 112, 0.25, MajorOrder::Row, &mut rng);
    let w3 = gen::random(112, 80, 0.25, MajorOrder::Row, &mut rng);

    // Fig. 8's plan: IP(N) -> OP(M) -> Gust(M). In our convention each
    // layer computes activations x weights, so the chained operand is A.
    let plan = [
        Dataflow::InnerProductN,
        Dataflow::OuterProductM,
        Dataflow::GustavsonM,
    ];
    for pair in plan.windows(2) {
        assert!(
            transitions::is_free(pair[0], pair[1]),
            "plan must be conversion-free"
        );
    }
    println!(
        "Plan: {} -> {} -> {} (all transitions free)\n",
        plan[0], plan[1], plan[2]
    );

    // Layer 1: IP(N) wants A in CSR, B in CSC; outputs CSC.
    let w1_csc = w1.converted(MajorOrder::Col);
    let l1 = accel
        .execute(ExecutionRequest::new(&x0, &w1_csc).dataflow(plan[0]))?
        .output;
    println!(
        "layer 1 ({}): output {} [{}x{}], {} conversions during run",
        plan[0],
        l1.c.order().format_name(),
        l1.c.rows(),
        l1.c.cols(),
        l1.report.explicit_conversions
    );
    assert_eq!(l1.report.explicit_conversions, 0);

    // Layer 2 consumes layer 1's CSC output as its A operand: OP(M) wants
    // exactly CSC, so no conversion happens.
    let l2 = accel
        .execute(ExecutionRequest::new(&l1.c, &w2).dataflow(plan[1]))?
        .output;
    println!(
        "layer 2 ({}): output {} [{}x{}], {} conversions during run",
        plan[1],
        l2.c.order().format_name(),
        l2.c.rows(),
        l2.c.cols(),
        l2.report.explicit_conversions
    );
    assert_eq!(l2.report.explicit_conversions, 0);

    // Layer 3 consumes layer 2's CSR output: Gust(M) wants CSR. Free again.
    let l3 = accel
        .execute(ExecutionRequest::new(&l2.c, &w3).dataflow(plan[2]))?
        .output;
    println!(
        "layer 3 ({}): output {} [{}x{}], {} conversions during run",
        plan[2],
        l3.c.order().format_name(),
        l3.c.rows(),
        l3.c.cols(),
        l3.report.explicit_conversions
    );
    assert_eq!(l3.report.explicit_conversions, 0);

    // Verify the whole chain functionally.
    let want = {
        let c1 = reference::spgemm(&x0, &w1)?;
        let c2 = reference::spgemm(&c1, &w2)?;
        reference::spgemm(&c2, &w3)?
    };
    assert!(
        DenseMatrix::from_compressed(&l3.c).approx_eq(&DenseMatrix::from_compressed(&want), 1e-1),
        "chained execution must equal the reference product chain"
    );
    println!("\nChain verified: 3 layers, 3 different dataflows, 0 format conversions.");

    // Contrast: a plan that ignores Table 4 pays explicit conversions.
    let bad = accel
        .execute(ExecutionRequest::new(&l1.c, &w2).dataflow(Dataflow::GustavsonM))?
        .output; // wants CSR, gets CSC
    println!(
        "Counter-example: feeding a CSC output into Gustavson's(M) costs {} \
         explicit conversion(s).",
        bad.report.explicit_conversions
    );
    assert_eq!(bad.report.explicit_conversions, 1);
    Ok(())
}
