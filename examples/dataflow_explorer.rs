//! Dataflow explorer: sweep matrix shape and sparsity on a custom SpMSpM
//! problem and watch the best dataflow change — the paper's core
//! observation ("one dataflow does not fit all").
//!
//! Run with `cargo run --release --example dataflow_explorer`.

use flexagon::core::{Accelerator, Dataflow, ExecutionRequest, Flexagon};
use flexagon::sparse::{gen, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accel = Flexagon::with_defaults();

    println!("Sweep 1: growing B (K x N) pushes the winner from IP toward OP");
    println!(
        "{:<24} {:>14} {:>14} {:>14}  winner",
        "problem", "IP cycles", "OP cycles", "Gust cycles"
    );
    for (k, n) in [(32u32, 256u32), (128, 1024), (512, 2048), (1024, 4096)] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = gen::random(64, k, 0.10, MajorOrder::Row, &mut rng);
        let b = gen::random(k, n, 0.40, MajorOrder::Row, &mut rng);
        report_row(&accel, format!("64x{k} * {k}x{n}"), &a, &b)?;
    }

    println!("\nSweep 2: denser A rows favour Gustavson's over IP re-streaming");
    println!(
        "{:<24} {:>14} {:>14} {:>14}  winner",
        "problem", "IP cycles", "OP cycles", "Gust cycles"
    );
    for da in [0.02, 0.10, 0.30, 0.60] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = gen::random(128, 256, da, MajorOrder::Row, &mut rng);
        let b = gen::random(256, 512, 0.30, MajorOrder::Row, &mut rng);
        report_row(&accel, format!("A density {da:.2}"), &a, &b)?;
    }

    println!("\nSweep 3: structured sparsity (band vs blocks)");
    println!(
        "{:<24} {:>14} {:>14} {:>14}  winner",
        "problem", "IP cycles", "OP cycles", "Gust cycles"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let band = gen::banded(256, 4, 0.9, MajorOrder::Row, &mut rng);
    let blocks = gen::block_sparse(256, 256, 16, 0.2, MajorOrder::Row, &mut rng);
    let dense_b = gen::random(256, 256, 0.5, MajorOrder::Row, &mut rng);
    report_row(&accel, "banded A".into(), &band, &dense_b)?;
    report_row(&accel, "block-sparse A".into(), &blocks, &dense_b)?;
    Ok(())
}

fn report_row(
    accel: &Flexagon,
    label: String,
    a: &flexagon::sparse::CompressedMatrix,
    b: &flexagon::sparse::CompressedMatrix,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut cycles = Vec::new();
    for df in Dataflow::M_STATIONARY {
        let ex = accel.execute(ExecutionRequest::new(a, b).dataflow(df))?;
        cycles.push(ex.output.report.total_cycles);
    }
    let winner = match (0..3).min_by_key(|&i| cycles[i]).expect("three dataflows") {
        0 => "Inner Product",
        1 => "Outer Product",
        _ => "Gustavson's",
    };
    println!(
        "{:<24} {:>14} {:>14} {:>14}  {}",
        label, cycles[0], cycles[1], cycles[2], winner
    );
    Ok(())
}
