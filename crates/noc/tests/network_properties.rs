//! Property-based tests for the on-chip networks.

use flexagon_noc::{
    DistributionNetwork, DnConfig, FanNetwork, MergerReductionNetwork, MergerTree, MrnConfig,
};
use flexagon_sim::Bandwidth;
use flexagon_sparse::{merge, Element, Fiber};
use proptest::prelude::*;

fn fibers_strategy() -> impl Strategy<Value = Vec<Fiber>> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..50, 0..20), 1..16).prop_map(
        |sets| {
            sets.into_iter()
                .map(|coords| {
                    Fiber::from_sorted(coords.into_iter().map(|c| Element::new(c, 1.25)).collect())
                })
                .collect()
        },
    )
}

proptest! {
    /// The MRN's merge equals the software k-way merge for any fiber set
    /// within radix.
    #[test]
    fn mrn_merge_is_kway_merge(fibers in fibers_strategy()) {
        let mut mrn = MergerReductionNetwork::with_defaults();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let hw = mrn.merge_fibers(&views);
        let (sw, sw_stats) = merge::merge_accumulate(&views);
        prop_assert_eq!(hw.fiber, sw);
        prop_assert_eq!(hw.additions, sw_stats.additions);
    }

    /// Merge cycles are monotone in input volume and zero only for empty
    /// inputs.
    #[test]
    fn merge_cycles_monotone(fibers in fibers_strategy()) {
        let mut mrn = MergerReductionNetwork::with_defaults();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let volume: usize = views.iter().map(|v| v.len()).sum();
        let out = mrn.merge_fibers(&views);
        if volume == 0 {
            prop_assert_eq!(out.cycles, 0);
        } else {
            // depth + ceil(volume / bandwidth)
            let want = 6 + (volume as u64).div_ceil(16);
            prop_assert_eq!(out.cycles, want);
        }
    }

    /// The MRN and the baseline merger produce identical merges — the MRN
    /// unifies, it does not change semantics.
    #[test]
    fn mrn_and_merger_agree(fibers in fibers_strategy()) {
        let mut mrn = MergerReductionNetwork::with_defaults();
        let mut merger = MergerTree::with_defaults();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let a = mrn.merge_fibers(&views);
        let b = merger.merge_fibers(&views);
        prop_assert_eq!(a.fiber, b.fiber);
        prop_assert_eq!(a.cycles, b.cycles);
    }

    /// FAN and MRN charge identical reduction cycles.
    #[test]
    fn fan_and_mrn_reduce_identically(products in 0u64..10_000) {
        let mut fan = FanNetwork::with_defaults();
        let mut mrn = MergerReductionNetwork::with_defaults();
        prop_assert_eq!(fan.reduce(products), mrn.reduce(products));
    }

    /// DN injection cycles depend only on injected volume, never fan-out.
    #[test]
    fn dn_multicast_is_free_fanout(elems in 1u64..1000, dests in 1u32..64) {
        let mut dn1 = DistributionNetwork::with_defaults();
        let mut dn2 = DistributionNetwork::with_defaults();
        let unicast = dn1.send(elems, 1);
        let multicast = dn2.send(elems, dests);
        prop_assert_eq!(unicast, multicast);
        prop_assert_eq!(dn2.delivered_elements(), elems * dests as u64);
    }

    /// Benes geometry: switch count is width * (2 log2(width) + 1) for any
    /// power-of-two width.
    #[test]
    fn benes_switch_count(log_width in 1u32..10) {
        let width = 1u32 << log_width;
        let cfg = DnConfig { width, bandwidth: Bandwidth::per_cycle(16) };
        prop_assert_eq!(cfg.levels(), 2 * log_width + 1);
        prop_assert_eq!(cfg.switches(), width * (2 * log_width + 1));
    }

    /// Tree geometry: nodes = leaves - 1 for any power-of-two leaf count.
    #[test]
    fn tree_node_count(log_leaves in 1u32..10) {
        let leaves = 1u32 << log_leaves;
        let cfg = MrnConfig { leaves, bandwidth: Bandwidth::per_cycle(16) };
        prop_assert_eq!(cfg.nodes(), leaves - 1);
        prop_assert_eq!(cfg.depth(), log_leaves);
    }
}
