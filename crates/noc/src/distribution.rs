//! The distribution network (paper §3.1).
//!
//! "This module is used to deliver data from the SRAM structures to the
//! multipliers. [...] the DN needs to support unicast, multicast and
//! broadcast data delivery. To achieve this [...] we utilize a Benes network
//! similar to previous designs like SIGMA. This network is an N-input,
//! N-output non-blocking topology with 2·log(N)+1 levels, each with N tiny
//! 2x2 switches."
//!
//! Because the Benes topology is non-blocking, the timing model is injection
//! bandwidth: the memory side feeds at most `bandwidth` elements per cycle
//! (Table 5: 16), and a multicast replicates inside the network for free.

use flexagon_sim::{Bandwidth, Cycle};
use serde::{Deserialize, Serialize};

/// How a delivered element fans out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// One source element to one multiplier.
    Unicast,
    /// One source element to a subset of multipliers.
    Multicast,
    /// One source element to every multiplier.
    Broadcast,
}

/// Distribution network configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnConfig {
    /// Number of output ports (= multipliers fed).
    pub width: u32,
    /// Injection bandwidth in elements per cycle (Table 5: 16).
    pub bandwidth: Bandwidth,
}

impl Default for DnConfig {
    fn default() -> Self {
        Self {
            width: 64,
            bandwidth: Bandwidth::per_cycle(16),
        }
    }
}

impl DnConfig {
    /// Benes levels: `2*log2(width) + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two (the Benes construction
    /// requires it).
    pub fn levels(&self) -> u32 {
        assert!(
            self.width.is_power_of_two(),
            "benes width must be a power of two"
        );
        2 * self.width.trailing_zeros() + 1
    }

    /// Total 2x2 switches: `levels * width`.
    pub fn switches(&self) -> u32 {
        self.levels() * self.width
    }
}

/// The Benes distribution network: traffic meter plus injection-bandwidth
/// timing.
#[derive(Debug, Clone)]
pub struct DistributionNetwork {
    cfg: DnConfig,
    injected_elements: u64,
    delivered_elements: u64,
    unicasts: u64,
    multicasts: u64,
    broadcasts: u64,
}

impl DistributionNetwork {
    /// Creates a network with the given configuration.
    pub fn new(cfg: DnConfig) -> Self {
        Self {
            cfg,
            injected_elements: 0,
            delivered_elements: 0,
            unicasts: 0,
            multicasts: 0,
            broadcasts: 0,
        }
    }

    /// Creates a 64-wide network with Table 5's 16 elements/cycle.
    pub fn with_defaults() -> Self {
        Self::new(DnConfig::default())
    }

    /// The network configuration.
    pub fn config(&self) -> DnConfig {
        self.cfg
    }

    /// Sends `elements` source elements, each reaching `destinations`
    /// multipliers, and returns the injection cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if `destinations` is zero or exceeds the network width.
    pub fn send(&mut self, elements: u64, destinations: u32) -> Cycle {
        assert!(
            destinations >= 1 && destinations <= self.cfg.width,
            "destinations must be within 1..=width"
        );
        if elements == 0 {
            return 0;
        }
        let kind = self.classify(destinations);
        match kind {
            CastKind::Unicast => self.unicasts += elements,
            CastKind::Multicast => self.multicasts += elements,
            CastKind::Broadcast => self.broadcasts += elements,
        }
        self.injected_elements += elements;
        self.delivered_elements += elements * destinations as u64;
        self.cfg.bandwidth.cycles(elements)
    }

    fn classify(&self, destinations: u32) -> CastKind {
        if destinations == 1 {
            CastKind::Unicast
        } else if destinations == self.cfg.width {
            CastKind::Broadcast
        } else {
            CastKind::Multicast
        }
    }

    /// Sends `injected` source elements with an irregular fan-out totalling
    /// `delivered` port-level deliveries, returning the injection cycles.
    ///
    /// Used by dataflows where each element reaches a data-dependent subset
    /// of multipliers (e.g. the intersection-filtered multicasts of Inner
    /// Product). Elements with average fan-out 1 are counted as unicasts,
    /// otherwise as multicasts.
    ///
    /// # Panics
    ///
    /// Panics if `delivered < injected`.
    pub fn send_irregular(&mut self, injected: u64, delivered: u64) -> Cycle {
        assert!(
            delivered >= injected,
            "each injected element reaches >= 1 port"
        );
        if injected == 0 {
            return 0;
        }
        if delivered == injected {
            self.unicasts += injected;
        } else {
            self.multicasts += injected;
        }
        self.injected_elements += injected;
        self.delivered_elements += delivered;
        self.cfg.bandwidth.cycles(injected)
    }

    /// Cycles to inject `elements` without recording them (planning).
    pub fn injection_cycles(&self, elements: u64) -> Cycle {
        self.cfg.bandwidth.cycles(elements)
    }

    /// Elements injected at the memory side.
    pub fn injected_elements(&self) -> u64 {
        self.injected_elements
    }

    /// Elements received across all multiplier ports (counts fan-out).
    pub fn delivered_elements(&self) -> u64 {
        self.delivered_elements
    }

    /// Unicast / multicast / broadcast source-element counts.
    pub fn cast_counts(&self) -> (u64, u64, u64) {
        (self.unicasts, self.multicasts, self.broadcasts)
    }
}

impl Default for DistributionNetwork {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_64_wide_16_per_cycle() {
        let dn = DistributionNetwork::with_defaults();
        assert_eq!(dn.config().width, 64);
        assert_eq!(dn.config().bandwidth.rate(), 16);
    }

    #[test]
    fn benes_levels_and_switches() {
        let cfg = DnConfig {
            width: 64,
            bandwidth: Bandwidth::per_cycle(16),
        };
        assert_eq!(cfg.levels(), 13); // 2*6+1
        assert_eq!(cfg.switches(), 13 * 64);
        let cfg8 = DnConfig {
            width: 8,
            bandwidth: Bandwidth::per_cycle(4),
        };
        assert_eq!(cfg8.levels(), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_width_rejected() {
        DnConfig {
            width: 48,
            bandwidth: Bandwidth::per_cycle(16),
        }
        .levels();
    }

    #[test]
    fn send_charges_injection_only() {
        let mut dn = DistributionNetwork::with_defaults();
        // 32 elements broadcast to all 64 ports: 2 cycles at 16/cycle.
        assert_eq!(dn.send(32, 64), 2);
        assert_eq!(dn.injected_elements(), 32);
        assert_eq!(dn.delivered_elements(), 32 * 64);
    }

    #[test]
    fn cast_classification() {
        let mut dn = DistributionNetwork::with_defaults();
        dn.send(1, 1);
        dn.send(2, 7);
        dn.send(3, 64);
        assert_eq!(dn.cast_counts(), (1, 2, 3));
    }

    #[test]
    fn send_zero_elements_free() {
        let mut dn = DistributionNetwork::with_defaults();
        assert_eq!(dn.send(0, 4), 0);
        assert_eq!(dn.injected_elements(), 0);
    }

    #[test]
    #[should_panic(expected = "within 1..=width")]
    fn too_many_destinations_rejected() {
        DistributionNetwork::with_defaults().send(1, 65);
    }

    #[test]
    fn injection_cycles_is_pure() {
        let dn = DistributionNetwork::with_defaults();
        assert_eq!(dn.injection_cycles(17), 2);
        assert_eq!(dn.injected_elements(), 0);
    }

    #[test]
    fn send_irregular_classifies_by_fanout() {
        let mut dn = DistributionNetwork::with_defaults();
        assert_eq!(dn.send_irregular(16, 16), 1); // pure unicast
        assert_eq!(dn.send_irregular(16, 40), 1); // average fan-out > 1
        assert_eq!(dn.cast_counts(), (16, 16, 0));
        assert_eq!(dn.delivered_elements(), 56);
    }

    #[test]
    fn send_irregular_zero_free() {
        let mut dn = DistributionNetwork::with_defaults();
        assert_eq!(dn.send_irregular(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = ">= 1 port")]
    fn send_irregular_rejects_undelivery() {
        DistributionNetwork::with_defaults().send_irregular(4, 3);
    }
}
