//! The multiplier network (paper §3.1, Fig. 4c).
//!
//! "This network is composed of independent multipliers that can operate in
//! two different modes: i) Multiplier mode: the unit performs a
//! multiplication and sends the result to the MRN [...] ii) Forwarder mode:
//! the multiplier forwards directly the input, which is typically a psum, to
//! the MRN."

use flexagon_sim::{cycles_for, Cycle};
use serde::{Deserialize, Serialize};

/// Operating mode of a multiplier unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiplierMode {
    /// Multiply the streaming input by the stationary register.
    Multiplier,
    /// Forward the input (a psum) straight to the MRN.
    Forwarder,
}

/// Multiplier network configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MnConfig {
    /// Number of multiplier units (Table 5: 64).
    pub multipliers: u32,
}

impl Default for MnConfig {
    fn default() -> Self {
        Self { multipliers: 64 }
    }
}

/// The linear multiplier array: operation counters plus throughput model.
#[derive(Debug, Clone)]
pub struct MultiplierNetwork {
    cfg: MnConfig,
    multiplications: u64,
    forwards: u64,
    stationary_loads: u64,
}

impl MultiplierNetwork {
    /// Creates a network with the given configuration.
    pub fn new(cfg: MnConfig) -> Self {
        Self {
            cfg,
            multiplications: 0,
            forwards: 0,
            stationary_loads: 0,
        }
    }

    /// Creates the paper's 64-multiplier network.
    pub fn with_defaults() -> Self {
        Self::new(MnConfig::default())
    }

    /// The network configuration.
    pub fn config(&self) -> MnConfig {
        self.cfg
    }

    /// Number of multiplier units.
    pub fn width(&self) -> u32 {
        self.cfg.multipliers
    }

    /// Records the stationary phase loading `count` operands into the
    /// stationary registers (at most one per multiplier per tile).
    pub fn load_stationary(&mut self, count: u64) {
        self.stationary_loads += count;
    }

    /// Records `count` multiplications and returns the cycles they occupy
    /// when all units work in parallel.
    pub fn multiply(&mut self, count: u64) -> Cycle {
        self.multiplications += count;
        cycles_for(count, self.cfg.multipliers as u64)
    }

    /// Records `count` forwarded psums (Forwarder mode) and returns the
    /// cycles they occupy.
    pub fn forward(&mut self, count: u64) -> Cycle {
        self.forwards += count;
        cycles_for(count, self.cfg.multipliers as u64)
    }

    /// Total multiplications performed.
    pub fn multiplications(&self) -> u64 {
        self.multiplications
    }

    /// Total psums forwarded.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Total stationary operands loaded.
    pub fn stationary_loads(&self) -> u64 {
        self.stationary_loads
    }
}

impl Default for MultiplierNetwork {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_64_units() {
        assert_eq!(MultiplierNetwork::with_defaults().width(), 64);
    }

    #[test]
    fn multiply_parallelizes_over_units() {
        let mut mn = MultiplierNetwork::with_defaults();
        assert_eq!(mn.multiply(64), 1);
        assert_eq!(mn.multiply(65), 2);
        assert_eq!(mn.multiplications(), 129);
    }

    #[test]
    fn forward_counts_separately() {
        let mut mn = MultiplierNetwork::with_defaults();
        mn.multiply(10);
        assert_eq!(mn.forward(128), 2);
        assert_eq!(mn.forwards(), 128);
        assert_eq!(mn.multiplications(), 10);
    }

    #[test]
    fn zero_work_is_free() {
        let mut mn = MultiplierNetwork::with_defaults();
        assert_eq!(mn.multiply(0), 0);
        assert_eq!(mn.forward(0), 0);
    }

    #[test]
    fn stationary_loads_accumulate() {
        let mut mn = MultiplierNetwork::with_defaults();
        mn.load_stationary(64);
        mn.load_stationary(32);
        assert_eq!(mn.stationary_loads(), 96);
    }
}
