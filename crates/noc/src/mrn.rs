//! The Merger-Reduction Network and the baselines' single-purpose trees.
//!
//! The MRN (paper §3.1, Fig. 4a/b) is an augmented binary tree whose nodes
//! hold an adder, a comparator and switching logic. Depending on the
//! configured [`NodeMode`], the tree:
//!
//! * **reduces** clusters of partial products into full sums (Inner
//!   Product) — nodes act as adders, like SIGMA's FAN;
//! * **merges** coordinate-sorted psum fibers (Outer Product / Gustavson's)
//!   — nodes compare coordinates, add on a match and forward the lower
//!   coordinate otherwise, like SpArch's and GAMMA's mergers.
//!
//! Timing uses the pipelined-tree model: a pass costs the tree depth (fill)
//! plus bandwidth-limited streaming of the input volume.

use flexagon_sim::{cycles_for, Bandwidth, Cycle};
use flexagon_sparse::{merge, Fiber, FiberView};
use serde::{Deserialize, Serialize};

/// Mode of an MRN node (Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeMode {
    /// Pure adder (Inner-Product reduction).
    Adder,
    /// Pure comparator (forward lower coordinate).
    Comparator,
    /// Compare coordinates, add on match (merge with accumulation).
    CompareAndAdd,
    /// Node not used by the current configuration.
    Unconfigured,
}

/// Geometry and bandwidth of a reduction/merger tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrnConfig {
    /// Leaf inputs — equals the number of multipliers (Table 5: 64).
    pub leaves: u32,
    /// Elements per cycle the tree can accept / emit (Table 5: 16).
    pub bandwidth: Bandwidth,
}

impl Default for MrnConfig {
    fn default() -> Self {
        Self {
            leaves: 64,
            bandwidth: Bandwidth::per_cycle(16),
        }
    }
}

impl MrnConfig {
    /// Tree depth in node levels: `log2(leaves)`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two.
    pub fn depth(&self) -> u32 {
        assert!(
            self.leaves.is_power_of_two(),
            "tree leaves must be a power of two"
        );
        self.leaves.trailing_zeros()
    }

    /// Internal nodes: `leaves - 1` (Table 5: 63 adders).
    pub fn nodes(&self) -> u32 {
        self.leaves - 1
    }
}

/// Result of one merge pass through a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// The merged, coordinate-sorted fiber.
    pub fiber: Fiber,
    /// Cycles the pass occupied the tree.
    pub cycles: Cycle,
    /// Coordinate comparisons performed.
    pub comparisons: u64,
    /// Value additions performed (coordinate collisions).
    pub additions: u64,
}

/// Shared implementation of a pipelined tree that can merge and/or reduce.
#[derive(Debug, Clone)]
struct Tree {
    cfg: MrnConfig,
    additions: u64,
    comparisons: u64,
    merged_in_elements: u64,
    reduced_products: u64,
}

impl Tree {
    fn new(cfg: MrnConfig) -> Self {
        Self {
            cfg,
            additions: 0,
            comparisons: 0,
            merged_in_elements: 0,
            reduced_products: 0,
        }
    }

    fn merge_fibers(&mut self, fibers: &[FiberView<'_>]) -> MergeOutcome {
        assert!(
            fibers.len() <= self.cfg.leaves as usize,
            "a single pass can merge at most {} fibers, got {}",
            self.cfg.leaves,
            fibers.len()
        );
        let input_volume = merge::input_volume(fibers) as u64;
        let (fiber, stats) = merge::merge_accumulate(fibers);
        let cycles = if input_volume == 0 {
            0
        } else {
            self.cfg.depth() as Cycle + self.cfg.bandwidth.cycles(input_volume)
        };
        self.additions += stats.additions;
        self.comparisons += stats.comparisons;
        self.merged_in_elements += input_volume;
        MergeOutcome {
            fiber,
            cycles,
            comparisons: stats.comparisons,
            additions: stats.additions,
        }
    }

    /// Charges one merge pass without running it: `input_elements` sorted
    /// elements enter the tree and `output_len` distinct coordinates leave.
    ///
    /// The counter arithmetic is exactly [`Tree::merge_fibers`]'s — one
    /// comparison per element popped, one addition per coordinate collision
    /// (`input - output`), depth + bandwidth-limited streaming for the
    /// cycles — so an engine that materializes the merged fiber elsewhere
    /// (the accumulator paths) keeps reports bit-identical.
    fn charge_merge(&mut self, input_elements: u64, output_len: u64) -> Cycle {
        debug_assert!(output_len <= input_elements, "merge cannot grow output");
        self.comparisons += input_elements;
        self.additions += input_elements - output_len;
        self.merged_in_elements += input_elements;
        if input_elements == 0 {
            0
        } else {
            self.cfg.depth() as Cycle + self.cfg.bandwidth.cycles(input_elements)
        }
    }

    fn reduce(&mut self, products: u64) -> Cycle {
        self.reduced_products += products;
        self.additions += products.saturating_sub(1);
        // The leaves absorb up to `leaves` products per cycle; fill latency
        // is charged once per tile by the engine.
        cycles_for(products, self.cfg.leaves as u64)
    }
}

/// The unified Merger-Reduction Network of Flexagon.
#[derive(Debug, Clone)]
pub struct MergerReductionNetwork {
    tree: Tree,
}

impl MergerReductionNetwork {
    /// Creates an MRN with the given geometry.
    pub fn new(cfg: MrnConfig) -> Self {
        Self {
            tree: Tree::new(cfg),
        }
    }

    /// Creates the paper's 64-leaf, 16 elements/cycle MRN.
    pub fn with_defaults() -> Self {
        Self::new(MrnConfig::default())
    }

    /// The tree geometry.
    pub fn config(&self) -> MrnConfig {
        self.tree.cfg
    }

    /// Largest number of fibers a single merge pass can take.
    pub fn max_radix(&self) -> usize {
        self.tree.cfg.leaves as usize
    }

    /// Pipeline fill latency (tree depth).
    pub fn fill_latency(&self) -> Cycle {
        self.tree.cfg.depth() as Cycle
    }

    /// Merges up to `leaves` coordinate-sorted fibers in one pass
    /// (comparator/compare-and-add mode).
    ///
    /// # Panics
    ///
    /// Panics if more than `leaves` fibers are supplied; the engine is
    /// responsible for splitting larger merges into multiple passes.
    pub fn merge_fibers(&mut self, fibers: &[FiberView<'_>]) -> MergeOutcome {
        self.tree.merge_fibers(fibers)
    }

    /// Charges the cycle and counter model of one merge pass whose merged
    /// fiber the caller produced elsewhere (a [`flexagon_sparse::RowAccum`]
    /// scatter): `input_elements` total elements entered, `output_len`
    /// distinct coordinates left. Identical arithmetic to
    /// [`MergerReductionNetwork::merge_fibers`].
    pub fn charge_merge(&mut self, input_elements: u64, output_len: u64) -> Cycle {
        self.tree.charge_merge(input_elements, output_len)
    }

    /// Streams `products` partial products through the adders (adder mode)
    /// and returns the cycles the tree's input side is occupied.
    pub fn reduce(&mut self, products: u64) -> Cycle {
        self.tree.reduce(products)
    }

    /// Total additions performed (both modes).
    pub fn additions(&self) -> u64 {
        self.tree.additions
    }

    /// Total coordinate comparisons performed.
    pub fn comparisons(&self) -> u64 {
        self.tree.comparisons
    }

    /// Total elements that entered merge passes.
    pub fn merged_input_elements(&self) -> u64 {
        self.tree.merged_in_elements
    }

    /// Total products that entered reductions.
    pub fn reduced_products(&self) -> u64 {
        self.tree.reduced_products
    }
}

impl Default for MergerReductionNetwork {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// SIGMA's FAN: a reduction-only tree (no comparators, no merging).
///
/// The type system enforces the paper's Table 1: an Inner-Product
/// accelerator built around FAN has no merge capability at all.
#[derive(Debug, Clone)]
pub struct FanNetwork {
    tree: Tree,
}

impl FanNetwork {
    /// Creates a FAN with the given geometry.
    pub fn new(cfg: MrnConfig) -> Self {
        Self {
            tree: Tree::new(cfg),
        }
    }

    /// Creates the 64-leaf FAN used by the SIGMA-like baseline.
    pub fn with_defaults() -> Self {
        Self::new(MrnConfig::default())
    }

    /// The tree geometry.
    pub fn config(&self) -> MrnConfig {
        self.tree.cfg
    }

    /// Pipeline fill latency (tree depth).
    pub fn fill_latency(&self) -> Cycle {
        self.tree.cfg.depth() as Cycle
    }

    /// Streams `products` partial products through the adder tree.
    pub fn reduce(&mut self, products: u64) -> Cycle {
        self.tree.reduce(products)
    }

    /// Total additions performed.
    pub fn additions(&self) -> u64 {
        self.tree.additions
    }

    /// Total products reduced.
    pub fn reduced_products(&self) -> u64 {
        self.tree.reduced_products
    }
}

impl Default for FanNetwork {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// SpArch/GAMMA-style merger: a merge-only comparator tree.
///
/// Mirrors [`FanNetwork`]: an Outer-Product or Gustavson accelerator built
/// around a merger cannot reduce dot products.
#[derive(Debug, Clone)]
pub struct MergerTree {
    tree: Tree,
}

impl MergerTree {
    /// Creates a merger with the given geometry.
    pub fn new(cfg: MrnConfig) -> Self {
        Self {
            tree: Tree::new(cfg),
        }
    }

    /// Creates the 64-leaf merger used by the SpArch-like and GAMMA-like
    /// baselines.
    pub fn with_defaults() -> Self {
        Self::new(MrnConfig::default())
    }

    /// The tree geometry.
    pub fn config(&self) -> MrnConfig {
        self.tree.cfg
    }

    /// Largest number of fibers a single merge pass can take.
    pub fn max_radix(&self) -> usize {
        self.tree.cfg.leaves as usize
    }

    /// Pipeline fill latency (tree depth).
    pub fn fill_latency(&self) -> Cycle {
        self.tree.cfg.depth() as Cycle
    }

    /// Merges up to `leaves` coordinate-sorted fibers in one pass.
    ///
    /// # Panics
    ///
    /// Panics if more than `leaves` fibers are supplied.
    pub fn merge_fibers(&mut self, fibers: &[FiberView<'_>]) -> MergeOutcome {
        self.tree.merge_fibers(fibers)
    }

    /// Total coordinate comparisons performed.
    pub fn comparisons(&self) -> u64 {
        self.tree.comparisons
    }

    /// Total additions performed (coordinate collisions).
    pub fn additions(&self) -> u64 {
        self.tree.additions
    }

    /// Total elements that entered merge passes.
    pub fn merged_input_elements(&self) -> u64 {
        self.tree.merged_in_elements
    }
}

impl Default for MergerTree {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::Element;

    fn fiber(pairs: &[(u32, f32)]) -> Fiber {
        Fiber::from_sorted(pairs.iter().map(|&(c, v)| Element::new(c, v)).collect())
    }

    #[test]
    fn geometry_matches_table5() {
        let cfg = MrnConfig::default();
        assert_eq!(cfg.leaves, 64);
        assert_eq!(cfg.nodes(), 63);
        assert_eq!(cfg.depth(), 6);
        assert_eq!(cfg.bandwidth.rate(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_leaves_rejected() {
        MrnConfig {
            leaves: 48,
            bandwidth: Bandwidth::per_cycle(16),
        }
        .depth();
    }

    #[test]
    fn merge_functional_result_is_kway_merge() {
        let mut mrn = MergerReductionNetwork::with_defaults();
        let a = fiber(&[(0, 1.0), (3, 1.0)]);
        let b = fiber(&[(3, 2.0), (7, 1.0)]);
        let out = mrn.merge_fibers(&[a.as_view(), b.as_view()]);
        assert_eq!(out.fiber.get(3), Some(3.0));
        assert_eq!(out.fiber.len(), 3);
        assert_eq!(out.additions, 1);
    }

    #[test]
    fn merge_cycles_are_depth_plus_stream() {
        let mut mrn = MergerReductionNetwork::with_defaults();
        // 32 input elements at 16/cycle + 6 depth = 8 cycles.
        let a = fiber(&(0..16).map(|i| (i, 1.0)).collect::<Vec<_>>());
        let b = fiber(&(16..32).map(|i| (i, 1.0)).collect::<Vec<_>>());
        let out = mrn.merge_fibers(&[a.as_view(), b.as_view()]);
        assert_eq!(out.cycles, 6 + 2);
    }

    #[test]
    fn charge_merge_matches_real_merge() {
        let a = fiber(&[(0, 1.0), (3, 1.0), (9, 1.0)]);
        let b = fiber(&[(3, 2.0), (7, 1.0)]);
        let mut real = MergerReductionNetwork::with_defaults();
        let out = real.merge_fibers(&[a.as_view(), b.as_view()]);
        let mut charged = MergerReductionNetwork::with_defaults();
        let cycles = charged.charge_merge(5, out.fiber.len() as u64);
        assert_eq!(cycles, out.cycles);
        assert_eq!(charged.additions(), real.additions());
        assert_eq!(charged.comparisons(), real.comparisons());
        assert_eq!(
            charged.merged_input_elements(),
            real.merged_input_elements()
        );
        assert_eq!(charged.charge_merge(0, 0), 0, "empty pass is free");
    }

    #[test]
    fn merge_empty_is_free() {
        let mut mrn = MergerReductionNetwork::with_defaults();
        let out = mrn.merge_fibers(&[]);
        assert!(out.fiber.is_empty());
        assert_eq!(out.cycles, 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 fibers")]
    fn merge_radix_enforced() {
        let mut mrn = MergerReductionNetwork::with_defaults();
        let f = fiber(&[(0, 1.0)]);
        let views: Vec<_> = std::iter::repeat_n(f.as_view(), 65).collect();
        mrn.merge_fibers(&views);
    }

    #[test]
    fn reduce_throughput_is_leaf_bound() {
        let mut mrn = MergerReductionNetwork::with_defaults();
        assert_eq!(mrn.reduce(64), 1);
        assert_eq!(mrn.reduce(65), 2);
        assert_eq!(mrn.reduced_products(), 129);
    }

    #[test]
    fn counters_accumulate_across_modes() {
        let mut mrn = MergerReductionNetwork::with_defaults();
        mrn.reduce(10);
        let a = fiber(&[(0, 1.0)]);
        let b = fiber(&[(0, 1.0)]);
        mrn.merge_fibers(&[a.as_view(), b.as_view()]);
        assert_eq!(mrn.additions(), 9 + 1);
        assert!(mrn.comparisons() >= 1);
        assert_eq!(mrn.merged_input_elements(), 2);
    }

    #[test]
    fn fan_reduces_like_mrn() {
        let mut fan = FanNetwork::with_defaults();
        assert_eq!(fan.reduce(128), 2);
        assert_eq!(fan.reduced_products(), 128);
        assert_eq!(fan.additions(), 127);
        assert_eq!(fan.fill_latency(), 6);
    }

    #[test]
    fn merger_tree_merges_like_mrn() {
        let mut m = MergerTree::with_defaults();
        let a = fiber(&[(1, 1.0), (2, 1.0)]);
        let b = fiber(&[(2, 1.0)]);
        let out = m.merge_fibers(&[a.as_view(), b.as_view()]);
        assert_eq!(out.fiber.get(2), Some(2.0));
        assert_eq!(m.merged_input_elements(), 3);
        assert_eq!(m.max_radix(), 64);
    }

    #[test]
    fn smaller_trees_have_shorter_fill() {
        let mrn = MergerReductionNetwork::new(MrnConfig {
            leaves: 8,
            bandwidth: Bandwidth::per_cycle(4),
        });
        assert_eq!(mrn.fill_latency(), 3);
        assert_eq!(mrn.max_radix(), 8);
    }
}
