//! Flexagon's three-tier reconfigurable NoC (paper §3.1, Fig. 4).
//!
//! * [`DistributionNetwork`] — the Benes-topology network delivering
//!   elements from the L1 structures to the multipliers (unicast, multicast
//!   and broadcast).
//! * [`MultiplierNetwork`] — the linear array of multipliers, each operating
//!   in *Multiplier* or *Forwarder* mode (Fig. 4c).
//! * [`MergerReductionNetwork`] — the paper's key novelty: one augmented
//!   tree whose nodes act as adders, comparators, or both, unifying the
//!   reduction (Inner Product) and merging (Outer Product / Gustavson's)
//!   operations on the same substrate.
//! * [`FanNetwork`] and [`MergerTree`] — the single-purpose reduction and
//!   merger networks of the SIGMA-like, SpArch-like and GAMMA-like
//!   baselines, exposing only the operation their dataflow needs.
//!
//! All networks are functionally exact (they move real elements) and charge
//! cycles with the pipelined-tree model: fill latency = tree depth, then
//! bandwidth-limited streaming.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod distribution;
mod mrn;
mod multiplier;

pub use distribution::{CastKind, DistributionNetwork, DnConfig};
pub use mrn::{FanNetwork, MergeOutcome, MergerReductionNetwork, MergerTree, MrnConfig, NodeMode};
pub use multiplier::{MnConfig, MultiplierMode, MultiplierNetwork};
