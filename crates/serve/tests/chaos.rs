//! Chaos: the daemon survives injected worker panics, corrupted frames,
//! and artificial latency while serving concurrent clients.
//!
//! The contract under fault injection:
//!
//! * every request is *answered* on its own connection — a fault poisons at
//!   most the request it hits, never the connection or the daemon;
//! * an injected panic surfaces as exactly one typed `engine` error;
//! * a corrupted frame surfaces as exactly one typed `bad_request` error;
//! * every healthy reply is byte-identical (digest and dataflow) to a
//!   direct `engine::execute` of the same operands;
//! * the stats endpoint accounts for every fault;
//! * a wedged worker (a `stuck` job that never finishes on its own) is
//!   reclaimed by its job's end-to-end deadline: the victim gets a typed
//!   `timeout` within twice the deadline and other tenants' requests
//!   queued behind the wedge still succeed;
//! * the drain completes cleanly afterwards.

use flexagon_core::{Accelerator, Flexagon, MappingStrategy};
use flexagon_serve::fault::{FaultPlan, FaultSpec};
use flexagon_serve::protocol::{
    digest_hex, matrix_digest, ErrorCode, Request, Response, SpGemmRequest,
};
use flexagon_serve::{Client, ServeConfig, Server};
use flexagon_sparse::{CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use std::sync::Arc;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 60;
// 240 requests against every-50/47/53 spacing: at least four injections of
// each fault kind, and no two kinds pinned to the same job index.
const FAULT_SPEC: &str = "panic=50,slow=47:5,corrupt=53";

fn random_matrix(seed: u64, rows: u32, cols: u32, density: f64) -> CompressedMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    flexagon_sparse::gen::random(rows, cols, density, MajorOrder::Row, &mut rng)
}

#[test]
fn daemon_survives_injected_panics_corruption_and_latency() {
    let faults = Arc::new(FaultPlan::new(
        FaultSpec::parse(FAULT_SPEC).expect("fault spec parses"),
    ));
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        faults: Arc::clone(&faults),
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_owned();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || -> (usize, usize, usize) {
                let a = random_matrix(1000 + i as u64, 32, 40, 0.3);
                let b = random_matrix(2000 + i as u64, 40, 36, 0.3);
                let strategy = MappingStrategy::Heuristic;
                let ex = Flexagon::with_defaults()
                    .execute(flexagon_core::ExecutionRequest::new(&a, &b).strategy(strategy))
                    .expect("direct run");
                let (df, out) = (ex.dataflow, ex.output);
                let expected_digest = digest_hex(matrix_digest(&out.c));
                let mut client = Client::connect(&addr).expect("connect");
                let (mut ok, mut panicked, mut corrupted) = (0usize, 0usize, 0usize);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let req = Request::spgemm(SpGemmRequest {
                        tenant: format!("chaos-{i}"),
                        strategy,
                        a: Some(a.clone()),
                        b: Some(b.clone()),
                        want_output: false,
                        ..SpGemmRequest::default()
                    });
                    // `expect` here is the survival assertion: a fault must
                    // never cost the connection, only (at most) this reply.
                    match client.request(&req).expect("connection survives") {
                        Response::Result(r) => {
                            assert_eq!(r.dataflow, df);
                            assert_eq!(
                                r.c_digest, expected_digest,
                                "served result differs from direct execute"
                            );
                            ok += 1;
                        }
                        Response::Error {
                            code: ErrorCode::Engine,
                            detail,
                        } => {
                            assert!(
                                detail.contains("panicked"),
                                "unexpected engine error: {detail}"
                            );
                            panicked += 1;
                        }
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            ..
                        } => corrupted += 1,
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
                (ok, panicked, corrupted)
            })
        })
        .collect();
    let (mut ok, mut panicked, mut corrupted) = (0, 0, 0);
    for h in handles {
        let (o, p, c) = h.join().expect("no client connection crashed");
        ok += o;
        panicked += p;
        corrupted += c;
    }
    assert_eq!(
        ok + panicked + corrupted,
        CLIENTS * REQUESTS_PER_CLIENT,
        "every request was answered"
    );
    let injected = faults.injected();
    assert!(
        injected.panics >= 1 && injected.slow_jobs >= 1 && injected.corrupted_frames >= 1,
        "all three fault kinds must fire: {injected:?}"
    );
    assert_eq!(
        panicked as u64, injected.panics,
        "each injected panic surfaces as exactly one engine error"
    );
    assert_eq!(
        corrupted as u64, injected.corrupted_frames,
        "each corrupted frame surfaces as exactly one bad_request"
    );
    // Slowed jobs are delayed, not failed: everything else completed.
    assert_eq!(ok, CLIENTS * REQUESTS_PER_CLIENT - panicked - corrupted);

    // The stats endpoint accounts for every fault.
    let mut client = Client::connect(&addr).expect("connect for stats");
    let resp = client.request(&Request::Stats).expect("stats");
    let Response::Stats(v) = resp else {
        panic!("expected stats, got {resp:?}");
    };
    let m = v.as_map().expect("stats is a map");
    assert_eq!(
        serde::map_get(m, "worker_panics").unwrap().as_u64(),
        Some(injected.panics)
    );
    assert_eq!(
        serde::map_get(m, "bad_frames").unwrap().as_u64(),
        Some(injected.corrupted_frames)
    );
    drop(client);

    // Clean drain: blocks until in-flight work finishes, then the pool and
    // accept thread are gone.
    server.shutdown();
}

/// An armed `stuck` fault wedges the only worker mid-"execution"; the
/// job's end-to-end deadline reclaims it. The victim receives a typed
/// `timeout` within twice its deadline, the healthy tenant's requests
/// queued behind the wedge still succeed byte-identically, and both the
/// cancellation and the injection surface in stats.
#[test]
fn stuck_job_times_out_and_other_tenants_keep_succeeding() {
    const DEADLINE_MS: u64 = 200;
    let faults = Arc::new(FaultPlan::new(
        // Jobs are counted globally in submission order; with one worker
        // and the sequencing below, job #3 (the victim's) is the wedge.
        FaultSpec::parse("stuck=3").expect("fault spec parses"),
    ));
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        faults: Arc::clone(&faults),
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_owned();

    let a_op = random_matrix(11, 24, 28, 0.3);
    let b_op = random_matrix(12, 28, 20, 0.3);
    let strategy = MappingStrategy::Heuristic;
    let expected = {
        let ex = Flexagon::with_defaults()
            .execute(flexagon_core::ExecutionRequest::new(&a_op, &b_op).strategy(strategy))
            .expect("direct run");
        digest_hex(matrix_digest(&ex.output.c))
    };
    let request_for = |tenant: &str, timeout_ms: Option<u64>| {
        Request::spgemm(SpGemmRequest {
            tenant: tenant.to_owned(),
            strategy,
            a: Some(a_op.clone()),
            b: Some(b_op.clone()),
            want_output: false,
            timeout_ms,
            ..SpGemmRequest::default()
        })
    };

    // Jobs #1 and #2: the healthy tenant, synchronously, so the victim's
    // request is deterministically job #3.
    let mut healthy = Client::connect(&addr).expect("connect healthy");
    for _ in 0..2 {
        match healthy
            .request(&request_for("steady", None))
            .expect("healthy request")
        {
            Response::Result(r) => assert_eq!(r.c_digest, expected),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // Job #3: the victim, on its own connection and thread, with a short
    // end-to-end deadline. The injected wedge never finishes on its own —
    // only deadline cancellation can reclaim the worker.
    let victim = {
        let addr = addr.clone();
        let req = request_for("victim", Some(DEADLINE_MS));
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect victim");
            let t0 = std::time::Instant::now();
            let resp = client.request(&req).expect("victim connection survives");
            (resp, t0.elapsed())
        })
    };
    // Let the victim's job reach the queue first (submission order decides
    // which job the fault counter wedges).
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Jobs #4 and #5: queued behind the wedged worker; they must still
    // succeed once cancellation reclaims it.
    for _ in 0..2 {
        match healthy
            .request(&request_for("steady", None))
            .expect("healthy request survives the wedge")
        {
            Response::Result(r) => assert_eq!(r.c_digest, expected),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    let (resp, elapsed) = victim.join().expect("victim thread");
    match resp {
        Response::Error {
            code: ErrorCode::Timeout,
            detail,
        } => assert!(
            detail.contains("wedged"),
            "unexpected timeout detail: {detail}"
        ),
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    assert!(
        elapsed < std::time::Duration::from_millis(2 * DEADLINE_MS),
        "wedged worker reclaimed late: {elapsed:?} against a {DEADLINE_MS} ms deadline"
    );

    let injected = faults.injected();
    assert_eq!(injected.stuck_jobs, 1, "exactly the victim's job wedged");

    // Stats: the cancellation and the injection both surface.
    let resp = healthy.request(&Request::Stats).expect("stats");
    let Response::Stats(v) = resp else {
        panic!("expected stats, got {resp:?}");
    };
    let m = v.as_map().expect("stats is a map");
    assert_eq!(serde::map_get(m, "cancelled").unwrap().as_u64(), Some(1));
    let fm = serde::map_get(m, "faults")
        .unwrap()
        .as_map()
        .expect("faults map");
    assert_eq!(serde::map_get(fm, "stuck_jobs").unwrap().as_u64(), Some(1));
    drop(healthy);

    server.shutdown();
}
