//! Fuzz targets for the wire boundary: frame reader and request parser.
//!
//! The robustness invariant: **arbitrary bytes never panic the framing or
//! parsing layers** — every input produces a frame event or a typed
//! `(ErrorCode, detail)` rejection, and whatever parses is a well-formed
//! request. This is the path an adversarial (or merely broken) client
//! controls completely.
//!
//! Case count scales with the `FLEXAGON_FUZZ_CASES` environment variable
//! (default 256; CI's chaos-smoke job runs 10 000+).

use flexagon_serve::protocol::{
    parse_request, write_frame, write_message, FrameEvent, FrameReader, Request, SpGemmRequest,
};
use flexagon_sparse::MajorOrder;
use proptest::prelude::*;
use rand::SeedableRng;

fn cases() -> u32 {
    std::env::var("FLEXAGON_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Drains a byte stream through a [`FrameReader`], collecting every event
/// until the stream closes. The reader must never panic and never loop
/// forever (each iteration either consumes input or terminates).
fn drain(reader: &mut FrameReader, mut input: &[u8]) -> (Vec<Vec<u8>>, bool, bool) {
    let mut frames = Vec::new();
    let mut clean = false;
    let mut too_large = false;
    loop {
        match reader
            .read(&mut input)
            .expect("in-memory reads cannot fail")
        {
            FrameEvent::Frame(p) => frames.push(p),
            FrameEvent::Closed { clean: c } => {
                clean = c;
                break;
            }
            FrameEvent::TooLarge(_) => {
                too_large = true;
                break;
            }
            FrameEvent::Timeout => unreachable!("slices do not time out"),
        }
    }
    (frames, clean, too_large)
}

fn mutate(bytes: &mut [u8], muts: &[(usize, u8)]) {
    if bytes.is_empty() {
        return;
    }
    for &(pos, val) in muts {
        bytes[pos % bytes.len()] = val;
    }
}

/// A small valid SpGEMM request, serialized to one wire frame.
fn valid_request_frame(seed: u64) -> Vec<u8> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let a = flexagon_sparse::gen::random(6, 7, 0.4, MajorOrder::Row, &mut rng);
    let b = flexagon_sparse::gen::random(7, 5, 0.4, MajorOrder::Row, &mut rng);
    let req = Request::spgemm(SpGemmRequest {
        tenant: "fuzz".to_owned(),
        a: Some(a),
        b: Some(b),
        ..SpGemmRequest::default()
    });
    let mut bytes = Vec::new();
    write_message(&mut bytes, &req).expect("write to vec");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary byte soup through the frame reader: no panic, no hang,
    /// and every yielded frame's bytes came from the input.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
        ceiling in 1u64..256,
    ) {
        let mut reader = FrameReader::new(ceiling);
        let (frames, _clean, _too_large) = drain(&mut reader, &bytes);
        for f in &frames {
            prop_assert!(f.len() as u64 <= ceiling);
        }
        let framed: usize = frames.iter().map(|f| f.len() + 4).sum();
        prop_assert!(framed <= bytes.len());
    }

    /// A well-formed frame round-trips exactly and closes cleanly.
    #[test]
    fn frame_roundtrip_is_exact(payload in proptest::collection::vec(0u8..=255, 0..300)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write to vec");
        let mut reader = FrameReader::new(1024);
        let (frames, clean, too_large) = drain(&mut reader, &wire);
        prop_assert!(!too_large);
        prop_assert!(clean, "stream ends on a frame boundary");
        prop_assert_eq!(frames, vec![payload]);
    }

    /// Arbitrary payload bytes through the request parser: parse or typed
    /// error, never a panic.
    #[test]
    fn arbitrary_payloads_never_panic_the_parser(
        payload in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        match parse_request(&payload) {
            Ok(_) => {}
            Err((code, detail)) => {
                prop_assert!(!detail.is_empty());
                prop_assert!(!code.as_str().is_empty());
            }
        }
    }

    /// A valid request frame with mutated bytes: the reader and parser
    /// digest it without panicking, and anything that still parses is a
    /// request the scheduler could run.
    #[test]
    fn mutated_request_frames_never_panic(
        seed in 0u64..32,
        muts in proptest::collection::vec((0usize..1 << 20, 0u8..=255), 1..8),
    ) {
        let mut wire = valid_request_frame(seed);
        mutate(&mut wire, &muts);
        let mut reader = FrameReader::new(1 << 22);
        let mut input = &wire[..];
        loop {
            match reader.read(&mut input).expect("in-memory reads cannot fail") {
                FrameEvent::Frame(p) => {
                    // Ok or typed error — both fine; panic is the bug.
                    let _ = parse_request(&p);
                }
                FrameEvent::Closed { .. } | FrameEvent::TooLarge(_) => break,
                FrameEvent::Timeout => unreachable!("slices do not time out"),
            }
        }
    }
}
