//! Property tests for the wire protocol: message round-trips are
//! byte-stable, and no byte garbage — malformed JSON, truncated frames,
//! lying length prefixes — can panic the parsing path.

use flexagon_core::{Dataflow, FormatChoice, MappingStrategy};
use flexagon_serve::protocol::{
    digest_hex, matrix_digest, parse_request, write_frame, write_message, ErrorCode, FrameEvent,
    FrameReader, ModelRequest, RawValue, Request, Response, SpGemmRequest, SpGemmResponse,
};
use flexagon_sparse::FiberFormat;
use flexagon_sparse::MajorOrder;
use proptest::prelude::*;
use rand::SeedableRng;
use serde::Serialize;

fn random_matrix(seed: u64, dim: u32, density: f64) -> flexagon_sparse::CompressedMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    flexagon_sparse::gen::random(dim, dim, density, MajorOrder::Row, &mut rng)
}

fn strategy_from(idx: usize) -> MappingStrategy {
    match idx % 8 {
        0 => MappingStrategy::Oracle,
        1 => MappingStrategy::Heuristic,
        n => MappingStrategy::Fixed(Dataflow::ALL[n - 2]),
    }
}

fn format_from(idx: usize) -> FormatChoice {
    match idx % 7 {
        0 => FormatChoice::Config,
        1 => FormatChoice::Auto,
        n => FormatChoice::Fixed(FiberFormat::ALL[n - 2]),
    }
}

/// Round-trips a message through JSON text twice and checks the two
/// renderings agree byte for byte (the serializer is deterministic and
/// the value model loses nothing, so one parse must be a fixed point).
fn assert_byte_stable<T: Serialize + serde::Deserialize>(msg: &T) {
    let first = serde_json::to_string(msg).expect("serialize");
    let parsed: T = serde_json::from_str(&first).expect("roundtrip parse");
    let second = serde_json::to_string(&parsed).expect("reserialize");
    assert_eq!(first, second);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SpGEMM request shape round-trips byte-stably: inline
    /// operands, cache ids, both, all strategies, optional timeout.
    #[test]
    fn spgemm_request_roundtrip(
        seed in 0u64..1_000_000,
        dim in 1u32..24,
        density in 0.05f64..0.9,
        strat in 0usize..8,
        flags in 0u32..32,
    ) {
        let with_inline = flags & 1 != 0;
        let with_ids = flags & 2 != 0 || !with_inline;
        let req = Request::spgemm(SpGemmRequest {
            tenant: format!("tenant-{}", seed % 5),
            strategy: strategy_from(strat),
            format: format_from(strat + seed as usize),
            a: with_inline.then(|| random_matrix(seed, dim, density)),
            b: with_inline.then(|| random_matrix(seed ^ 1, dim, density)),
            a_id: with_ids.then(|| format!("a-{seed}")),
            b_id: with_ids.then(|| format!("b-{seed}")),
            want_output: flags & 4 != 0,
            timeout_ms: (flags & 8 != 0).then_some(1000 + u64::from(flags)),
        });
        assert_byte_stable(&req);
    }

    /// Model requests and the frameless requests round-trip byte-stably.
    #[test]
    fn other_requests_roundtrip(seed in 0u64..1_000_000, strat in 0usize..8) {
        let model = Request::Model(ModelRequest {
            tenant: format!("t{}", seed % 3),
            model: ["A", "S-R", "MB"][(seed % 3) as usize].to_owned(),
            strategy: strategy_from(strat),
            format: format_from(strat),
            seed,
            timeout_ms: (seed % 2 == 0).then_some(seed % 10_000 + 1),
        });
        assert_byte_stable(&model);
        assert_byte_stable(&Request::Ping);
        assert_byte_stable(&Request::Stats);
        assert_byte_stable(&Request::Shutdown);
    }

    /// Result responses round-trip byte-stably, with and without the
    /// output matrix.
    #[test]
    fn result_response_roundtrip(
        seed in 0u64..1_000_000,
        dim in 1u32..24,
        with_c in 0u32..2,
        df in 0usize..6,
    ) {
        let c = random_matrix(seed, dim, 0.4);
        let resp = Response::Result(SpGemmResponse {
            dataflow: Dataflow::ALL[df],
            c_digest: digest_hex(matrix_digest(&c)),
            c: (with_c == 1).then_some(c),
            report: serde::Value::Map(vec![
                ("total_cycles".into(), serde::Value::UInt(seed)),
                ("speedup".into(), serde::Value::Float(1.5)),
            ]),
            queue_us: seed % 7_000,
            exec_us: seed % 11_000,
        });
        assert_byte_stable(&resp);
        assert_byte_stable(&Response::Pong);
        assert_byte_stable(&Response::Ok);
        // Cycle through the shedding/deadline codes so the overload
        // surface (`overloaded`, `timeout`, `queue_full`) round-trips
        // under fuzzed details too.
        let code = [ErrorCode::QueueFull, ErrorCode::Overloaded, ErrorCode::Timeout]
            [(seed % 3) as usize];
        assert_byte_stable(&Response::Error {
            code,
            detail: format!("queue at {seed}"),
        });
    }

    /// Arbitrary payload bytes never panic the request parser; non-JSON
    /// and non-request JSON both surface `bad_request`.
    #[test]
    fn garbage_payloads_are_rejected_not_fatal(bytes in collection::vec(0u8..=255, 0..200)) {
        if let Err((code, _)) = parse_request(&bytes) {
            assert_eq!(code, ErrorCode::BadRequest);
        }
        // An Ok is fine too (the fuzz may spell a valid request); the
        // property is only that malformed input maps to a clean error.
    }

    /// Frames survive arbitrary payloads and chunked arrival; truncation
    /// is always detected as an unclean close, never a hang or a panic.
    #[test]
    fn frame_truncation_is_detected(
        payload in collection::vec(0u8..=255, 0..300),
        cut in 0usize..304,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let cut = cut.min(wire.len());
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
        match reader.read(&mut cursor).unwrap() {
            FrameEvent::Frame(p) => {
                assert_eq!(cut, wire.len(), "full frame only at no truncation");
                assert_eq!(p, payload);
            }
            FrameEvent::Closed { clean } => {
                assert!(cut < wire.len());
                // A cut inside the 4-byte header or the payload is unclean;
                // only an empty stream is a clean close.
                assert_eq!(clean, cut == 0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    /// A lying length prefix above the ceiling is rejected before any
    /// allocation, whatever follows it.
    #[test]
    fn oversized_prefix_rejected(len in (1u64 << 20)..(u32::MAX as u64), junk in 0u8..255) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(len as u32).to_be_bytes());
        wire.extend_from_slice(&[junk; 8]);
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            reader.read(&mut cursor).unwrap(),
            FrameEvent::TooLarge(l) if l == len
        ));
    }
}

/// Every error-code wire token round-trips through `as_str` /
/// `from_str_token`, and an `error` response carrying it is byte-stable —
/// in particular the overload/deadline codes a retrying client branches on.
#[test]
fn every_error_code_token_roundtrips() {
    let all = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownMatrix,
        ErrorCode::InvalidOperand,
        ErrorCode::UnknownModel,
        ErrorCode::QueueFull,
        ErrorCode::Overloaded,
        ErrorCode::Timeout,
        ErrorCode::Draining,
        ErrorCode::Engine,
        ErrorCode::Internal,
    ];
    for code in all {
        assert_eq!(ErrorCode::from_str_token(code.as_str()), Some(code));
        assert_byte_stable(&Response::Error {
            code,
            detail: format!("detail for {code}"),
        });
    }
    assert_eq!(ErrorCode::Overloaded.as_str(), "overloaded");
    assert!(ErrorCode::from_str_token("frobnicated").is_none());
}

/// A stream carrying several frames back to back parses into exactly
/// those frames — the reader keeps residual bytes across reads.
#[test]
fn pipelined_frames_parse_in_order() {
    let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; i as usize * 7]).collect();
    let mut wire = Vec::new();
    for p in &payloads {
        write_frame(&mut wire, p).unwrap();
    }
    let mut reader = FrameReader::new(1 << 20);
    let mut cursor = std::io::Cursor::new(wire);
    for expected in &payloads {
        match reader.read(&mut cursor).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(&p, expected),
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(matches!(
        reader.read(&mut cursor).unwrap(),
        FrameEvent::Closed { clean: true }
    ));
}

/// `write_message` and the typed parse agree end to end, and the stats
/// payload renders through [`RawValue`].
#[test]
fn message_framing_roundtrip() {
    let mut wire = Vec::new();
    write_message(&mut wire, &Request::Ping).unwrap();
    let stats = serde::Value::Map(vec![("queue_depth".into(), serde::Value::UInt(3))]);
    write_message(&mut wire, &Response::Stats(stats.clone())).unwrap();
    let mut reader = FrameReader::new(1 << 20);
    let mut cursor = std::io::Cursor::new(wire);
    let FrameEvent::Frame(p1) = reader.read(&mut cursor).unwrap() else {
        panic!("expected request frame");
    };
    assert!(matches!(parse_request(&p1), Ok(Request::Ping)));
    let FrameEvent::Frame(p2) = reader.read(&mut cursor).unwrap() else {
        panic!("expected response frame");
    };
    let resp: Response = serde_json::from_str(std::str::from_utf8(&p2).unwrap()).unwrap();
    let Response::Stats(got) = resp else {
        panic!("expected stats response");
    };
    assert_eq!(
        serde_json::to_string(&RawValue(&got)).unwrap(),
        serde_json::to_string(&RawValue(&stats)).unwrap()
    );
}
