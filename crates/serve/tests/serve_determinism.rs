//! End-to-end determinism: results served by the daemon are byte-identical
//! to a direct `engine::execute` of the same (operands, config) — under
//! concurrent clients, through the operand cache, and on a sharded engine.

use flexagon_core::{
    Accelerator, AcceleratorConfig, Dataflow, EngineConfig, ExecutionRequest, Flexagon,
    MappingStrategy,
};
use flexagon_serve::protocol::{
    digest_hex, matrix_digest, RawValue, Request, Response, SpGemmRequest,
};
use flexagon_serve::{Client, ServeConfig, Server};
use flexagon_sparse::{CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use serde::Serialize;

fn random_matrix(seed: u64, rows: u32, cols: u32, density: f64) -> CompressedMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    flexagon_sparse::gen::random(rows, cols, density, MajorOrder::Row, &mut rng)
}

/// Canonical JSON for an in-memory report: serialize, parse, re-serialize —
/// the same Value→text path a served report travels, so byte comparison is
/// apples to apples.
fn report_json<T: Serialize>(report: &T) -> String {
    serde_json::to_string(report).expect("report renders")
}

fn served_report_json(report: &serde::Value) -> String {
    serde_json::to_string(&RawValue(report)).expect("value renders")
}

/// One request/assert cycle: the served result must equal `direct` in
/// output bytes, digest, selected dataflow, and report JSON.
fn assert_served_matches_direct(
    client: &mut Client,
    req: &Request,
    direct_df: Dataflow,
    direct_c: &CompressedMatrix,
    direct_report_json: &str,
) {
    let resp = client.request(req).expect("serve request");
    let Response::Result(r) = resp else {
        panic!("expected a result, got {resp:?}");
    };
    assert_eq!(r.dataflow, direct_df);
    assert_eq!(r.c_digest, digest_hex(matrix_digest(direct_c)));
    let served_c = r.c.as_ref().expect("want_output was set");
    assert_eq!(served_c, direct_c);
    assert_eq!(served_report_json(&r.report), direct_report_json);
}

#[test]
fn served_results_match_direct_execute_under_concurrent_clients() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_owned();
    let direct = Flexagon::with_defaults();
    // Three clients, each its own operands and strategy, hammering the
    // daemon concurrently: every response must equal that client's direct
    // run, whatever order the scheduler interleaves them in.
    let strategies = [
        MappingStrategy::Heuristic,
        MappingStrategy::Fixed(Dataflow::GustavsonM),
        MappingStrategy::Oracle,
    ];
    let handles: Vec<_> = strategies
        .into_iter()
        .enumerate()
        .map(|(i, strategy)| {
            let addr = addr.clone();
            let a = random_matrix(100 + i as u64, 48, 56, 0.3);
            let b = random_matrix(200 + i as u64, 56, 40, 0.35);
            let ex = Flexagon::with_defaults()
                .execute(ExecutionRequest::new(&a, &b).strategy(strategy))
                .expect("direct run");
            let (df, out) = (ex.dataflow, ex.output);
            let expected_report = report_json(&out.report);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let req = Request::spgemm(SpGemmRequest {
                    tenant: format!("client-{i}"),
                    strategy,
                    a: Some(a),
                    b: Some(b),
                    want_output: true,
                    ..SpGemmRequest::default()
                });
                for _ in 0..4 {
                    assert_served_matches_direct(&mut client, &req, df, &out.c, &expected_report);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(direct);
    server.shutdown();
}

#[test]
fn cached_operands_are_transparent_to_reports() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    })
    .expect("start server");
    let a = random_matrix(7, 40, 48, 0.3);
    let b = random_matrix(8, 48, 40, 0.35);
    // Gustavson-N wants column-major operands, so the engine performs (and
    // reports) explicit conversions — exactly what a result-altering cache
    // would optimize away. The served report must keep them.
    let strategy = MappingStrategy::Fixed(Dataflow::GustavsonN);
    let ex = Flexagon::with_defaults()
        .execute(ExecutionRequest::new(&a, &b).strategy(strategy))
        .expect("direct run");
    let (df, out) = (ex.dataflow, ex.output);
    let expected_report = report_json(&out.report);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // First request ships the bytes and registers the identities; the next
    // two hit the cache. All three must be byte-identical to direct.
    for round in 0..3 {
        let req = Request::spgemm(SpGemmRequest {
            tenant: "cache-test".to_owned(),
            strategy,
            a: (round == 0).then(|| a.clone()),
            b: (round == 0).then(|| b.clone()),
            a_id: Some("det-a".to_owned()),
            b_id: Some("det-b".to_owned()),
            want_output: true,
            ..SpGemmRequest::default()
        });
        assert_served_matches_direct(&mut client, &req, df, &out.c, &expected_report);
    }
    // The cache must show exactly the two id-only hits... plus the
    // fingerprint-matched re-offer; assert via the stats request.
    let stats = client.request(&Request::Stats).expect("stats");
    let Response::Stats(v) = stats else {
        panic!("expected stats")
    };
    let cache = serde::map_get(v.as_map().unwrap(), "cache").unwrap();
    let hits = serde::map_get(cache.as_map().unwrap(), "hits")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(hits, 4, "rounds 1 and 2 hit both identities");
    server.shutdown();
}

#[test]
fn sharded_server_is_byte_identical_to_sharded_direct() {
    let engine = EngineConfig::default().sharded(256, 4);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        // A budget of 4 with one job in flight leaves all 4 shard workers.
        worker_budget: 4,
        engine,
        ..ServeConfig::default()
    })
    .expect("start server");
    let a = random_matrix(31, 64, 64, 0.25);
    let b = random_matrix(32, 64, 64, 0.25);
    let direct = {
        let mut cfg = AcceleratorConfig::table5();
        cfg.engine = engine;
        Flexagon::new(cfg)
    };
    let strategy = MappingStrategy::Heuristic;
    let ex = direct
        .execute(ExecutionRequest::new(&a, &b).strategy(strategy))
        .expect("direct run");
    let (df, out) = (ex.dataflow, ex.output);
    let expected_report = report_json(&out.report);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let req = Request::spgemm(SpGemmRequest {
        tenant: "sharded".to_owned(),
        strategy,
        a: Some(a),
        b: Some(b),
        want_output: true,
        ..SpGemmRequest::default()
    });
    assert_served_matches_direct(&mut client, &req, df, &out.c, &expected_report);
    server.shutdown();
}

#[test]
fn pinned_lossless_format_is_result_transparent() {
    use flexagon_core::FormatChoice;
    use flexagon_sparse::FiberFormat;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    })
    .expect("start server");
    let a = random_matrix(51, 48, 48, 0.3);
    let b = random_matrix(52, 48, 48, 0.3);
    let strategy = MappingStrategy::Heuristic;
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for format in [FiberFormat::Bcsr4, FiberFormat::Ell] {
        let direct = Flexagon::with_defaults()
            .execute(
                ExecutionRequest::new(&a, &b)
                    .strategy(strategy)
                    .format(format),
            )
            .expect("direct run");
        let expected_report = report_json(&direct.output.report);
        let req = Request::spgemm(SpGemmRequest {
            tenant: "format-pin".to_owned(),
            strategy,
            format: FormatChoice::Fixed(format),
            a: Some(a.clone()),
            b: Some(b.clone()),
            // Pinned formats key the cache per token: the same identity
            // under bcsr4 and ell must resolve independently.
            a_id: Some("fmt-a".to_owned()),
            b_id: Some("fmt-b".to_owned()),
            want_output: true,
            ..SpGemmRequest::default()
        });
        assert_served_matches_direct(
            &mut client,
            &req,
            direct.dataflow,
            &direct.output.c,
            &expected_report,
        );
    }
    server.shutdown();
}
