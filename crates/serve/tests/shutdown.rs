//! Lifecycle coverage: client disconnects mid-request don't hurt the
//! daemon, and a drain finishes in-flight work while rejecting the rest.

use flexagon_core::MappingStrategy;
use flexagon_serve::protocol::{ErrorCode, Request, Response, SpGemmRequest};
use flexagon_serve::{Client, ServeConfig, Server};
use flexagon_sparse::MajorOrder;
use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};

fn random_matrix(seed: u64, dim: u32) -> flexagon_sparse::CompressedMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    flexagon_sparse::gen::random(dim, dim, 0.3, MajorOrder::Row, &mut rng)
}

fn spgemm_request(seed: u64, dim: u32, strategy: MappingStrategy) -> Request {
    Request::spgemm(SpGemmRequest {
        tenant: "shutdown-test".to_owned(),
        strategy,
        a: Some(random_matrix(seed, dim)),
        b: Some(random_matrix(seed ^ 0xFF, dim)),
        ..SpGemmRequest::default()
    })
}

fn queue_state(client: &mut Client) -> (u64, u64) {
    let Response::Stats(v) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected stats");
    };
    let m = v.as_map().unwrap();
    (
        serde::map_get(m, "queue_depth").unwrap().as_u64().unwrap(),
        serde::map_get(m, "in_flight").unwrap().as_u64().unwrap(),
    )
}

#[test]
fn disconnect_mid_request_leaves_the_daemon_serving() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_owned();
    // Fire a request and vanish before the answer: raw socket, no read.
    {
        let mut stream = flexagon_serve::net::Stream::connect(&addr).expect("connect");
        let req = spgemm_request(1, 48, MappingStrategy::Oracle);
        flexagon_serve::protocol::write_message(&mut stream, &req).expect("send");
        // Dropping the stream closes the connection with the job enqueued
        // or already running.
    }
    // A half-written frame followed by a hangup must not kill anything
    // either (truncated-frame path).
    {
        let mut stream = flexagon_serve::net::Stream::connect(&addr).expect("connect");
        stream.write_all(&[0, 0, 0, 200, 1, 2, 3]).expect("send");
    }
    // The daemon keeps serving: a fresh client completes a job.
    let mut client = Client::connect(&addr).expect("connect after disconnects");
    let resp = client
        .request(&spgemm_request(2, 32, MappingStrategy::Heuristic))
        .expect("request after disconnects");
    assert!(matches!(resp, Response::Result(_)), "got {resp:?}");
    server.shutdown();
}

#[test]
fn malformed_frames_get_errors_and_the_connection_survives() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // A frame of JSON garbage: clean boundary, bad payload → error reply,
    // connection stays usable for a real request afterwards.
    // (Drive the raw framing through the client's stream via the protocol
    // request path: send a junk "request" by writing a frame manually.)
    let mut raw = flexagon_serve::net::Stream::connect(server.local_addr()).expect("connect raw");
    flexagon_serve::protocol::write_frame(&mut raw, b"this is not json").expect("send junk");
    let mut reader = flexagon_serve::protocol::FrameReader::new(
        flexagon_serve::protocol::DEFAULT_MAX_FRAME_BYTES,
    );
    let event = loop {
        match reader.read(&mut raw).expect("read") {
            flexagon_serve::protocol::FrameEvent::Timeout => continue,
            other => break other,
        }
    };
    let flexagon_serve::protocol::FrameEvent::Frame(payload) = event else {
        panic!("expected an error frame, got {event:?}");
    };
    let resp: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "got {resp:?}"
    );
    // Same connection, now a valid frame: still served.
    flexagon_serve::protocol::write_message(&mut raw, &Request::Ping).expect("ping");
    let event = loop {
        match reader.read(&mut raw).expect("read") {
            flexagon_serve::protocol::FrameEvent::Timeout => continue,
            other => break other,
        }
    };
    let flexagon_serve::protocol::FrameEvent::Frame(payload) = event else {
        panic!("expected pong, got {event:?}");
    };
    let resp: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(resp, Response::Pong), "got {resp:?}");
    // The daemon-wide ping still works too.
    let resp = client.request(&Request::Ping).expect("ping");
    assert!(matches!(resp, Response::Pong));
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_and_rejects_the_rest() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_owned();
    // Client 1: a slow job — the oracle sweeps all six dataflows, and
    // 256x256 operands keep it in flight for upwards of a second even in
    // release builds, a wide window for the drain to land in.
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.request(&spgemm_request(3, 256, MappingStrategy::Oracle))
        })
    };
    // Wait until the slow job is actually executing.
    let mut observer = Client::connect(&addr).expect("connect observer");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, in_flight) = queue_state(&mut observer);
        if in_flight >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "slow job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Client 2: queued behind the slow job, then the drain rejects it.
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.request(&spgemm_request(4, 256, MappingStrategy::Oracle))
        })
    };
    // Make sure client 2 is queued (depth 1) before draining, so the test
    // pins both halves of the drain contract.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (depth, _) = queue_state(&mut observer);
        if depth >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "second job never queued");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Drain via the protocol, as a client would.
    let resp = observer.request(&Request::Shutdown).expect("shutdown");
    assert!(matches!(resp, Response::Ok));
    assert!(server.drain_requested());
    // The in-flight job finishes with a real result; the queued one is
    // rejected with `draining`.
    let slow_resp = slow.join().expect("slow thread").expect("slow request");
    assert!(
        matches!(slow_resp, Response::Result(_)),
        "got {slow_resp:?}"
    );
    let queued_resp = queued
        .join()
        .expect("queued thread")
        .expect("queued request");
    assert!(
        matches!(
            queued_resp,
            Response::Error {
                code: ErrorCode::Draining,
                ..
            }
        ),
        "got {queued_resp:?}"
    );
    // New jobs after the drain are likewise rejected.
    let resp = observer
        .request(&spgemm_request(5, 32, MappingStrategy::Heuristic))
        .expect("post-drain request");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Draining,
                ..
            }
        ),
        "got {resp:?}"
    );
    server.shutdown();
}
