//! SpGEMM-as-a-service: a request-serving daemon over the sharded engine.
//!
//! The simulator's other crates run one workload and exit; this crate
//! keeps the engine resident and serves concurrent SpGEMM and DNN-model
//! jobs over a length-prefixed JSON protocol ([`protocol`]) on a TCP or
//! Unix socket ([`net`]). The pieces:
//!
//! * [`server`] — accept loop, per-connection protocol handling, graceful
//!   drain (SIGTERM / `shutdown` request: in-flight jobs finish, the
//!   queue is rejected).
//! * [`scheduler`] — bounded queue + worker pool; per-job intra-layer
//!   shard workers are clamped under the bench runner's
//!   `intra_layer_worker_budget` so the two parallelism levels compose
//!   without oversubscription. `timeout_ms` is an end-to-end deadline:
//!   queued-and-late jobs are rejected, executing-and-late jobs are
//!   cooperatively cancelled through the engine's `CancelToken`, and an
//!   admission controller sheds deadline-infeasible jobs (`overloaded`)
//!   using the calibrated mapper cost model; sustained overload degrades
//!   worker budgets before shedding. Scheduling never changes a bit of
//!   any result: served output is byte-identical to a direct
//!   `engine::execute` of the same (operands, config).
//! * [`cache`] — cross-request operand cache (client-named identities,
//!   fingerprint-guarded, LRU byte budget) sharing one allocation and one
//!   memoized transpose plan across jobs.
//! * [`stats`] — per-tenant p50/p99 latency, throughput and outcome
//!   counters, served by the `stats` request.
//! * [`client`] — a small blocking client (also used by the load bins)
//!   with a client-side response deadline and jittered-backoff retries
//!   honoring the typed error codes.
//! * [`fault`] — deterministic fault injection (worker panics, slow jobs,
//!   corrupted frames, stuck jobs) for chaos testing; compiled in always,
//!   one relaxed atomic load per job/frame when no plan is armed.
//!
//! Robustness posture: workers run jobs under `catch_unwind`, so a
//! panicking job poisons only its own request ([`scheduler`]); every lock
//! recovers from poisoning (the internal `lock` module; non-test code
//! denies `clippy::unwrap_used`); untrusted operands are validated before
//! they reach the engine.
//!
//! Everything is std-only: no async runtime, threads and blocking sockets
//! throughout, per the workspace's vendored-shim constraint.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod client;
pub mod fault;
mod lock;
pub mod net;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod stats;

pub use client::{Client, RetryPolicy};
pub use server::{ServeConfig, Server};
