//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The framing layer is deliberately dumb (no versioning handshake, no
//! compression) so any language with a socket and a JSON library can speak
//! it; the JSON payloads are self-describing objects with a `"type"` tag.
//!
//! # Requests
//!
//! | `type`     | fields |
//! |------------|--------|
//! | `ping`     | — |
//! | `spgemm`   | `tenant?`, `strategy?`, `format?`, `a?`/`b?` (matrices), `a_id?`/`b_id?` (cache keys), `want_output?`, `timeout_ms?` |
//! | `model`    | `tenant?`, `model` (suite short code or name), `strategy?`, `format?`, `seed?`, `timeout_ms?` |
//!
//! `format` pins the fiber storage format like `strategy` pins the
//! dataflow: a [`FormatChoice`] token (`auto`, `soa`, `bcsr4`, `bcsr8`,
//! `ell`, `q8`). Omitted, the daemon's configured default applies. An
//! unknown token is a typed `bad_request`.
//! | `stats`    | — |
//! | `shutdown` | — (begins a graceful drain) |
//!
//! # Responses
//!
//! `pong`, `ok`, `result` (SpGEMM output: dataflow, digest, optional
//! matrix, full execution report, latency split), `model_result`, `stats`,
//! and `error` (machine-readable `code` + human `detail`). A malformed
//! frame produces an `error` response and leaves the connection usable;
//! only a lost framing boundary (oversized length prefix, truncated
//! stream) closes it.
//!
//! Matrices travel in the same JSON shape `CompressedMatrix` serializes to
//! everywhere else in the workspace (goldens, reports), so a served result
//! with `want_output` is byte-comparable against a direct `execute`.

use flexagon_core::{Dataflow, FormatChoice, MappingStrategy};
use flexagon_sparse::CompressedMatrix;
use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// Default ceiling on one frame's payload (64 MiB): large enough for the
/// workloads the simulator runs, small enough that a garbage length prefix
/// cannot make the daemon allocate unbounded memory.
pub const DEFAULT_MAX_FRAME_BYTES: u64 = 64 << 20;

/// Machine-readable error codes carried by `error` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The payload was not valid UTF-8 JSON or not a recognized request.
    BadRequest,
    /// An `a_id`/`b_id` referenced a matrix the operand cache does not hold.
    UnknownMatrix,
    /// An operand decoded but failed untrusted-input validation (broken
    /// structure, non-finite values, resource-bomb dimensions).
    InvalidOperand,
    /// A `model` request named a model outside the DNN suite.
    UnknownModel,
    /// The job queue is at capacity — back off and retry.
    QueueFull,
    /// Admission control judged the job infeasible: its estimated cost
    /// cannot fit inside its deadline at current load. Distinct from
    /// [`ErrorCode::QueueFull`] (the queue has room, the *deadline*
    /// doesn't) — retrying with a longer deadline may succeed; retrying
    /// with the same one will not until load falls.
    Overloaded,
    /// The job's end-to-end deadline passed — before a worker could start
    /// it, or mid-execution (the engine was cooperatively cancelled).
    Timeout,
    /// The daemon is draining: in-flight jobs finish, new work is refused.
    Draining,
    /// The engine rejected the job (e.g. operand dimension mismatch).
    Engine,
    /// The daemon failed internally (a worker vanished mid-job).
    Internal,
}

impl ErrorCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BadRequest => "bad_request",
            Self::UnknownMatrix => "unknown_matrix",
            Self::InvalidOperand => "invalid_operand",
            Self::UnknownModel => "unknown_model",
            Self::QueueFull => "queue_full",
            Self::Overloaded => "overloaded",
            Self::Timeout => "timeout",
            Self::Draining => "draining",
            Self::Engine => "engine",
            Self::Internal => "internal",
        }
    }

    /// Parses a wire token.
    pub fn from_str_token(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => Self::BadRequest,
            "unknown_matrix" => Self::UnknownMatrix,
            "invalid_operand" => Self::InvalidOperand,
            "unknown_model" => Self::UnknownModel,
            "queue_full" => Self::QueueFull,
            "overloaded" => Self::Overloaded,
            "timeout" => Self::Timeout,
            "draining" => Self::Draining,
            "engine" => Self::Engine,
            "internal" => Self::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One SpGEMM job: operands (inline, cached, or both), strategy, options.
#[derive(Debug, Clone)]
pub struct SpGemmRequest {
    /// Tenant label for per-tenant statistics (default `"anon"`).
    pub tenant: String,
    /// Dataflow selection (default [`MappingStrategy::Heuristic`] — the
    /// production single-run path; `oracle` sweeps all six dataflows).
    pub strategy: MappingStrategy,
    /// Fiber storage format selection (default [`FormatChoice::Config`]:
    /// the daemon's configured engine format).
    pub format: FormatChoice,
    /// Inline operand A. May be omitted when `a_id` names a cached matrix.
    pub a: Option<CompressedMatrix>,
    /// Inline operand B. May be omitted when `b_id` names a cached matrix.
    pub b: Option<CompressedMatrix>,
    /// Operand-cache identity for A: with an inline matrix, offers it to
    /// the cache under this key; alone, requires a cache hit.
    pub a_id: Option<String>,
    /// Operand-cache identity for B (see `a_id`).
    pub b_id: Option<String>,
    /// Return the full output matrix C (default `false`: the response
    /// carries only its digest, sparing the downlink on large outputs).
    pub want_output: bool,
    /// End-to-end deadline in milliseconds, covering queue wait *and*
    /// execution. A job not started within it is rejected with
    /// [`ErrorCode::Timeout`]; one still executing when it passes is
    /// cooperatively cancelled at the engine's next band/tile/merge
    /// boundary and replies `timeout` too. Admission control may reject a
    /// deadline the cost model judges infeasible with
    /// [`ErrorCode::Overloaded`] before queueing. `None` uses the
    /// daemon's default.
    pub timeout_ms: Option<u64>,
}

impl Default for SpGemmRequest {
    fn default() -> Self {
        Self {
            tenant: "anon".to_owned(),
            strategy: MappingStrategy::Heuristic,
            format: FormatChoice::Config,
            a: None,
            b: None,
            a_id: None,
            b_id: None,
            want_output: false,
            timeout_ms: None,
        }
    }
}

/// One DNN-model job: run a whole suite model through the bench runner.
#[derive(Debug, Clone)]
pub struct ModelRequest {
    /// Tenant label for per-tenant statistics.
    pub tenant: String,
    /// Suite model, by short code (`"A"`, `"MB"`, ...) or full name.
    pub model: String,
    /// Dataflow selection per layer.
    pub strategy: MappingStrategy,
    /// Fiber storage format for every layer. `auto` is SpGEMM-only (a
    /// model run spans many layers); the server rejects it as
    /// `bad_request`.
    pub format: FormatChoice,
    /// Workload materialization seed (default [`flexagon_bench::runner::DEFAULT_SEED`]).
    pub seed: u64,
    /// Deadline in milliseconds. Model jobs honor it at queue-pop (a job
    /// not started in time replies `timeout`) but run to completion once
    /// started — the bench runner has no cancellation path; only SpGEMM
    /// jobs are cancelled mid-execution (see
    /// [`SpGemmRequest::timeout_ms`]).
    pub timeout_ms: Option<u64>,
}

impl Default for ModelRequest {
    fn default() -> Self {
        Self {
            tenant: "anon".to_owned(),
            model: String::new(),
            strategy: MappingStrategy::Heuristic,
            format: FormatChoice::Config,
            seed: flexagon_bench::runner::DEFAULT_SEED,
            timeout_ms: None,
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// One SpGEMM job.
    SpGemm(Box<SpGemmRequest>),
    /// One DNN-model job.
    Model(ModelRequest),
    /// Per-tenant and daemon-wide statistics snapshot.
    Stats,
    /// Begin a graceful drain: in-flight jobs finish, queued and new jobs
    /// are rejected, the daemon exits once idle.
    Shutdown,
}

impl Request {
    /// Boxes an [`SpGemmRequest`] into its variant (the matrices make the
    /// struct large enough that the enum is boxed to keep `Request` small).
    pub fn spgemm(r: SpGemmRequest) -> Self {
        Self::SpGemm(Box::new(r))
    }
}

/// A served SpGEMM result.
#[derive(Debug, Clone)]
pub struct SpGemmResponse {
    /// The dataflow the strategy selected.
    pub dataflow: Dataflow,
    /// FNV-1a digest over the output matrix's structure and value bits.
    pub c_digest: String,
    /// The output matrix, when the request set `want_output`.
    pub c: Option<CompressedMatrix>,
    /// The full execution report, as its canonical JSON value — byte-equal
    /// to serializing the report of a direct `execute` of the same
    /// (operands, config).
    pub report: Value,
    /// Microseconds the job waited in the queue.
    pub queue_us: u64,
    /// Microseconds the job spent executing.
    pub exec_us: u64,
}

/// A served model result.
#[derive(Debug, Clone)]
pub struct ModelResponse {
    /// `flexagon_bench::runner::ModelResults` as its canonical JSON value.
    pub results: Value,
    /// Microseconds the job waited in the queue.
    pub queue_us: u64,
    /// Microseconds the job spent executing.
    pub exec_us: u64,
}

/// A daemon response.
#[derive(Debug, Clone)]
pub enum Response {
    /// Reply to `ping`.
    Pong,
    /// Generic acknowledgement (`shutdown`).
    Ok,
    /// SpGEMM result.
    Result(SpGemmResponse),
    /// Model result.
    ModelResult(ModelResponse),
    /// Statistics snapshot (shape documented in the README's serving
    /// section; carried as a raw JSON value).
    Stats(Value),
    /// Request-level failure. The connection remains usable.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable description.
        detail: String,
    },
}

/// Newtype lending the shim's raw [`Value`] a [`Serialize`] impl (the
/// shim does not implement its traits for its own value type), so raw
/// payloads like `stats` render through `serde_json` like any message.
pub struct RawValue<'a>(pub &'a Value);

impl Serialize for RawValue<'_> {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Serializes a [`MappingStrategy`] as its wire token (`"oracle"`,
/// `"heuristic"`, or a dataflow token like `"ip-m"` for `Fixed`).
pub fn strategy_token(s: MappingStrategy) -> String {
    match s {
        MappingStrategy::Oracle => "oracle".to_owned(),
        MappingStrategy::Heuristic => "heuristic".to_owned(),
        MappingStrategy::Fixed(df) => df.token().to_owned(),
    }
}

fn get_opt<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn opt_field<T: Deserialize>(m: &[(String, Value)], key: &str) -> Result<Option<T>, DeError> {
    get_opt(m, key).map(T::from_value).transpose()
}

fn push_opt<T: Serialize>(entries: &mut Vec<(String, Value)>, key: &str, v: &Option<T>) {
    if let Some(v) = v {
        entries.push((key.to_owned(), v.to_value()));
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::new();
        match self {
            Self::Ping => m.push(("type".into(), Value::Str("ping".into()))),
            Self::Stats => m.push(("type".into(), Value::Str("stats".into()))),
            Self::Shutdown => m.push(("type".into(), Value::Str("shutdown".into()))),
            Self::SpGemm(r) => {
                m.push(("type".into(), Value::Str("spgemm".into())));
                m.push(("tenant".into(), Value::Str(r.tenant.clone())));
                m.push(("strategy".into(), Value::Str(strategy_token(r.strategy))));
                push_format(&mut m, r.format);
                push_opt(&mut m, "a", &r.a);
                push_opt(&mut m, "b", &r.b);
                push_opt(&mut m, "a_id", &r.a_id);
                push_opt(&mut m, "b_id", &r.b_id);
                m.push(("want_output".into(), Value::Bool(r.want_output)));
                push_opt(&mut m, "timeout_ms", &r.timeout_ms);
            }
            Self::Model(r) => {
                m.push(("type".into(), Value::Str("model".into())));
                m.push(("tenant".into(), Value::Str(r.tenant.clone())));
                m.push(("model".into(), Value::Str(r.model.clone())));
                m.push(("strategy".into(), Value::Str(strategy_token(r.strategy))));
                push_format(&mut m, r.format);
                m.push(("seed".into(), Value::UInt(r.seed)));
                push_opt(&mut m, "timeout_ms", &r.timeout_ms);
            }
        }
        Value::Map(m)
    }
}

fn parse_strategy(m: &[(String, Value)]) -> Result<MappingStrategy, DeError> {
    match get_opt(m, "strategy") {
        None => Ok(MappingStrategy::Heuristic),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| DeError::new("strategy must be a string token"))?;
            s.parse().map_err(|e: String| DeError::new(&e))
        }
    }
}

/// Emits the `format` field only when it deviates from the daemon default,
/// keeping pre-format clients' frames byte-identical.
fn push_format(entries: &mut Vec<(String, Value)>, format: FormatChoice) {
    if format != FormatChoice::Config {
        entries.push(("format".into(), Value::Str(format.to_string())));
    }
}

fn parse_format(m: &[(String, Value)]) -> Result<FormatChoice, DeError> {
    match get_opt(m, "format") {
        None => Ok(FormatChoice::Config),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| DeError::new("format must be a string token"))?;
            s.parse().map_err(|e: String| DeError::new(&e))
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::new("request must be a JSON object"))?;
        let ty = serde::map_get(m, "type")?
            .as_str()
            .ok_or_else(|| DeError::new("'type' must be a string"))?;
        match ty {
            "ping" => Ok(Self::Ping),
            "stats" => Ok(Self::Stats),
            "shutdown" => Ok(Self::Shutdown),
            "spgemm" => {
                let d = SpGemmRequest::default();
                Ok(Self::spgemm(SpGemmRequest {
                    tenant: opt_field(m, "tenant")?.unwrap_or(d.tenant),
                    strategy: parse_strategy(m)?,
                    format: parse_format(m)?,
                    a: opt_field(m, "a")?,
                    b: opt_field(m, "b")?,
                    a_id: opt_field(m, "a_id")?,
                    b_id: opt_field(m, "b_id")?,
                    want_output: opt_field(m, "want_output")?.unwrap_or(false),
                    timeout_ms: opt_field(m, "timeout_ms")?,
                }))
            }
            "model" => {
                let d = ModelRequest::default();
                Ok(Self::Model(ModelRequest {
                    tenant: opt_field(m, "tenant")?.unwrap_or(d.tenant),
                    model: opt_field(m, "model")?
                        .ok_or_else(|| DeError::new("model request needs a 'model' field"))?,
                    strategy: parse_strategy(m)?,
                    format: parse_format(m)?,
                    seed: opt_field(m, "seed")?.unwrap_or(d.seed),
                    timeout_ms: opt_field(m, "timeout_ms")?,
                }))
            }
            other => Err(DeError::new(&format!("unknown request type '{other}'"))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::new();
        match self {
            Self::Pong => m.push(("type".into(), Value::Str("pong".into()))),
            Self::Ok => m.push(("type".into(), Value::Str("ok".into()))),
            Self::Stats(v) => {
                m.push(("type".into(), Value::Str("stats".into())));
                m.push(("stats".into(), v.clone()));
            }
            Self::Error { code, detail } => {
                m.push(("type".into(), Value::Str("error".into())));
                m.push(("code".into(), Value::Str(code.as_str().into())));
                m.push(("detail".into(), Value::Str(detail.clone())));
            }
            Self::Result(r) => {
                m.push(("type".into(), Value::Str("result".into())));
                m.push(("dataflow".into(), Value::Str(r.dataflow.token().into())));
                m.push(("c_digest".into(), Value::Str(r.c_digest.clone())));
                push_opt(&mut m, "c", &r.c);
                m.push(("report".into(), r.report.clone()));
                m.push(("queue_us".into(), Value::UInt(r.queue_us)));
                m.push(("exec_us".into(), Value::UInt(r.exec_us)));
            }
            Self::ModelResult(r) => {
                m.push(("type".into(), Value::Str("model_result".into())));
                m.push(("results".into(), r.results.clone()));
                m.push(("queue_us".into(), Value::UInt(r.queue_us)));
                m.push(("exec_us".into(), Value::UInt(r.exec_us)));
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::new("response must be a JSON object"))?;
        let ty = serde::map_get(m, "type")?
            .as_str()
            .ok_or_else(|| DeError::new("'type' must be a string"))?;
        match ty {
            "pong" => Ok(Self::Pong),
            "ok" => Ok(Self::Ok),
            "stats" => Ok(Self::Stats(serde::map_get(m, "stats")?.clone())),
            "error" => {
                let code: String = Deserialize::from_value(serde::map_get(m, "code")?)?;
                Ok(Self::Error {
                    code: ErrorCode::from_str_token(&code)
                        .ok_or_else(|| DeError::new(&format!("unknown error code '{code}'")))?,
                    detail: opt_field(m, "detail")?.unwrap_or_default(),
                })
            }
            "result" => {
                let token: String = Deserialize::from_value(serde::map_get(m, "dataflow")?)?;
                Ok(Self::Result(SpGemmResponse {
                    dataflow: Dataflow::from_token(&token)
                        .ok_or_else(|| DeError::new(&format!("unknown dataflow '{token}'")))?,
                    c_digest: Deserialize::from_value(serde::map_get(m, "c_digest")?)?,
                    c: opt_field(m, "c")?,
                    report: serde::map_get(m, "report")?.clone(),
                    queue_us: Deserialize::from_value(serde::map_get(m, "queue_us")?)?,
                    exec_us: Deserialize::from_value(serde::map_get(m, "exec_us")?)?,
                }))
            }
            "model_result" => Ok(Self::ModelResult(ModelResponse {
                results: serde::map_get(m, "results")?.clone(),
                queue_us: Deserialize::from_value(serde::map_get(m, "queue_us")?)?,
                exec_us: Deserialize::from_value(serde::map_get(m, "exec_us")?)?,
            })),
            other => Err(DeError::new(&format!("unknown response type '{other}'"))),
        }
    }
}

/// FNV-1a (64-bit) digest over a matrix's dimensions, order, structure and
/// value *bits* — exact equality of the compressed representation, immune
/// to float-text formatting.
pub fn matrix_digest(m: &CompressedMatrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(u64::from(m.rows()));
    eat(u64::from(m.cols()));
    eat(match m.order() {
        flexagon_sparse::MajorOrder::Row => 0,
        flexagon_sparse::MajorOrder::Col => 1,
    });
    for &p in m.ptr() {
        eat(p as u64);
    }
    for &c in m.coords() {
        eat(u64::from(c));
    }
    for &v in m.values() {
        eat(u64::from(v.to_bits()));
    }
    h
}

/// Renders a digest as fixed-width hex (the wire form).
pub fn digest_hex(d: u64) -> String {
    format!("{d:016x}")
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads longer than `u32::MAX` with
/// [`std::io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX",
        )
    })?;
    // One write per frame when affordable: a split header/payload write is
    // two packets on an unbuffered socket (and, under Nagle, a delayed-ACK
    // stall — see `net`). Large payloads keep the two-write path to avoid
    // doubling their memory.
    const COALESCE_LIMIT: usize = 1 << 16;
    if payload.len() <= COALESCE_LIMIT {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(payload);
        w.write_all(&frame)?;
    } else {
        w.write_all(&len.to_be_bytes())?;
        w.write_all(payload)?;
    }
    w.flush()
}

/// Serializes and writes one message frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(msg).expect("shim serialization is infallible");
    write_frame(w, json.as_bytes())
}

/// One observation from [`FrameReader::read`].
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the stream. `clean` is false when the close landed
    /// mid-frame (a truncated frame — the client died or lied about the
    /// length).
    Closed {
        /// True when the stream ended on a frame boundary.
        clean: bool,
    },
    /// The read timed out before a full frame arrived (only with a socket
    /// read timeout configured) — check shutdown flags and call again.
    Timeout,
    /// The declared payload length exceeds the reader's ceiling. The
    /// framing boundary is lost; the caller must close the connection.
    TooLarge(u64),
}

/// Incremental frame reader: accumulates bytes across short reads and
/// timeouts, yielding one [`FrameEvent`] per call.
#[derive(Debug)]
pub struct FrameReader {
    max_frame: u64,
    buf: Vec<u8>,
    scratch: [u8; 16 * 1024],
}

impl FrameReader {
    /// Creates a reader enforcing the given payload ceiling.
    pub fn new(max_frame: u64) -> Self {
        Self {
            max_frame,
            buf: Vec::new(),
            scratch: [0; 16 * 1024],
        }
    }

    /// Extracts a complete frame from the accumulated buffer, if present.
    fn take_frame(&mut self) -> Option<Result<Vec<u8>, u64>> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as u64;
        if len > self.max_frame {
            return Some(Err(len));
        }
        let end = 4 + len as usize;
        if self.buf.len() < end {
            return None;
        }
        let payload = self.buf[4..end].to_vec();
        self.buf.drain(..end);
        Some(Ok(payload))
    }

    /// Reads until one frame completes, the stream closes, or the read
    /// times out.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than timeouts (those surface as
    /// [`FrameEvent::Timeout`]) and interrupts (retried).
    pub fn read<R: Read>(&mut self, r: &mut R) -> std::io::Result<FrameEvent> {
        loop {
            match self.take_frame() {
                Some(Ok(p)) => return Ok(FrameEvent::Frame(p)),
                Some(Err(len)) => return Ok(FrameEvent::TooLarge(len)),
                None => {}
            }
            match r.read(&mut self.scratch) {
                Ok(0) => {
                    return Ok(FrameEvent::Closed {
                        clean: self.buf.is_empty(),
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&self.scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(FrameEvent::Timeout)
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Parses a frame payload into a request: UTF-8, then JSON, then shape.
///
/// # Errors
///
/// A `(code, detail)` pair ready to send back as an `error` response.
pub fn parse_request(payload: &[u8]) -> Result<Request, (ErrorCode, String)> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| (ErrorCode::BadRequest, format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| (ErrorCode::BadRequest, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut reader = FrameReader::new(1024);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            reader.read(&mut cursor).unwrap(),
            FrameEvent::Frame(p) if p == b"hello"
        ));
        assert!(matches!(
            reader.read(&mut cursor).unwrap(),
            FrameEvent::Frame(p) if p.is_empty()
        ));
        assert!(matches!(
            reader.read(&mut cursor).unwrap(),
            FrameEvent::Closed { clean: true }
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            reader.read(&mut cursor).unwrap(),
            FrameEvent::TooLarge(n) if n == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn truncated_frame_reports_unclean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = FrameReader::new(1024);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            reader.read(&mut cursor).unwrap(),
            FrameEvent::Closed { clean: false }
        ));
    }

    #[test]
    fn request_defaults_fill_in() {
        let req: Request = serde_json::from_str(r#"{"type":"spgemm"}"#).unwrap();
        let Request::SpGemm(r) = req else {
            panic!("expected spgemm")
        };
        assert_eq!(r.tenant, "anon");
        assert_eq!(r.strategy, MappingStrategy::Heuristic);
        assert_eq!(r.format, FormatChoice::Config);
        assert!(!r.want_output);
        assert!(r.a.is_none() && r.b.is_none());
    }

    #[test]
    fn format_tokens_roundtrip_and_default_is_omitted() {
        use flexagon_sparse::FiberFormat;
        for (choice, token) in [
            (FormatChoice::Auto, "auto"),
            (FormatChoice::Fixed(FiberFormat::Bcsr4), "bcsr4"),
            (FormatChoice::Fixed(FiberFormat::Ell), "ell"),
            (FormatChoice::Fixed(FiberFormat::Quant8), "q8"),
        ] {
            let req = Request::spgemm(SpGemmRequest {
                format: choice,
                ..SpGemmRequest::default()
            });
            let json = serde_json::to_string(&req).unwrap();
            assert!(json.contains(token), "{json} should carry '{token}'");
            let Request::SpGemm(back) = serde_json::from_str(&json).unwrap() else {
                panic!("expected spgemm")
            };
            assert_eq!(back.format, choice);
        }
        // The config default stays off the wire: old clients and new
        // daemons (and vice versa) interoperate without the field.
        let json = serde_json::to_string(&Request::spgemm(SpGemmRequest::default())).unwrap();
        assert!(!json.contains("format"), "default emits no format field");
    }

    #[test]
    fn unknown_format_token_is_bad_request() {
        let err = parse_request(br#"{"type":"spgemm","format":"csr5"}"#).unwrap_err();
        assert_eq!(err.0, ErrorCode::BadRequest);
        assert!(err.1.contains("csr5"), "detail names the token: {}", err.1);
    }

    #[test]
    fn strategy_tokens_roundtrip() {
        for s in [
            MappingStrategy::Oracle,
            MappingStrategy::Heuristic,
            MappingStrategy::Fixed(Dataflow::GustavsonN),
        ] {
            let parsed: MappingStrategy = strategy_token(s).parse().unwrap();
            assert_eq!(parsed, s);
        }
    }

    #[test]
    fn digest_distinguishes_value_bits() {
        let a = CompressedMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (1, 1, 2.0)],
            flexagon_sparse::MajorOrder::Row,
        )
        .unwrap();
        let b = CompressedMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (1, 1, -2.0)],
            flexagon_sparse::MajorOrder::Row,
        )
        .unwrap();
        assert_ne!(matrix_digest(&a), matrix_digest(&b));
        assert_eq!(matrix_digest(&a), matrix_digest(&a.clone()));
    }

    #[test]
    fn unknown_request_type_is_bad_request() {
        let err = parse_request(br#"{"type":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.0, ErrorCode::BadRequest);
        let err = parse_request(b"\xff\xfe").unwrap_err();
        assert_eq!(err.0, ErrorCode::BadRequest);
    }
}
