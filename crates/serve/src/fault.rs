//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is compiled into the daemon unconditionally and costs
//! one relaxed atomic load per job/frame when empty — no cargo feature,
//! no rebuild, so the binary CI chaos-tests is the binary that ships.
//! Faults are driven by counters, not randomness: "every Nth job panics"
//! reproduces identically across runs, which is what an assertion like
//! "≥1 panic per 50 requests was injected *and survived*" needs.
//!
//! Four injection points:
//!
//! * **Worker panic** — [`FaultPlan::on_job`] tells the scheduler worker
//!   to panic inside its `catch_unwind` region, exercising the rebuild
//!   path exactly like a real engine bug would.
//! * **Job latency** — the same call can return an artificial delay,
//!   applied before execution to push jobs toward their deadlines.
//! * **Frame corruption** — [`FaultPlan::corrupt_frame`] overwrites bytes
//!   of an inbound payload with `0xFF` (never valid UTF-8, so corruption
//!   deterministically yields a typed `bad_request` error rather than a
//!   silently altered request).
//! * **Stuck job** — `stuck=N` wedges every Nth job: the worker spins in
//!   place of executing it and only returns when the job's cancellation
//!   token fires. Without end-to-end deadlines a stuck job would hold its
//!   worker hostage forever; the chaos tests use it to prove a wedged
//!   worker is reclaimed within one deadline.
//!
//! The plan is configured from a spec string — `--faults` flag or the
//! `FLEXAGON_FAULTS` environment variable — of comma-separated knobs:
//! `panic=N` (every Nth job panics), `slow=N:MS` (every Nth job sleeps
//! MS milliseconds), `corrupt=N` (every Nth data frame is corrupted),
//! `stuck=N` (every Nth job wedges until cancelled).
//! Example: `panic=50,slow=50:20,corrupt=50`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Static description of which faults fire and how often.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Every `panic_every`-th job panics (0 = never).
    pub panic_every: u64,
    /// Every `slow_every`-th job sleeps `slow_ms` (0 = never).
    pub slow_every: u64,
    /// Injected latency for slowed jobs, in milliseconds.
    pub slow_ms: u64,
    /// Every `corrupt_every`-th inbound frame is corrupted (0 = never).
    pub corrupt_every: u64,
    /// Every `stuck_every`-th job wedges — it never finishes unless its
    /// cancellation token fires (0 = never).
    pub stuck_every: u64,
}

impl FaultSpec {
    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.panic_every == 0
            && self.slow_every == 0
            && self.corrupt_every == 0
            && self.stuck_every == 0
    }

    /// Parses a spec string (`panic=N,slow=N:MS,corrupt=N`; empty string →
    /// no faults).
    ///
    /// # Errors
    ///
    /// A description of the first malformed knob.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        for knob in s.split(',').map(str::trim).filter(|k| !k.is_empty()) {
            let (key, value) = knob
                .split_once('=')
                .ok_or_else(|| format!("fault knob '{knob}' is not key=value"))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("fault knob '{knob}': {e}"))
            };
            match key.trim() {
                "panic" => spec.panic_every = parse_u64(value)?,
                "slow" => {
                    let (every, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("slow knob '{knob}' needs N:MS"))?;
                    spec.slow_every = parse_u64(every)?;
                    spec.slow_ms = parse_u64(ms)?;
                }
                "corrupt" => spec.corrupt_every = parse_u64(value)?,
                "stuck" => spec.stuck_every = parse_u64(value)?,
                other => return Err(format!("unknown fault knob '{other}'")),
            }
        }
        Ok(spec)
    }
}

/// What [`FaultPlan::on_job`] decided for one job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobFault {
    /// The worker must panic while executing this job.
    pub panic: bool,
    /// Sleep this long before executing (deadline pressure).
    pub delay: Option<Duration>,
    /// The worker must wedge on this job: spin instead of executing, and
    /// return only when the job's cancellation token fires.
    pub stuck: bool,
}

/// How many faults a plan has actually injected — what a chaos test
/// asserts against ("≥1 panic was injected *and survived*").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Worker panics injected.
    pub panics: u64,
    /// Jobs artificially delayed.
    pub slow_jobs: u64,
    /// Inbound frames corrupted.
    pub corrupted_frames: u64,
    /// Jobs wedged until their cancellation token fired.
    pub stuck_jobs: u64,
}

/// A live fault-injection plan: the spec plus the counters that drive it.
///
/// Shared (`Arc`) between the server's connection loops (frame corruption)
/// and the scheduler's workers (panics, latency). The empty plan is the
/// default and costs one relaxed load per decision.
#[derive(Debug, Default)]
pub struct FaultPlan {
    spec: FaultSpec,
    enabled: bool,
    jobs: AtomicU64,
    frames: AtomicU64,
    panics: AtomicU64,
    slow_jobs: AtomicU64,
    corrupted_frames: AtomicU64,
    stuck_jobs: AtomicU64,
}

impl FaultPlan {
    /// A plan injecting nothing (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan driven by `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        Self {
            spec,
            enabled: !spec.is_empty(),
            jobs: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            slow_jobs: AtomicU64::new(0),
            corrupted_frames: AtomicU64::new(0),
            stuck_jobs: AtomicU64::new(0),
        }
    }

    /// Builds a plan from the `FLEXAGON_FAULTS` environment variable
    /// (unset or empty → no faults).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultSpec::parse`] errors.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("FLEXAGON_FAULTS") {
            Ok(s) => Ok(Self::new(FaultSpec::parse(&s)?)),
            Err(_) => Ok(Self::none()),
        }
    }

    /// The spec this plan runs.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Whether any fault is configured (the fast-path check callers may
    /// use to skip work; the injection methods do it themselves).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Decides the faults for the next job. One counter increment per
    /// call, so "every Nth job" means exactly that across all workers.
    pub fn on_job(&self) -> JobFault {
        if !self.enabled {
            return JobFault::default();
        }
        let n = self.jobs.fetch_add(1, Ordering::Relaxed) + 1;
        let fault = JobFault {
            panic: self.spec.panic_every != 0 && n.is_multiple_of(self.spec.panic_every),
            delay: (self.spec.slow_every != 0 && n.is_multiple_of(self.spec.slow_every))
                .then(|| Duration::from_millis(self.spec.slow_ms)),
            stuck: self.spec.stuck_every != 0 && n.is_multiple_of(self.spec.stuck_every),
        };
        if fault.panic {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        if fault.delay.is_some() {
            self.slow_jobs.fetch_add(1, Ordering::Relaxed);
        }
        if fault.stuck {
            self.stuck_jobs.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// A snapshot of the faults injected so far.
    pub fn injected(&self) -> InjectionCounts {
        InjectionCounts {
            panics: self.panics.load(Ordering::Relaxed),
            slow_jobs: self.slow_jobs.load(Ordering::Relaxed),
            corrupted_frames: self.corrupted_frames.load(Ordering::Relaxed),
            stuck_jobs: self.stuck_jobs.load(Ordering::Relaxed),
        }
    }

    /// Possibly corrupts an inbound frame payload in place; returns whether
    /// it did. Corruption overwrites up to 8 bytes with `0xFF` — never
    /// valid UTF-8, so a corrupted request deterministically parses to a
    /// typed `bad_request` error instead of silently mutating numbers.
    pub fn corrupt_frame(&self, payload: &mut [u8]) -> bool {
        if !self.enabled || self.spec.corrupt_every == 0 || payload.is_empty() {
            return false;
        }
        let n = self.frames.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.spec.corrupt_every) {
            return false;
        }
        let start = payload.len() / 2;
        let end = (start + 8).min(payload.len());
        for b in &mut payload[start..end] {
            *b = 0xFF;
        }
        self.corrupted_frames.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let s = FaultSpec::parse("panic=50, slow=25:20, corrupt=10, stuck=40").unwrap();
        assert_eq!(
            s,
            FaultSpec {
                panic_every: 50,
                slow_every: 25,
                slow_ms: 20,
                corrupt_every: 10,
                stuck_every: 40,
            }
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn parse_empty_and_errors() {
        assert!(FaultSpec::parse("").unwrap().is_empty());
        assert!(FaultSpec::parse("panic").is_err());
        assert!(FaultSpec::parse("slow=5").is_err());
        assert!(FaultSpec::parse("panic=x").is_err());
        assert!(FaultSpec::parse("frobnicate=1").is_err());
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.enabled());
        for _ in 0..100 {
            assert_eq!(plan.on_job(), JobFault::default());
        }
        let mut payload = vec![b'x'; 64];
        assert!(!plan.corrupt_frame(&mut payload));
        assert!(payload.iter().all(|&b| b == b'x'));
    }

    #[test]
    fn every_nth_job_faults_exactly() {
        let plan = FaultPlan::new(FaultSpec::parse("panic=3,slow=2:7,stuck=5").unwrap());
        let faults: Vec<JobFault> = (0..6).map(|_| plan.on_job()).collect();
        let panics: Vec<bool> = faults.iter().map(|f| f.panic).collect();
        assert_eq!(panics, [false, false, true, false, false, true]);
        let delays: Vec<bool> = faults.iter().map(|f| f.delay.is_some()).collect();
        assert_eq!(delays, [false, true, false, true, false, true]);
        let stuck: Vec<bool> = faults.iter().map(|f| f.stuck).collect();
        assert_eq!(stuck, [false, false, false, false, true, false]);
        assert_eq!(faults[1].delay, Some(Duration::from_millis(7)));
        assert_eq!(
            plan.injected(),
            InjectionCounts {
                panics: 2,
                slow_jobs: 3,
                corrupted_frames: 0,
                stuck_jobs: 1,
            }
        );
    }

    #[test]
    fn corruption_yields_invalid_utf8() {
        let plan = FaultPlan::new(FaultSpec::parse("corrupt=2").unwrap());
        let mut a = br#"{"type":"ping"}"#.to_vec();
        assert!(!plan.corrupt_frame(&mut a), "first frame passes");
        let mut b = br#"{"type":"ping"}"#.to_vec();
        assert!(plan.corrupt_frame(&mut b), "second frame is corrupted");
        assert!(std::str::from_utf8(&b).is_err(), "0xFF is never UTF-8");
    }
}
