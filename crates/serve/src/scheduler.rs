//! The job scheduler: a bounded queue feeding a fixed worker pool.
//!
//! Each worker owns its accelerators (one `Flexagon` + `WorkspacePool` per
//! effective shard-worker setting it has seen), so pooled scratch is reused
//! across requests without cross-thread contention. Parallelism composes
//! on two levels, exactly like the bench runner: jobs fan across workers,
//! and each job's intra-layer shard workers are clamped to
//! [`intra_layer_worker_budget`] of the configured thread budget over the
//! jobs currently in flight — one lone job may use every thread, while a
//! full pool degrades gracefully to one thread per job instead of
//! oversubscribing.
//!
//! None of this can change a result: the band decomposition is derived
//! from operand structure and grain alone (never the worker count), so a
//! served job is byte-identical to a direct `engine::execute` of the same
//! (operands, config) regardless of scheduling order or pool pressure.
//!
//! Degradation is explicit and layered. A full queue rejects with
//! `queue_full` (backpressure). An admission controller prices every
//! SpGEMM at enqueue with the calibrated mapper cost model: once the
//! scheduler has observed real executions (an EWMA of nanoseconds per
//! estimated cycle), a job whose estimated cost cannot fit inside its
//! remaining deadline is shed immediately with `overloaded` — a typed
//! "this deadline is infeasible", distinct from `queue_full`'s "no room".
//! Under sustained overload — queue depth crossing a high watermark —
//! the scheduler *degrades before it sheds*: workers clamp their
//! intra-layer shard budget to one thread and downgrade `oracle` jobs to
//! the heuristic's single cheapest mapping, trading per-job latency for
//! pool throughput until depth falls below the low watermark.
//!
//! Deadlines are end-to-end: a job whose deadline passes while queued is
//! answered `timeout` without running, and a job still executing at its
//! deadline is cooperatively cancelled — the scheduler hands each worker
//! the job's [`CancelToken`], the engine stops at its next band/tile/merge
//! boundary, and the client receives the same typed `timeout`. Neither
//! cancellation nor degradation can change a result: an unarmed token is
//! result-transparent, and degraded jobs only narrow worker counts and
//! strategy choices, never the band decomposition. Drain never aborts
//! in-flight work (only a fired deadline does).

use crate::cache::OperandCache;
use crate::fault::FaultPlan;
use crate::lock::{lock_recover, wait_timeout_recover};
use crate::protocol::{
    digest_hex, matrix_digest, ErrorCode, ModelResponse, Response, SpGemmResponse,
};
use crate::stats::{Outcome, StatsRegistry};
use flexagon_bench::runner::{self, intra_layer_worker_budget, RunOptions};
use flexagon_core::mapper::CostEstimates;
use flexagon_core::{
    Accelerator, AcceleratorConfig, CancelToken, CoreError, EngineConfig, ExecutionRequest,
    Flexagon, FormatChoice, MappingStrategy,
};
use flexagon_dnn::DnnModel;
use flexagon_sparse::{validate_matrix, CompressedMatrix, ValidationConfig};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// EWMA weight of the newest cost observation (see [`Shared::observe_cost`]).
const COST_EWMA_ALPHA: f64 = 0.2;

/// How often a wedged (stuck-fault) worker polls its job's cancel token.
const STUCK_POLL: Duration = Duration::from_millis(1);

/// What a queued job computes.
#[derive(Debug)]
pub enum JobKind {
    /// One SpGEMM: operands are already resolved (possibly cache-shared).
    SpGemm {
        /// Stationary operand.
        a: Arc<CompressedMatrix>,
        /// Streamed operand.
        b: Arc<CompressedMatrix>,
        /// Dataflow selection.
        strategy: MappingStrategy,
        /// Fiber storage format selection.
        format: FormatChoice,
        /// Return the output matrix in the response.
        want_output: bool,
    },
    /// One whole DNN model through the bench runner (layer-sequential;
    /// intra-layer shard workers carry the parallelism).
    Model {
        /// The suite model to run.
        model: DnnModel,
        /// Dataflow selection per layer.
        strategy: MappingStrategy,
        /// Fiber storage format for every layer (`Auto` is rejected at the
        /// server before a job is built).
        format: FormatChoice,
        /// Workload materialization seed.
        seed: u64,
    },
}

/// One queued request.
#[derive(Debug)]
pub struct Job {
    /// Tenant label for stats attribution.
    pub tenant: String,
    /// The work.
    pub kind: JobKind,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// End-to-end deadline: not started by then → `timeout` reply; still
    /// executing past it → cooperative cancellation, same reply.
    pub deadline: Instant,
    /// Cancellation token the worker threads the engine with. Arm it with
    /// the same instant as `deadline` so queue-expiry and mid-execution
    /// cancellation agree; an unarmed token disables mid-execution
    /// cancellation (and admission control) for this job.
    pub cancel: CancelToken,
    /// Calibrated-cost estimate in engine cycles, filled in by
    /// [`Scheduler::submit`] for SpGEMM jobs (admission control and the
    /// cost-rate EWMA). Constructors pass `None`.
    pub est_cycles: Option<u64>,
    /// Where the worker sends the response.
    pub reply: mpsc::Sender<Response>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    draining: AtomicBool,
    stop: AtomicBool,
    in_flight: AtomicUsize,
    worker_budget: usize,
    engine: EngineConfig,
    stats: Arc<StatsRegistry>,
    faults: Arc<FaultPlan>,
    /// Deepest the queue has ever been (a gauge for the stats response).
    queue_high_water: AtomicUsize,
    /// Overload mode: set when queue depth crosses `hi_watermark`, cleared
    /// when it falls back under `lo_watermark`. Workers read it per job.
    degraded: AtomicBool,
    /// Queue depth that enters degraded mode (3/4 of capacity).
    hi_watermark: usize,
    /// Queue depth that leaves degraded mode (1/4 of capacity).
    lo_watermark: usize,
    /// Observed nanoseconds per estimated engine cycle, as `f64` bits — the
    /// EWMA that converts the mapper's cycle estimates into wall-clock for
    /// admission control. Zero until the first completed SpGEMM.
    ns_per_cycle_bits: AtomicU64,
}

impl Shared {
    fn ns_per_cycle(&self) -> f64 {
        f64::from_bits(self.ns_per_cycle_bits.load(Ordering::Relaxed))
    }

    /// Folds one completed SpGEMM into the cost-rate EWMA. The
    /// read-modify-write is not atomic across workers; a lost update only
    /// skews the average by one sample, which an EWMA absorbs anyway.
    fn observe_cost(&self, est_cycles: u64, exec: Duration) {
        if est_cycles == 0 {
            return;
        }
        let observed = exec.as_nanos() as f64 / est_cycles as f64;
        let prev = self.ns_per_cycle();
        let next = if prev == 0.0 {
            observed
        } else {
            (1.0 - COST_EWMA_ALPHA) * prev + COST_EWMA_ALPHA * observed
        };
        self.ns_per_cycle_bits
            .store(next.to_bits(), Ordering::Relaxed);
    }

    /// Records a post-push queue depth: bumps the high-water gauge and
    /// enters degraded mode at the high watermark.
    fn note_queue_depth(&self, depth: usize) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
        if depth >= self.hi_watermark {
            self.degraded.store(true, Ordering::Relaxed);
        }
    }
}

/// The scheduler handle owned by the server.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` job threads executing under `engine` (per-job
    /// shard workers are clamped to `worker_budget` over the in-flight
    /// count); at most `queue_capacity` jobs wait. `faults` injects worker
    /// panics and latency for chaos testing ([`FaultPlan::none`] in
    /// production).
    pub fn start(
        workers: usize,
        worker_budget: usize,
        queue_capacity: usize,
        engine: EngineConfig,
        stats: Arc<StatsRegistry>,
        faults: Arc<FaultPlan>,
    ) -> Self {
        let capacity = queue_capacity.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity,
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            worker_budget: worker_budget.max(1),
            engine,
            stats,
            faults,
            queue_high_water: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
            hi_watermark: (capacity * 3 / 4).max(1),
            lo_watermark: capacity / 4,
            ns_per_cycle_bits: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Enqueues a job, applying admission control, backpressure, and drain
    /// rejection.
    ///
    /// # Errors
    ///
    /// `overloaded` when the calibrated cost model prices the job's SpGEMM
    /// beyond its remaining deadline (only once a cost rate has been
    /// observed or seeded), `queue_full` when the queue is at capacity,
    /// `draining` once a drain began; the job is returned (boxed, to keep
    /// the `Err` variant small) so the caller can answer its reply channel
    /// (the error carries no channel of its own).
    pub fn submit(&self, job: Job) -> Result<(), (Box<Job>, ErrorCode)> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err((Box::new(job), ErrorCode::Draining));
        }
        let mut job = job;
        if let JobKind::SpGemm { a, b, strategy, .. } = &job.kind {
            job.est_cycles = Some(estimate_cycles(&self.shared.engine, a, b, *strategy));
        }
        // Admission control: once real executions have calibrated the
        // cycles→wall-clock rate, a job that cannot finish inside its
        // deadline is shed now rather than queued to time out later.
        if let (Some(est), Some(remaining)) = (job.est_cycles, job.cancel.remaining()) {
            let rate = self.shared.ns_per_cycle();
            if rate > 0.0 && est as f64 * rate > remaining.as_nanos() as f64 {
                return Err((Box::new(job), ErrorCode::Overloaded));
            }
        }
        let mut queue = lock_recover(&self.shared.queue);
        if queue.len() >= self.shared.capacity {
            return Err((Box::new(job), ErrorCode::QueueFull));
        }
        queue.push_back(job);
        let depth = queue.len();
        drop(queue);
        self.shared.note_queue_depth(depth);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.queue).len()
    }

    /// Jobs currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Deepest the queue has ever been.
    pub fn queue_depth_high_water(&self) -> usize {
        self.shared.queue_high_water.load(Ordering::Relaxed)
    }

    /// Whether the scheduler is in degraded (overload) mode.
    pub fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// Seeds the admission controller's cost rate (observed nanoseconds
    /// per estimated engine cycle) before any traffic has calibrated it.
    /// The EWMA keeps learning from completed jobs afterwards.
    pub fn seed_cost_rate(&self, ns_per_cycle: f64) {
        self.shared
            .ns_per_cycle_bits
            .store(ns_per_cycle.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Begins a graceful drain: new submissions and everything still queued
    /// are answered `draining`; in-flight jobs run to completion.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let rejected: Vec<Job> = {
            let mut queue = lock_recover(&self.shared.queue);
            queue.drain(..).collect()
        };
        for job in rejected {
            self.shared
                .stats
                .record(&job.tenant, Outcome::Rejected, 0, 0);
            let _ = job.reply.send(Response::Error {
                code: ErrorCode::Draining,
                detail: "daemon is draining".to_owned(),
            });
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and joins every worker (idempotent on the drain part).
    pub fn shutdown(mut self) {
        self.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // One accelerator per effective shard-worker setting: the engine config
    // differs, and each keeps its own WorkspacePool warm.
    let mut accels: HashMap<usize, Flexagon> = HashMap::new();
    loop {
        let job = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    // Leaving overload: once depth falls to the low
                    // watermark, jobs get their full budgets back.
                    if queue.len() <= shared.lo_watermark {
                        shared.degraded.store(false, Ordering::Relaxed);
                    }
                    break Some(job);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue =
                    wait_timeout_recover(&shared.available, queue, Duration::from_millis(100)).0;
            }
        };
        let Some(job) = job else { return };
        let started = Instant::now();
        let queue_us = duration_us(started.duration_since(job.enqueued));
        if started > job.deadline || job.cancel.is_cancelled() {
            shared
                .stats
                .record(&job.tenant, Outcome::TimedOut, queue_us, 0);
            let _ = job.reply.send(Response::Error {
                code: ErrorCode::Timeout,
                detail: format!("deadline passed after {queue_us} us in queue"),
            });
            continue;
        }
        let fault = shared.faults.on_job();
        if let Some(delay) = fault.delay {
            // Injected latency lands before execution, outside the panic
            // region — it models a slow job, not a broken one.
            std::thread::sleep(delay);
        }
        let running = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        if fault.stuck {
            // Injected wedge: the worker holds the job "executing" and only
            // the job's cancel token (or daemon stop) reclaims it — the
            // chaos proof that a deadline frees a hostage worker.
            while !job.cancel.is_cancelled() && !shared.stop.load(Ordering::SeqCst) {
                std::thread::sleep(STUCK_POLL);
            }
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            let exec_us = duration_us(started.elapsed());
            shared
                .stats
                .record(&job.tenant, Outcome::Cancelled, queue_us, exec_us);
            let _ = job.reply.send(Response::Error {
                code: ErrorCode::Timeout,
                detail: format!("job wedged (injected fault), reclaimed after {exec_us} us by deadline cancellation"),
            });
            continue;
        }
        let degraded = shared.degraded.load(Ordering::Relaxed);
        let budget = if degraded {
            // Overload: every job runs single-threaded so the pool drains
            // the queue instead of oversubscribing cores.
            1
        } else {
            intra_layer_worker_budget(shared.worker_budget, running)
        };
        let eff_workers = shared.engine.shard_workers.min(budget).max(1);
        let mut engine = shared.engine;
        engine.shard_workers = eff_workers;
        let accel = accels.entry(eff_workers).or_insert_with(|| {
            let mut cfg = AcceleratorConfig::table5();
            cfg.engine = engine;
            Flexagon::new(cfg)
        });
        // Panic isolation: a job that panics — a real engine bug or an
        // injected fault — poisons only its own request. The catch keeps
        // the worker thread alive; `AssertUnwindSafe` is sound because
        // everything the closure touches is discarded on the Err arm
        // (`accels` is cleared below, the job's kind is consumed).
        let mut kind = job.kind;
        if degraded {
            // Overload: the oracle's six-dataflow sweep costs ~6× a single
            // mapped run; force the heuristic's cheapest single mapping.
            if let JobKind::SpGemm { strategy, .. } = &mut kind {
                if *strategy == MappingStrategy::Oracle {
                    *strategy = MappingStrategy::Heuristic;
                }
            }
        }
        let cancel = job.cancel.clone();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if fault.panic {
                panic!("injected worker panic (fault plan)");
            }
            execute(accel, &engine, kind, &cancel)
        }));
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let exec_us = duration_us(started.elapsed());
        let response = match caught {
            Ok(response) => response,
            Err(payload) => {
                // The accelerators' pooled workspaces may be mid-update;
                // drop them all and rebuild lazily on the next job.
                accels.clear();
                shared.stats.record_worker_panic(&job.tenant);
                Response::Error {
                    code: ErrorCode::Engine,
                    detail: format!("job panicked: {}", panic_message(payload.as_ref())),
                }
            }
        };
        let outcome = match &response {
            // A timeout reply from execution means the engine was
            // cooperatively cancelled mid-flight (queue expiry replied
            // above, before running).
            Response::Error {
                code: ErrorCode::Timeout,
                ..
            } => Outcome::Cancelled,
            Response::Error { .. } => Outcome::Failed,
            _ => Outcome::Completed,
        };
        if outcome == Outcome::Completed {
            if let Some(est) = job.est_cycles {
                shared.observe_cost(est, started.elapsed());
            }
        }
        shared.stats.record(&job.tenant, outcome, queue_us, exec_us);
        let response = stamp_timing(response, queue_us, exec_us);
        let _ = job.reply.send(response);
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted message; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Estimates a SpGEMM's engine cycles under `strategy` with the calibrated
/// mapper cost model: the cheapest class for a single mapped run, the sum
/// over all classes (×2 for the M/N variants) for the oracle's sweep.
fn estimate_cycles(
    engine: &EngineConfig,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    strategy: MappingStrategy,
) -> u64 {
    let mut cfg = AcceleratorConfig::table5();
    cfg.engine = *engine;
    let est = CostEstimates::of(&cfg, a, b);
    let cycles = match strategy {
        MappingStrategy::Heuristic => est.inner_product.min(est.outer_product).min(est.gustavson),
        MappingStrategy::Fixed(df) => est.of_class(df.class()),
        MappingStrategy::Oracle => 2.0 * (est.inner_product + est.outer_product + est.gustavson),
    };
    if cycles.is_finite() && cycles > 0.0 {
        cycles as u64
    } else {
        0
    }
}

/// Runs the job body; timing fields are stamped by the caller.
fn execute(
    accel: &Flexagon,
    engine: &EngineConfig,
    kind: JobKind,
    cancel: &CancelToken,
) -> Response {
    match kind {
        JobKind::SpGemm {
            a,
            b,
            strategy,
            format,
            want_output,
        } => {
            let req = ExecutionRequest::new(&a, &b)
                .strategy(strategy)
                .format_choice(format)
                .validated(ValidationConfig::permissive())
                .cancel_token(cancel.clone());
            match accel.execute(req) {
                Ok(ex) => {
                    let out = ex.output;
                    Response::Result(SpGemmResponse {
                        dataflow: ex.dataflow,
                        c_digest: digest_hex(matrix_digest(&out.c)),
                        c: want_output.then_some(out.c),
                        report: out.report.to_value(),
                        queue_us: 0,
                        exec_us: 0,
                    })
                }
                Err(CoreError::DeadlineExceeded) => Response::Error {
                    code: ErrorCode::Timeout,
                    detail: "deadline passed mid-execution; engine cancelled at a band/tile \
                             boundary"
                        .to_owned(),
                },
                Err(e) => Response::Error {
                    code: ErrorCode::Engine,
                    detail: e.to_string(),
                },
            }
        }
        JobKind::Model {
            model,
            strategy,
            format,
            seed,
        } => {
            let mut engine = *engine;
            if let FormatChoice::Fixed(f) = format {
                engine.format = f;
            }
            let opts = RunOptions {
                strategy,
                engine,
                layer_parallel: false,
            };
            let results = runner::run_model_opts(&model, seed, &opts, false);
            Response::ModelResult(ModelResponse {
                results: results.to_value(),
                queue_us: 0,
                exec_us: 0,
            })
        }
    }
}

fn stamp_timing(response: Response, queue_us: u64, exec_us: u64) -> Response {
    match response {
        Response::Result(mut r) => {
            r.queue_us = queue_us;
            r.exec_us = exec_us;
            Response::Result(r)
        }
        Response::ModelResult(mut r) => {
            r.queue_us = queue_us;
            r.exec_us = exec_us;
            Response::ModelResult(r)
        }
        other => other,
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Resolves both operands of a SpGEMM request against the cache.
///
/// Inline operands are held to [`ValidationConfig::untrusted`] before
/// touching the cache — structure was already enforced when the bytes
/// decoded, so this layer adds the network-facing policy: no non-finite
/// values, no resource-bomb dimensions. Cached operands passed the same
/// gate when they were inserted.
///
/// # Errors
///
/// A `(code, detail)` pair for missing operands, invalid operands, or
/// unknown identities.
pub fn resolve_operands(
    cache: &OperandCache,
    a: Option<CompressedMatrix>,
    a_id: Option<&str>,
    b: Option<CompressedMatrix>,
    b_id: Option<&str>,
) -> Result<(Arc<CompressedMatrix>, Arc<CompressedMatrix>), (ErrorCode, String)> {
    let resolve_one = |name: &str,
                       inline: Option<CompressedMatrix>,
                       id: Option<&str>|
     -> Result<Arc<CompressedMatrix>, (ErrorCode, String)> {
        if inline.is_none() && id.is_none() {
            return Err((
                ErrorCode::BadRequest,
                format!("operand {name} needs '{name}' bytes or an '{name}_id'"),
            ));
        }
        if let Some(m) = &inline {
            validate_matrix(m, &ValidationConfig::untrusted())
                .map_err(|e| (ErrorCode::InvalidOperand, format!("operand {name}: {e}")))?;
        }
        cache.resolve(id, inline).map(|(m, _)| m).map_err(|u| {
            (
                ErrorCode::UnknownMatrix,
                format!("operand {name}: no cached matrix under id '{}'", u.0),
            )
        })
    };
    Ok((resolve_one("a", a, a_id)?, resolve_one("b", b, b_id)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::MajorOrder;

    fn mat(seed: u64) -> CompressedMatrix {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        flexagon_sparse::gen::random(24, 24, 0.35, MajorOrder::Row, &mut rng)
    }

    fn spgemm_job_with_deadline(
        tenant: &str,
        budget: Duration,
        reply: mpsc::Sender<Response>,
    ) -> Job {
        let deadline = Instant::now() + budget;
        Job {
            tenant: tenant.to_owned(),
            kind: JobKind::SpGemm {
                a: Arc::new(mat(1)),
                b: Arc::new(mat(2)),
                strategy: MappingStrategy::Heuristic,
                format: FormatChoice::Config,
                want_output: false,
            },
            enqueued: Instant::now(),
            deadline,
            cancel: CancelToken::with_deadline(deadline),
            est_cycles: None,
            reply,
        }
    }

    fn spgemm_job(tenant: &str, reply: mpsc::Sender<Response>) -> Job {
        spgemm_job_with_deadline(tenant, Duration::from_secs(30), reply)
    }

    #[test]
    fn jobs_complete_and_record_stats() {
        let stats = Arc::new(StatsRegistry::new());
        let sched = Scheduler::start(
            2,
            2,
            8,
            EngineConfig::default(),
            Arc::clone(&stats),
            Arc::new(FaultPlan::none()),
        );
        let (tx, rx) = mpsc::channel();
        sched.submit(spgemm_job("t", tx)).unwrap();
        let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(matches!(resp, Response::Result(_)));
        sched.shutdown();
    }

    #[test]
    fn injected_panic_poisons_one_job_and_the_worker_survives() {
        let stats = Arc::new(StatsRegistry::new());
        // One worker, panic on every 2nd job: the pool has no spare thread
        // to hide behind — the same worker must answer job 3.
        let faults = Arc::new(FaultPlan::new(
            crate::fault::FaultSpec::parse("panic=2").unwrap(),
        ));
        let sched = Scheduler::start(1, 1, 8, EngineConfig::default(), Arc::clone(&stats), faults);
        let mut responses = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = mpsc::channel();
            sched.submit(spgemm_job("t", tx)).unwrap();
            responses.push(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        assert!(matches!(responses[0], Response::Result(_)));
        assert!(
            matches!(
                &responses[1],
                Response::Error {
                    code: ErrorCode::Engine,
                    detail,
                } if detail.contains("panicked")
            ),
            "got {:?}",
            responses[1]
        );
        assert!(
            matches!(responses[2], Response::Result(_)),
            "worker must survive the panic and serve the next job"
        );
        // The first and third jobs are identical: the rebuilt accelerator
        // must produce the identical digest.
        let (Response::Result(first), Response::Result(third)) = (&responses[0], &responses[2])
        else {
            unreachable!()
        };
        assert_eq!(first.c_digest, third.c_digest);
        assert_eq!(sched.in_flight(), 0, "panic path decrements in_flight");
        sched.shutdown();
    }

    #[test]
    fn invalid_inline_operand_is_rejected_at_resolve() {
        let cache = OperandCache::new(1 << 20);
        let inf = CompressedMatrix::from_triplets(2, 2, &[(0, 0, f32::INFINITY)], MajorOrder::Row)
            .unwrap();
        let err = resolve_operands(&cache, Some(inf), None, Some(mat(1)), None).unwrap_err();
        assert_eq!(err.0, ErrorCode::InvalidOperand);
        assert!(err.1.contains("operand a"));
    }

    #[test]
    fn expired_deadline_is_rejected_without_running() {
        let stats = Arc::new(StatsRegistry::new());
        let sched = Scheduler::start(
            1,
            1,
            8,
            EngineConfig::default(),
            Arc::clone(&stats),
            Arc::new(FaultPlan::none()),
        );
        let (tx, rx) = mpsc::channel();
        let mut job = spgemm_job("t", tx);
        job.deadline = Instant::now() - Duration::from_millis(1);
        sched.submit(job).unwrap();
        let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Timeout,
                    ..
                }
            ),
            "got {resp:?}"
        );
        sched.shutdown();
    }

    #[test]
    fn stuck_job_is_reclaimed_within_twice_its_deadline() {
        let stats = Arc::new(StatsRegistry::new());
        // Every job wedges; only the cancel token can free the worker.
        let faults = Arc::new(FaultPlan::new(
            crate::fault::FaultSpec::parse("stuck=1").unwrap(),
        ));
        let sched = Scheduler::start(1, 1, 8, EngineConfig::default(), Arc::clone(&stats), faults);
        let deadline = Duration::from_millis(100);
        let (tx, rx) = mpsc::channel();
        let submitted = Instant::now();
        sched
            .submit(spgemm_job_with_deadline("t", deadline, tx))
            .unwrap();
        // The typed timeout must arrive within 2× the deadline — the wedged
        // worker is reclaimed by cancellation, not by finishing.
        let resp = rx
            .recv_timeout(deadline * 2)
            .expect("reply within 2x deadline");
        assert!(
            submitted.elapsed() >= deadline,
            "a stuck job cannot finish before its deadline"
        );
        assert!(
            matches!(
                &resp,
                Response::Error {
                    code: ErrorCode::Timeout,
                    detail,
                } if detail.contains("wedged")
            ),
            "got {resp:?}"
        );
        // Worker reclaimed: in-flight returns to zero promptly.
        let freed = Instant::now();
        while sched.in_flight() != 0 {
            assert!(
                freed.elapsed() < Duration::from_secs(5),
                "in_flight never returned to 0"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        sched.shutdown();
    }

    #[test]
    fn mid_execution_deadline_cancels_the_engine() {
        let stats = Arc::new(StatsRegistry::new());
        // Every job sleeps 60 ms before executing: a 20 ms deadline is
        // alive at pickup but fires during execution, so the reply must
        // come from the engine's cooperative cancellation path.
        let faults = Arc::new(FaultPlan::new(
            crate::fault::FaultSpec::parse("slow=1:60").unwrap(),
        ));
        let sched = Scheduler::start(1, 1, 8, EngineConfig::default(), Arc::clone(&stats), faults);
        let (tx, rx) = mpsc::channel();
        sched
            .submit(spgemm_job_with_deadline("t", Duration::from_millis(20), tx))
            .unwrap();
        let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    code: ErrorCode::Timeout,
                    detail,
                } if detail.contains("mid-execution")
            ),
            "got {resp:?}"
        );
        sched.shutdown();
    }

    #[test]
    fn admission_control_sheds_infeasible_deadlines() {
        let stats = Arc::new(StatsRegistry::new());
        let sched = Scheduler::start(
            1,
            1,
            8,
            EngineConfig::default(),
            Arc::clone(&stats),
            Arc::new(FaultPlan::none()),
        );
        // With no observed rate, everything is admitted.
        let (tx, rx) = mpsc::channel();
        sched
            .submit(spgemm_job_with_deadline("t", Duration::from_millis(50), tx))
            .unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            Response::Result(_)
                | Response::Error {
                    code: ErrorCode::Timeout,
                    ..
                }
        ));
        // Seed an absurd rate (1 ms per estimated cycle): no realistic
        // deadline is feasible, so admission must shed with `overloaded`.
        sched.seed_cost_rate(1_000_000.0);
        let (tx, rx) = mpsc::channel();
        let err = sched
            .submit(spgemm_job_with_deadline("t", Duration::from_millis(50), tx))
            .unwrap_err();
        assert_eq!(err.1, ErrorCode::Overloaded);
        drop(err);
        assert!(rx.try_recv().is_err(), "shed submit sends no reply");
        // An unarmed token opts out of admission control entirely.
        let (tx, rx) = mpsc::channel();
        let mut job = spgemm_job("t", tx);
        job.cancel = CancelToken::never();
        sched.submit(job).unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            Response::Result(_)
        ));
        sched.shutdown();
    }

    #[test]
    fn overload_watermarks_enter_and_leave_degraded_mode() {
        let stats = Arc::new(StatsRegistry::new());
        // Every job sleeps 30 ms, so eight rapid submits pile the queue
        // past the high watermark (capacity 8 → hi 6) behind one worker.
        let faults = Arc::new(FaultPlan::new(
            crate::fault::FaultSpec::parse("slow=1:30").unwrap(),
        ));
        let sched = Scheduler::start(1, 1, 8, EngineConfig::default(), Arc::clone(&stats), faults);
        let mut replies = Vec::new();
        for _ in 0..8 {
            let (tx, rx) = mpsc::channel();
            sched.submit(spgemm_job("t", tx)).unwrap();
            replies.push(rx);
        }
        assert!(sched.degraded(), "queue past hi watermark → degraded");
        assert!(sched.queue_depth_high_water() >= 6);
        for rx in replies {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(30)).unwrap(),
                Response::Result(_)
            ));
        }
        assert!(
            !sched.degraded(),
            "drained below lo watermark → degraded cleared"
        );
        sched.shutdown();
    }

    #[test]
    fn draining_rejects_new_and_queued_jobs() {
        let stats = Arc::new(StatsRegistry::new());
        let sched = Scheduler::start(
            1,
            1,
            8,
            EngineConfig::default(),
            Arc::clone(&stats),
            Arc::new(FaultPlan::none()),
        );
        sched.begin_drain();
        let (tx, rx) = mpsc::channel();
        let err = sched.submit(spgemm_job("t", tx)).unwrap_err();
        assert_eq!(err.1, ErrorCode::Draining);
        drop(err);
        assert!(rx.try_recv().is_err(), "rejected submit sends no reply");
        sched.shutdown();
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let stats = Arc::new(StatsRegistry::new());
        // No capacity headroom: one queued job is the limit, and no worker
        // drains it because the queue is saturated before workers start...
        // workers do start, so use capacity 1 and check the error path by
        // submitting faster than a single worker can drain.
        let sched = Scheduler::start(
            1,
            1,
            1,
            EngineConfig::default(),
            Arc::clone(&stats),
            Arc::new(FaultPlan::none()),
        );
        let (tx, _rx) = mpsc::channel();
        let mut saw_full = false;
        for _ in 0..64 {
            if let Err((_, code)) = sched.submit(spgemm_job("t", tx.clone())) {
                assert_eq!(code, ErrorCode::QueueFull);
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "64 rapid submits never hit a capacity-1 queue");
        sched.shutdown();
    }
}
