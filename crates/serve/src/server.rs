//! The daemon: accept loop, connection handling, and lifecycle.
//!
//! One thread accepts (non-blocking, polled so shutdown is prompt), one
//! thread per connection speaks the frame protocol, and the scheduler's
//! worker pool executes jobs. Connection threads resolve operands against
//! the shared cache, submit to the scheduler, and relay the reply — so a
//! slow job never blocks frame parsing on *other* connections, and a
//! client disconnecting mid-request only kills its own relay (the job
//! still completes; the send into the closed channel is discarded).

use crate::cache::OperandCache;
use crate::fault::FaultPlan;
use crate::net::{Listener, Stream};
use crate::protocol::{
    parse_request, write_message, ErrorCode, FrameEvent, FrameReader, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use crate::scheduler::{resolve_operands, Job, JobKind, Scheduler};
use crate::stats::StatsRegistry;
use flexagon_core::{EngineConfig, FormatChoice};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address: `host:port` or `unix:<path>` (port `0` = ephemeral).
    pub addr: String,
    /// Scheduler worker threads (concurrent jobs).
    pub workers: usize,
    /// Total intra-layer shard-thread budget shared by in-flight jobs
    /// (see `intra_layer_worker_budget`).
    pub worker_budget: usize,
    /// Queued-job capacity before `queue_full` backpressure.
    pub queue_capacity: usize,
    /// Engine template for every job (grain, shard workers, thresholds).
    pub engine: EngineConfig,
    /// Operand-cache byte budget.
    pub cache_budget_bytes: u64,
    /// Per-frame payload ceiling.
    pub max_frame_bytes: u64,
    /// Default end-to-end deadline (queue wait + execution) for requests
    /// that set no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Fault-injection plan for chaos testing ([`FaultPlan::none`] in
    /// production — one relaxed atomic load per job/frame when empty).
    pub faults: Arc<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            worker_budget: std::thread::available_parallelism().map_or(2, usize::from),
            queue_capacity: 64,
            engine: EngineConfig::default(),
            cache_budget_bytes: 256 << 20,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_timeout_ms: 30_000,
            faults: Arc::new(FaultPlan::none()),
        }
    }
}

struct ServerShared {
    scheduler: Scheduler,
    cache: OperandCache,
    stats: Arc<StatsRegistry>,
    stop_accept: AtomicBool,
    drain_requested: AtomicBool,
    open_connections: AtomicUsize,
    max_frame_bytes: u64,
    default_timeout: Duration,
    faults: Arc<FaultPlan>,
}

/// A running daemon (in-process handle).
pub struct Server {
    shared: Arc<ServerShared>,
    addr: String,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = Listener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.display_addr();
        let stats = Arc::new(StatsRegistry::new());
        let shared = Arc::new(ServerShared {
            scheduler: Scheduler::start(
                cfg.workers,
                cfg.worker_budget,
                cfg.queue_capacity,
                cfg.engine,
                Arc::clone(&stats),
                Arc::clone(&cfg.faults),
            ),
            cache: OperandCache::new(cfg.cache_budget_bytes),
            stats,
            stop_accept: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            max_frame_bytes: cfg.max_frame_bytes,
            default_timeout: Duration::from_millis(cfg.default_timeout_ms.max(1)),
            faults: cfg.faults,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Self {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The resolved address clients should dial.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Begins a graceful drain (idempotent): queued jobs are rejected,
    /// in-flight jobs finish, new connections are turned away.
    pub fn begin_drain(&self) {
        self.shared.drain_requested.store(true, Ordering::SeqCst);
        self.shared.scheduler.begin_drain();
    }

    /// Whether a drain was requested — by [`Server::begin_drain`] or by a
    /// client's `shutdown` request. The daemon binary polls this to exit.
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    /// Drains, stops accepting, and joins the accept thread and worker
    /// pool. Connection threads exit on their own once their clients
    /// observe the drain; this does not wait for them.
    pub fn shutdown(mut self) {
        self.begin_drain();
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // The scheduler handle lives inside `shared`; draining again is
        // idempotent and the workers exit once the queue is empty. Joining
        // them requires ownership, so wait for the in-flight count instead.
        while self.shared.scheduler.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_drain();
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<ServerShared>) {
    while !shared.stop_accept.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let conn_shared = Arc::clone(shared);
                conn_shared.open_connections.fetch_add(1, Ordering::SeqCst);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || {
                        connection_loop(stream, &conn_shared);
                        conn_shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn connection_loop(mut stream: Stream, shared: &Arc<ServerShared>) {
    // Periodic read timeouts let the loop observe shutdown between frames.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = FrameReader::new(shared.max_frame_bytes);
    loop {
        let event = match reader.read(&mut stream) {
            Ok(ev) => ev,
            Err(_) => return, // connection-level I/O failure: drop it
        };
        let payload = match event {
            FrameEvent::Frame(mut p) => {
                // Chaos injection point: corrupting here, after framing but
                // before parsing, models bit-rot on the wire. Corrupted
                // bytes are never valid UTF-8, so the parse below answers a
                // typed `bad_request` and the connection stays usable.
                shared.faults.corrupt_frame(&mut p);
                p
            }
            FrameEvent::Timeout => {
                if shared.stop_accept.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            FrameEvent::Closed { .. } => return,
            FrameEvent::TooLarge(len) => {
                // The framing boundary is lost: report and hang up.
                shared.stats.record_bad_frame();
                let _ = write_message(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        detail: format!(
                            "frame of {len} bytes exceeds the {} byte limit",
                            shared.max_frame_bytes
                        ),
                    },
                );
                return;
            }
        };
        let request = match parse_request(&payload) {
            Ok(r) => r,
            Err((code, detail)) => {
                // Malformed payload inside an intact frame: the boundary is
                // sound, so answer the error and keep the connection.
                shared.stats.record_bad_frame();
                if write_message(&mut stream, &Response::Error { code, detail }).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = handle_request(shared, request);
        if write_message(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Arc<ServerShared>, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats.snapshot(
            crate::stats::Gauges {
                queue_depth: shared.scheduler.queue_depth(),
                in_flight: shared.scheduler.in_flight(),
                queue_depth_high_water: shared.scheduler.queue_depth_high_water(),
                degraded: shared.scheduler.degraded(),
            },
            shared.cache.stats(),
            shared.faults.injected(),
        )),
        Request::Shutdown => {
            shared.drain_requested.store(true, Ordering::SeqCst);
            shared.scheduler.begin_drain();
            Response::Ok
        }
        Request::SpGemm(r) => {
            // The pinned format joins the operand-cache identity: a request
            // pinning `bcsr4` stages its operands differently than the
            // `soa` default, so cached state (the memoized transpose plan
            // in particular) is never shared across format-distinct request
            // streams. Default-format requests keep their bare ids — the
            // pre-format cache behavior is unchanged.
            let a_key = cache_key(r.a_id.as_deref(), r.format);
            let b_key = cache_key(r.b_id.as_deref(), r.format);
            let (a, b) =
                match resolve_operands(&shared.cache, r.a, a_key.as_deref(), r.b, b_key.as_deref())
                {
                    Ok(ops) => ops,
                    Err((code, detail)) => return Response::Error { code, detail },
                };
            submit_and_wait(
                shared,
                r.tenant,
                r.timeout_ms,
                JobKind::SpGemm {
                    a,
                    b,
                    strategy: r.strategy,
                    format: r.format,
                    want_output: r.want_output,
                },
            )
        }
        Request::Model(r) => {
            if r.format == FormatChoice::Auto {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    detail: "format 'auto' is spgemm-only; pin a format token (soa, bcsr4, \
                             bcsr8, ell, q8) for model runs"
                        .to_owned(),
                };
            }
            let Some(model) = flexagon_dnn::suite().into_iter().find(|m| {
                m.short.eq_ignore_ascii_case(&r.model) || m.name.eq_ignore_ascii_case(&r.model)
            }) else {
                return Response::Error {
                    code: ErrorCode::UnknownModel,
                    detail: format!("no suite model named '{}'", r.model),
                };
            };
            submit_and_wait(
                shared,
                r.tenant,
                r.timeout_ms,
                JobKind::Model {
                    model,
                    strategy: r.strategy,
                    format: r.format,
                    seed: r.seed,
                },
            )
        }
    }
}

/// Suffixes a client-chosen operand identity with the non-default format
/// token (`weights` pinned to bcsr4 resolves as `weights#bcsr4`).
fn cache_key(id: Option<&str>, format: FormatChoice) -> Option<String> {
    id.map(|id| match format {
        FormatChoice::Config => id.to_owned(),
        other => format!("{id}#{other}"),
    })
}

fn submit_and_wait(
    shared: &Arc<ServerShared>,
    tenant: String,
    timeout_ms: Option<u64>,
    kind: JobKind,
) -> Response {
    let timeout = timeout_ms.map_or(shared.default_timeout, |ms| {
        Duration::from_millis(ms.max(1))
    });
    let now = Instant::now();
    let deadline = now + timeout;
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        tenant: tenant.clone(),
        kind,
        enqueued: now,
        deadline,
        // The end-to-end deadline, as a token: the scheduler hands it to
        // the worker, which threads it through the engine — a job still
        // executing at the deadline is cooperatively cancelled.
        cancel: flexagon_core::CancelToken::with_deadline(deadline),
        est_cycles: None,
        reply: reply_tx,
    };
    if let Err((_, code)) = shared.scheduler.submit(job) {
        let (outcome, detail) = match code {
            ErrorCode::QueueFull => (
                crate::stats::Outcome::Rejected,
                "job queue is full — retry with backoff".to_owned(),
            ),
            ErrorCode::Overloaded => (
                crate::stats::Outcome::Shed,
                "admission control: estimated cost exceeds the deadline at current load — \
                 retry with backoff or a longer timeout_ms"
                    .to_owned(),
            ),
            _ => (
                crate::stats::Outcome::Rejected,
                "daemon is draining".to_owned(),
            ),
        };
        shared.stats.record(&tenant, outcome, 0, 0);
        return Response::Error { code, detail };
    }
    // The worker always answers: result, engine error, timeout, or drain
    // rejection — normally within the deadline (cancellation fires at the
    // next engine boundary). The response window is a backstop well past
    // 2× the deadline: if even cancellation could not reclaim the worker,
    // answer typed instead of hanging the connection forever.
    let response_window = timeout
        .saturating_mul(2)
        .saturating_add(Duration::from_secs(5));
    match reply_rx.recv_timeout(response_window) {
        Ok(resp) => resp,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            shared
                .stats
                .record(&tenant, crate::stats::Outcome::TimedOut, 0, 0);
            Response::Error {
                code: ErrorCode::Timeout,
                detail: format!(
                    "no worker response within the {} ms response window",
                    response_window.as_millis()
                ),
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Response::Error {
            code: ErrorCode::Internal,
            detail: "worker disappeared before answering".to_owned(),
        },
    }
}
