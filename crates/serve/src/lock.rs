//! Poison-recovering mutex helpers.
//!
//! The daemon's shared state (stats registry, operand cache, job queue)
//! holds only counters, maps and queues whose invariants are re-established
//! before every unlock — no guard ever leaves them mid-update across a
//! call that can panic. Mutex poisoning therefore carries no information
//! here: a worker that panicked mid-job (now caught and isolated) must not
//! wedge the stats lock for every other connection forever. These helpers
//! take the lock and discard the poison flag instead of propagating it.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard on poison.
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(41u32);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned());
        let mut g = lock_recover(&m);
        *g += 1;
        assert_eq!(*g, 42);
    }

    #[test]
    fn wait_timeout_recovers() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = lock_recover(&m);
        let (_g, timed_out) = wait_timeout_recover(&cv, g, Duration::from_millis(1));
        assert!(timed_out.timed_out());
    }
}
