//! Per-tenant and daemon-wide serving statistics.
//!
//! Each tenant accumulates outcome counters and a bounded ring of recent
//! end-to-end latencies (queue wait + execution). Percentiles are
//! nearest-rank over that window — an SLO dashboard's view of "recent"
//! traffic, not an all-time average that old warm-up samples would skew.
//! The registry is lock-per-snapshot; recording is a few integer writes
//! under a mutex, far below the cost of the jobs being measured.

use crate::fault::InjectionCounts;
use crate::lock::lock_recover;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Latency samples retained per tenant (ring buffer capacity).
pub const LATENCY_WINDOW: usize = 4096;

/// How one request ended, for the outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed and answered with a result.
    Completed,
    /// Rejected because its deadline passed while queued.
    TimedOut,
    /// Cancelled mid-execution (or mid-wedge) by its deadline — the job
    /// held a worker before the token reclaimed it.
    Cancelled,
    /// Rejected by queue backpressure or drain.
    Rejected,
    /// Shed by admission control: its deadline was priced infeasible.
    Shed,
    /// The engine refused the job (bad operands and the like).
    Failed,
}

/// Scheduler gauges sampled by the caller at snapshot time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Deepest the queue has ever been.
    pub queue_depth_high_water: usize,
    /// Whether the scheduler is in degraded (overload) mode.
    pub degraded: bool,
}

/// Bounded ring of latency samples with nearest-rank percentiles.
#[derive(Debug)]
struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyWindow {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, us: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    /// Nearest-rank percentile (`p` in 0..=100) over the window.
    fn percentile(&self, p: u64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p as usize * sorted.len()).div_ceil(100)).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[derive(Debug)]
struct TenantStats {
    completed: u64,
    timed_out: u64,
    cancelled: u64,
    rejected: u64,
    shed: u64,
    failed: u64,
    worker_panics: u64,
    queue_us_total: u64,
    exec_us_total: u64,
    latency: LatencyWindow,
}

impl TenantStats {
    fn new() -> Self {
        Self {
            completed: 0,
            timed_out: 0,
            cancelled: 0,
            rejected: 0,
            shed: 0,
            failed: 0,
            worker_panics: 0,
            queue_us_total: 0,
            exec_us_total: 0,
            latency: LatencyWindow::new(),
        }
    }
}

/// The daemon's statistics registry.
#[derive(Debug)]
pub struct StatsRegistry {
    started: Instant,
    tenants: Mutex<BTreeMap<String, TenantStats>>,
    bad_frames: Mutex<u64>,
}

impl StatsRegistry {
    /// Creates an empty registry; throughput is measured from this instant.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            tenants: Mutex::new(BTreeMap::new()),
            bad_frames: Mutex::new(0),
        }
    }

    /// Records one finished request. Latency (queue + exec) feeds the
    /// percentile window only for completed requests — a timeout's "latency"
    /// is its deadline, which would just echo the configuration back.
    pub fn record(&self, tenant: &str, outcome: Outcome, queue_us: u64, exec_us: u64) {
        let mut tenants = lock_recover(&self.tenants);
        let t = tenants
            .entry(tenant.to_owned())
            .or_insert_with(TenantStats::new);
        match outcome {
            Outcome::Completed => {
                t.completed += 1;
                t.queue_us_total += queue_us;
                t.exec_us_total += exec_us;
                t.latency.push(queue_us + exec_us);
            }
            Outcome::TimedOut => t.timed_out += 1,
            Outcome::Cancelled => t.cancelled += 1,
            Outcome::Rejected => t.rejected += 1,
            Outcome::Shed => t.shed += 1,
            Outcome::Failed => t.failed += 1,
        }
    }

    /// Counts one malformed/oversized frame (not attributable to a tenant).
    pub fn record_bad_frame(&self) {
        *lock_recover(&self.bad_frames) += 1;
    }

    /// Counts one caught worker panic against `tenant` — the job whose
    /// execution panicked; the tenant also receives a `Failed` outcome via
    /// the ordinary [`StatsRegistry::record`] path.
    pub fn record_worker_panic(&self, tenant: &str) {
        let mut tenants = lock_recover(&self.tenants);
        tenants
            .entry(tenant.to_owned())
            .or_insert_with(TenantStats::new)
            .worker_panics += 1;
    }

    /// Builds the `stats` response payload. `gauges` is sampled by the
    /// caller from the scheduler, `cache` is the operand cache's counters,
    /// `faults` is the fault plan's injection tally (all zero in
    /// production).
    pub fn snapshot(
        &self,
        gauges: Gauges,
        cache: crate::cache::CacheStats,
        faults: InjectionCounts,
    ) -> Value {
        let uptime = self.started.elapsed();
        let uptime_s = uptime.as_secs_f64().max(1e-9);
        let tenants = lock_recover(&self.tenants);
        let mut tenant_entries: Vec<(String, Value)> = Vec::new();
        let mut total_completed = 0u64;
        let mut total_cancelled = 0u64;
        let mut total_shed = 0u64;
        let mut total_panics = 0u64;
        for (name, t) in tenants.iter() {
            total_completed += t.completed;
            total_cancelled += t.cancelled;
            total_shed += t.shed;
            total_panics += t.worker_panics;
            let mut m: Vec<(String, Value)> = vec![
                ("completed".into(), Value::UInt(t.completed)),
                ("timed_out".into(), Value::UInt(t.timed_out)),
                ("cancelled".into(), Value::UInt(t.cancelled)),
                ("rejected".into(), Value::UInt(t.rejected)),
                ("shed".into(), Value::UInt(t.shed)),
                ("failed".into(), Value::UInt(t.failed)),
                (
                    "throughput_rps".into(),
                    Value::Float(t.completed as f64 / uptime_s),
                ),
                ("queue_us_total".into(), Value::UInt(t.queue_us_total)),
                ("exec_us_total".into(), Value::UInt(t.exec_us_total)),
            ];
            if let (Some(p50), Some(p99)) = (t.latency.percentile(50), t.latency.percentile(99)) {
                m.push(("p50_us".into(), Value::UInt(p50)));
                m.push(("p99_us".into(), Value::UInt(p99)));
            }
            // Emitted only when nonzero: a healthy tenant's entry is
            // unchanged, and a nonzero count is loud.
            if t.worker_panics > 0 {
                m.push(("worker_panics".into(), Value::UInt(t.worker_panics)));
            }
            tenant_entries.push((name.clone(), Value::Map(m)));
        }
        let hit_rate = {
            let looked = cache.hits + cache.misses;
            if looked == 0 {
                0.0
            } else {
                cache.hits as f64 / looked as f64
            }
        };
        Value::Map(vec![
            ("uptime_ms".into(), Value::UInt(uptime.as_millis() as u64)),
            ("queue_depth".into(), Value::UInt(gauges.queue_depth as u64)),
            ("in_flight".into(), Value::UInt(gauges.in_flight as u64)),
            (
                "queue_depth_high_water".into(),
                Value::UInt(gauges.queue_depth_high_water as u64),
            ),
            ("degraded".into(), Value::Bool(gauges.degraded)),
            ("completed".into(), Value::UInt(total_completed)),
            ("cancelled".into(), Value::UInt(total_cancelled)),
            ("shed".into(), Value::UInt(total_shed)),
            ("worker_panics".into(), Value::UInt(total_panics)),
            (
                "bad_frames".into(),
                Value::UInt(*lock_recover(&self.bad_frames)),
            ),
            (
                "faults".into(),
                Value::Map(vec![
                    ("panics".into(), Value::UInt(faults.panics)),
                    ("slow_jobs".into(), Value::UInt(faults.slow_jobs)),
                    (
                        "corrupted_frames".into(),
                        Value::UInt(faults.corrupted_frames),
                    ),
                    ("stuck_jobs".into(), Value::UInt(faults.stuck_jobs)),
                ]),
            ),
            (
                "cache".into(),
                Value::Map(vec![
                    ("hits".into(), Value::UInt(cache.hits)),
                    ("misses".into(), Value::UInt(cache.misses)),
                    ("evictions".into(), Value::UInt(cache.evictions)),
                    ("resident_bytes".into(), Value::UInt(cache.resident_bytes)),
                    ("entries".into(), Value::UInt(cache.entries)),
                    ("hit_rate".into(), Value::Float(hit_rate)),
                ]),
            ),
            ("tenants".into(), Value::Map(tenant_entries)),
        ])
    }
}

impl Default for StatsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut w = LatencyWindow::new();
        for v in 1..=100 {
            w.push(v);
        }
        assert_eq!(w.percentile(50), Some(50));
        assert_eq!(w.percentile(99), Some(99));
        assert_eq!(w.percentile(100), Some(100));
        assert_eq!(w.percentile(0), Some(1));
    }

    #[test]
    fn window_is_bounded() {
        let mut w = LatencyWindow::new();
        for v in 0..(LATENCY_WINDOW as u64 * 2) {
            w.push(v);
        }
        assert_eq!(w.samples.len(), LATENCY_WINDOW);
        // Only the most recent LATENCY_WINDOW samples remain.
        assert_eq!(w.percentile(0), Some(LATENCY_WINDOW as u64));
    }

    #[test]
    fn worker_panics_surface_per_tenant_and_globally() {
        let reg = StatsRegistry::new();
        reg.record("victim", Outcome::Failed, 5, 5);
        reg.record_worker_panic("victim");
        reg.record("healthy", Outcome::Completed, 5, 5);
        let snap = reg.snapshot(
            Gauges::default(),
            crate::cache::CacheStats::default(),
            InjectionCounts::default(),
        );
        let m = snap.as_map().unwrap();
        assert_eq!(
            serde::map_get(m, "worker_panics").unwrap().as_u64(),
            Some(1)
        );
        let tenants = serde::map_get(m, "tenants").unwrap().as_map().unwrap();
        let victim = serde::map_get(tenants, "victim").unwrap().as_map().unwrap();
        assert_eq!(
            serde::map_get(victim, "worker_panics").unwrap().as_u64(),
            Some(1)
        );
        let healthy = serde::map_get(tenants, "healthy")
            .unwrap()
            .as_map()
            .unwrap();
        assert!(
            serde::map_get(healthy, "worker_panics").is_err(),
            "zero panics emit no field"
        );
    }

    #[test]
    fn cancelled_shed_and_fault_counts_surface() {
        let reg = StatsRegistry::new();
        reg.record("a", Outcome::Cancelled, 10, 100);
        reg.record("a", Outcome::Shed, 0, 0);
        reg.record("b", Outcome::Cancelled, 10, 100);
        let snap = reg.snapshot(
            Gauges::default(),
            crate::cache::CacheStats::default(),
            InjectionCounts {
                panics: 1,
                slow_jobs: 2,
                corrupted_frames: 3,
                stuck_jobs: 4,
            },
        );
        let m = snap.as_map().unwrap();
        assert_eq!(serde::map_get(m, "cancelled").unwrap().as_u64(), Some(2));
        assert_eq!(serde::map_get(m, "shed").unwrap().as_u64(), Some(1));
        let faults = serde::map_get(m, "faults").unwrap().as_map().unwrap();
        assert_eq!(
            serde::map_get(faults, "stuck_jobs").unwrap().as_u64(),
            Some(4)
        );
        let tenants = serde::map_get(m, "tenants").unwrap().as_map().unwrap();
        let a = serde::map_get(tenants, "a").unwrap().as_map().unwrap();
        assert_eq!(serde::map_get(a, "cancelled").unwrap().as_u64(), Some(1));
        assert_eq!(serde::map_get(a, "shed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn registry_survives_a_poisoned_lock() {
        let reg = std::sync::Arc::new(StatsRegistry::new());
        let poisoner = std::sync::Arc::clone(&reg);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.tenants.lock().unwrap();
            panic!("poison the stats lock");
        })
        .join();
        assert!(reg.tenants.is_poisoned());
        reg.record("t", Outcome::Completed, 1, 1);
        let snap = reg.snapshot(
            Gauges::default(),
            crate::cache::CacheStats::default(),
            InjectionCounts::default(),
        );
        let m = snap.as_map().unwrap();
        assert_eq!(serde::map_get(m, "completed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn snapshot_reports_tenants_and_cache() {
        let reg = StatsRegistry::new();
        reg.record("alice", Outcome::Completed, 10, 90);
        reg.record("alice", Outcome::Completed, 20, 80);
        reg.record("bob", Outcome::TimedOut, 0, 0);
        reg.record_bad_frame();
        let snap = reg.snapshot(
            Gauges {
                queue_depth: 3,
                in_flight: 1,
                queue_depth_high_water: 5,
                degraded: true,
            },
            crate::cache::CacheStats::default(),
            InjectionCounts::default(),
        );
        let m = snap.as_map().unwrap();
        assert_eq!(serde::map_get(m, "queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(
            serde::map_get(m, "queue_depth_high_water")
                .unwrap()
                .as_u64(),
            Some(5)
        );
        assert_eq!(serde::map_get(m, "degraded").unwrap().as_bool(), Some(true));
        assert_eq!(serde::map_get(m, "bad_frames").unwrap().as_u64(), Some(1));
        let tenants = serde::map_get(m, "tenants").unwrap().as_map().unwrap();
        let alice = serde::map_get(tenants, "alice").unwrap().as_map().unwrap();
        assert_eq!(
            serde::map_get(alice, "completed").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(serde::map_get(alice, "p50_us").unwrap().as_u64(), Some(100));
        let bob = serde::map_get(tenants, "bob").unwrap().as_map().unwrap();
        assert_eq!(serde::map_get(bob, "timed_out").unwrap().as_u64(), Some(1));
        assert!(
            serde::map_get(bob, "p50_us").is_err(),
            "no samples, no percentile"
        );
    }
}
