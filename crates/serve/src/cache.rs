//! Cross-request operand cache.
//!
//! Clients that multiply against a recurring operand (a layer's weight
//! matrix, say) can name it with an `a_id`/`b_id` and send the bytes once.
//! The cache stores the matrix behind an `Arc`, so every job touching the
//! same identity shares one allocation — and, more importantly, one
//! memoized `TransposePlan`: the engine's lazy structure-only transpose
//! memo lives inside `CompressedMatrix`, so the first request that needs
//! the operand in the other major order pays for the plan and every
//! subsequent request reuses it. The cache never pre-converts operands —
//! conversion stays inside `engine::execute`, where it is *recorded* in the
//! report (`explicit_conversions`), keeping served reports byte-identical
//! to direct execution.
//!
//! Keying is two-level: the client-chosen identity string locates the
//! entry, and an FNV-1a fingerprint of the full compressed representation
//! guards it — re-sending different bytes under an old identity replaces
//! the entry instead of silently multiplying stale data. Entries are
//! evicted least-recently-used once the byte budget is exceeded.

use crate::lock::lock_recover;
use crate::protocol::matrix_digest;
use flexagon_sparse::CompressedMatrix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How a lookup was satisfied (exposed for stats and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Identity known and fingerprint matched: the shared entry was reused.
    Hit,
    /// Identity unknown (or fingerprint changed); the inline matrix was
    /// inserted (replacing any stale entry).
    Inserted,
    /// No identity given: the inline matrix is used once, uncached.
    Uncached,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by an existing entry.
    pub hits: u64,
    /// Lookups that inserted or replaced an entry.
    pub misses: u64,
    /// Entries evicted by the LRU byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

#[derive(Debug)]
struct Entry {
    matrix: Arc<CompressedMatrix>,
    fingerprint: u64,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    total_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The shared LRU operand cache (interior mutability; cheap to share via
/// `Arc`).
#[derive(Debug)]
pub struct OperandCache {
    budget_bytes: u64,
    inner: Mutex<Inner>,
}

/// A failed resolution: the identity names nothing resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMatrix(pub String);

impl OperandCache {
    /// Creates a cache holding at most `budget_bytes` of matrix data.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Resolves one operand from its optional identity and optional inline
    /// bytes (see the module docs for the four cases).
    ///
    /// # Errors
    ///
    /// [`UnknownMatrix`] when only an identity is given and it is not
    /// resident. The id-less, matrix-less case is a protocol-level error
    /// the caller rejects before resolving.
    pub fn resolve(
        &self,
        id: Option<&str>,
        inline: Option<CompressedMatrix>,
    ) -> Result<(Arc<CompressedMatrix>, Resolution), UnknownMatrix> {
        let Some(id) = id else {
            let m = inline.expect("caller validates that id or inline is present");
            return Ok((Arc::new(m), Resolution::Uncached));
        };
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let fp = inline.as_ref().map(matrix_digest);
        let resident = inner
            .map
            .get(id)
            .is_some_and(|e| fp.is_none() || fp == Some(e.fingerprint));
        if resident {
            let e = inner.map.get_mut(id).expect("presence just observed");
            e.last_used = tick;
            let arc = Arc::clone(&e.matrix);
            inner.hits += 1;
            return Ok((arc, Resolution::Hit));
        }
        let Some(m) = inline else {
            inner.misses += 1;
            return Err(UnknownMatrix(id.to_owned()));
        };
        let bytes = approx_bytes(&m);
        let arc = Arc::new(m);
        if let Some(old) = inner.map.insert(
            id.to_owned(),
            Entry {
                matrix: Arc::clone(&arc),
                fingerprint: fp.expect("inline fingerprint computed above"),
                bytes,
                last_used: tick,
            },
        ) {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        inner.misses += 1;
        self.evict_locked(&mut inner);
        Ok((arc, Resolution::Inserted))
    }

    /// Evicts least-recently-used entries until the budget holds. An entry
    /// still referenced by an in-flight job keeps its `Arc` alive — only
    /// the cache's handle is dropped.
    fn evict_locked(&self, inner: &mut Inner) {
        while inner.total_bytes > self.budget_bytes && inner.map.len() > 1 {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let e = inner.map.remove(&oldest).expect("key just observed");
            inner.total_bytes -= e.bytes;
            inner.evictions += 1;
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_recover(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.total_bytes,
            entries: inner.map.len() as u64,
        }
    }
}

/// In-memory footprint estimate: compressed representation plus the pointer
/// array's native width (the on-accelerator `compressed_size_bytes` models
/// 4-byte pointers; the host holds `usize`).
fn approx_bytes(m: &CompressedMatrix) -> u64 {
    m.compressed_size_bytes() + (m.ptr().len() as u64) * (std::mem::size_of::<usize>() as u64 - 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::MajorOrder;

    fn mat(seed: u64, dim: u32) -> CompressedMatrix {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        flexagon_sparse::gen::random(dim, dim, 0.5, MajorOrder::Row, &mut rng)
    }

    #[test]
    fn identity_roundtrip_shares_the_allocation() {
        let cache = OperandCache::new(1 << 20);
        let m = mat(1, 16);
        let (first, r1) = cache.resolve(Some("w0"), Some(m.clone())).unwrap();
        assert_eq!(r1, Resolution::Inserted);
        let (second, r2) = cache.resolve(Some("w0"), None).unwrap();
        assert_eq!(r2, Resolution::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*second, m);
        // Re-sending the same bytes under the same id is also a hit.
        let (_, r3) = cache.resolve(Some("w0"), Some(m)).unwrap();
        assert_eq!(r3, Resolution::Hit);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn changed_bytes_replace_a_stale_identity() {
        let cache = OperandCache::new(1 << 20);
        cache.resolve(Some("w"), Some(mat(1, 16))).unwrap();
        let fresh = mat(2, 16);
        let (got, r) = cache.resolve(Some("w"), Some(fresh.clone())).unwrap();
        assert_eq!(r, Resolution::Inserted);
        assert_eq!(*got, fresh);
        let (again, _) = cache.resolve(Some("w"), None).unwrap();
        assert_eq!(*again, fresh);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn unknown_identity_is_an_error() {
        let cache = OperandCache::new(1 << 20);
        assert_eq!(
            cache.resolve(Some("nope"), None).unwrap_err(),
            UnknownMatrix("nope".to_owned())
        );
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let m = mat(1, 32);
        let one = approx_bytes(&m);
        // Budget for two entries; the third insert evicts the least
        // recently used.
        let cache = OperandCache::new(2 * one + one / 2);
        cache.resolve(Some("a"), Some(mat(1, 32))).unwrap();
        cache.resolve(Some("b"), Some(mat(2, 32))).unwrap();
        cache.resolve(Some("a"), None).unwrap(); // touch a: b becomes LRU
        cache.resolve(Some("c"), Some(mat(3, 32))).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(cache.resolve(Some("b"), None).is_err(), "b was evicted");
        assert!(cache.resolve(Some("a"), None).is_ok(), "a survived");
        assert!(cache.resolve(Some("c"), None).is_ok(), "c survived");
        assert!(cache.stats().resident_bytes <= 2 * one + one / 2);
    }

    #[test]
    fn uncached_operands_do_not_occupy_budget() {
        let cache = OperandCache::new(1 << 20);
        let (_, r) = cache.resolve(None, Some(mat(7, 16))).unwrap();
        assert_eq!(r, Resolution::Uncached);
        let s = cache.stats();
        assert_eq!(
            (s.entries, s.resident_bytes, s.hits, s.misses),
            (0, 0, 0, 0)
        );
    }
}
