//! Transport abstraction: one listener/stream pair over TCP or Unix
//! domain sockets.
//!
//! Addresses are plain strings: `"127.0.0.1:7070"` (TCP) or
//! `"unix:/tmp/flexagon.sock"` (Unix, on cfg(unix) targets). TCP port `0`
//! binds an ephemeral port; [`Listener::display_addr`] reports the
//! resolved address so tests and the daemon banner can hand it to clients.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// Prefix selecting the Unix-domain transport in an address string.
pub const UNIX_PREFIX: &str = "unix:";

/// A bound server socket on either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener, remembering its path for display/cleanup.
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Binds `addr` (`host:port` or `unix:<path>`).
    ///
    /// A stale Unix socket file left by a dead daemon is removed before
    /// binding — a *live* daemon would still lose the race, but the common
    /// crash-restart case just works.
    ///
    /// # Errors
    ///
    /// Propagates bind errors; `unix:` addresses fail with
    /// [`std::io::ErrorKind::Unsupported`] on non-Unix targets.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                if std::fs::metadata(path).is_ok() {
                    let _ = std::fs::remove_file(path);
                }
                return Ok(Self::Unix(UnixListener::bind(path)?, path.to_owned()));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix: addresses need a Unix target",
                ));
            }
        }
        Ok(Self::Tcp(TcpListener::bind(addr)?))
    }

    /// Switches the listener to non-blocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `set_nonblocking` error.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Self::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Self::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// Propagates accept errors (including `WouldBlock` when non-blocking).
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Self::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Nagle would hold the response payload behind the
                // length-prefix segment until the peer's delayed ACK —
                // tens of milliseconds of pure protocol latency per frame
                // on loopback. The framing layer already coalesces writes;
                // disable batching-by-timer entirely.
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Self::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    /// The resolved address in the same syntax [`Listener::bind`] accepts —
    /// for TCP this includes the actual port when `0` was requested.
    pub fn display_addr(&self) -> String {
        match self {
            Self::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".to_owned()),
            #[cfg(unix)]
            Self::Unix(_, path) => format!("{UNIX_PREFIX}{path}"),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Self::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted or dialed connection on either transport.
#[derive(Debug)]
pub enum Stream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr` (`host:port` or `unix:<path>`).
    ///
    /// # Errors
    ///
    /// Propagates connect errors; `unix:` addresses fail with
    /// [`std::io::ErrorKind::Unsupported`] on non-Unix targets.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            return Ok(Self::Unix(UnixStream::connect(path)?));
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix: addresses need a Unix target",
                ));
            }
        }
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?; // see `Listener::accept` — frame latency, not throughput
        Ok(Self::Tcp(s))
    }

    /// Sets the read timeout, so server-side frame reads surface periodic
    /// [`crate::protocol::FrameEvent::Timeout`]s for shutdown polling.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `set_read_timeout` error.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn tcp_listener_reports_resolved_port() {
        let l = Listener::bind("127.0.0.1:0").unwrap();
        let addr = l.display_addr();
        assert!(addr.starts_with("127.0.0.1:"));
        assert!(!addr.ends_with(":0"));
    }

    #[test]
    fn tcp_roundtrip() {
        let l = Listener::bind("127.0.0.1:0").unwrap();
        let addr = l.display_addr();
        let t = std::thread::spawn(move || {
            let mut c = Stream::connect(&addr).unwrap();
            c.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).unwrap();
            buf
        });
        let mut s = l.accept().unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        s.write_all(b"pong").unwrap();
        assert_eq!(&t.join().unwrap(), b"pong");
    }

    #[cfg(unix)]
    #[test]
    fn unix_roundtrip_and_stale_socket_cleanup() {
        let path = std::env::temp_dir().join(format!("flexagon-net-test-{}", std::process::id()));
        let addr = format!("{UNIX_PREFIX}{}", path.display());
        // Bind twice: the second bind must clean up the first's socket file
        // (simulating a crashed daemon) once the first listener is dropped.
        let l1 = Listener::bind(&addr).unwrap();
        drop(l1);
        std::fs::write(&path, b"").unwrap(); // stale file in the way
        let l2 = Listener::bind(&addr).unwrap();
        let addr2 = l2.display_addr();
        let t = std::thread::spawn(move || {
            let mut c = Stream::connect(&addr2).unwrap();
            c.write_all(b"hi").unwrap();
        });
        let mut s = l2.accept().unwrap();
        let mut buf = [0u8; 2];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        t.join().unwrap();
        drop(l2);
        assert!(!path.exists(), "listener drop removes the socket file");
    }
}
