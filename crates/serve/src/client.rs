//! A small blocking client for the frame protocol (used by the CLI bins,
//! the benches and the tests; also the reference implementation for
//! speaking the protocol from elsewhere).

use crate::net::Stream;
use crate::protocol::{
    write_message, FrameEvent, FrameReader, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};

/// One connection to a daemon, issuing requests synchronously.
pub struct Client {
    stream: Stream,
    reader: FrameReader,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:<path>`).
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            stream: Stream::connect(addr)?,
            reader: FrameReader::new(DEFAULT_MAX_FRAME_BYTES),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O errors, an unexpectedly closed connection
    /// ([`std::io::ErrorKind::UnexpectedEof`]), or an unparseable response
    /// ([`std::io::ErrorKind::InvalidData`]).
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        write_message(&mut self.stream, req)?;
        loop {
            match self.reader.read(&mut self.stream)? {
                FrameEvent::Frame(payload) => {
                    let text = std::str::from_utf8(&payload).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
                    return serde_json::from_str(text).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    });
                }
                FrameEvent::Timeout => continue,
                FrameEvent::Closed { .. } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection before answering",
                    ))
                }
                FrameEvent::TooLarge(len) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("daemon sent an oversized frame ({len} bytes)"),
                    ))
                }
            }
        }
    }
}
