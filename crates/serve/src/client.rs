//! A small blocking client for the frame protocol (used by the CLI bins,
//! the benches and the tests; also the reference implementation for
//! speaking the protocol from elsewhere).
//!
//! Two robustness layers ride on top of raw request/response:
//!
//! * **A client-side response deadline.** The daemon bounds its own reply
//!   time (deadline cancellation plus a response-window backstop), but a
//!   client must not trust that: [`Client::request`] gives up with a typed
//!   [`std::io::ErrorKind::TimedOut`] once [`Client::response_deadline`]
//!   passes. A response timeout poisons the connection — the daemon's
//!   late reply frame would otherwise be read as the answer to the *next*
//!   request — so reconnect before reusing the address.
//! * **Jittered exponential-backoff retries.** [`Client::request_with_retries`]
//!   re-issues requests that failed with a *retryable* typed error
//!   (`queue_full`, `overloaded`, `timeout` — transient load conditions
//!   the protocol invites a retry on) under a bounded [`RetryPolicy`];
//!   `draining` and request-shaped errors (`bad_request` and friends) are
//!   terminal and returned immediately. Typed errors leave the connection
//!   usable, so retries reuse it.

use crate::net::Stream;
use crate::protocol::{
    write_message, ErrorCode, FrameEvent, FrameReader, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};
use rand::{RngCore, SeedableRng};
use std::time::{Duration, Instant};

/// How often the blocking read wakes to check the response deadline.
const READ_POLL: Duration = Duration::from_millis(100);

/// Default ceiling on one request's response time. Generous — above any
/// server-side deadline backstop for default requests — so it only trips
/// when the daemon is truly wedged.
pub const DEFAULT_RESPONSE_DEADLINE: Duration = Duration::from_secs(120);

/// One connection to a daemon, issuing requests synchronously.
pub struct Client {
    stream: Stream,
    reader: FrameReader,
    response_deadline: Duration,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:<path>`).
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = Stream::connect(addr)?;
        // Periodic read timeouts let `request` observe its response
        // deadline between partial frames instead of blocking forever.
        stream.set_read_timeout(Some(READ_POLL))?;
        Ok(Self {
            stream,
            reader: FrameReader::new(DEFAULT_MAX_FRAME_BYTES),
            response_deadline: DEFAULT_RESPONSE_DEADLINE,
        })
    }

    /// Sets the per-request response deadline (default
    /// [`DEFAULT_RESPONSE_DEADLINE`]).
    pub fn set_response_deadline(&mut self, deadline: Duration) {
        self.response_deadline = deadline.max(Duration::from_millis(1));
    }

    /// The per-request response deadline.
    pub fn response_deadline(&self) -> Duration {
        self.response_deadline
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O errors, an unexpectedly closed connection
    /// ([`std::io::ErrorKind::UnexpectedEof`]), an unparseable response
    /// ([`std::io::ErrorKind::InvalidData`]), or no response within the
    /// client's response deadline ([`std::io::ErrorKind::TimedOut`] — the
    /// connection must then be abandoned, see the module docs).
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        write_message(&mut self.stream, req)?;
        let deadline = Instant::now() + self.response_deadline;
        loop {
            match self.reader.read(&mut self.stream)? {
                FrameEvent::Frame(payload) => {
                    let text = std::str::from_utf8(&payload).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
                    return serde_json::from_str(text).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    });
                }
                FrameEvent::Timeout => {
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!(
                                "no response within the {} ms client deadline (connection is \
                                 now unusable — reconnect)",
                                self.response_deadline.as_millis()
                            ),
                        ));
                    }
                }
                FrameEvent::Closed { .. } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection before answering",
                    ))
                }
                FrameEvent::TooLarge(len) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("daemon sent an oversized frame ({len} bytes)"),
                    ))
                }
            }
        }
    }

    /// Sends a request, retrying retryable typed errors under `policy`
    /// (see the module docs; the final attempt's response is returned
    /// as-is, so callers still observe the error that exhausted the
    /// budget).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`] — I/O-level failures are never retried,
    /// because a missed response leaves the stream unusable.
    pub fn request_with_retries(
        &mut self,
        req: &Request,
        policy: &mut RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let resp = self.request(req)?;
            match &resp {
                Response::Error { code, .. } if code.is_retryable() && attempt < policy.retries => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                _ => return Ok(resp),
            }
        }
    }
}

impl ErrorCode {
    /// Whether a typed error invites a retry: transient load conditions
    /// (`queue_full`, `overloaded`, `timeout`) do; terminal answers
    /// (`draining`, `bad_request`, engine failures, ...) do not.
    pub fn is_retryable(self) -> bool {
        matches!(self, Self::QueueFull | Self::Overloaded | Self::Timeout)
    }
}

/// A bounded, jittered exponential-backoff retry budget.
#[derive(Debug)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = never retry).
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    jitter: rand_chacha::ChaCha8Rng,
}

impl RetryPolicy {
    /// A policy allowing `retries` retries (50 ms base, 2 s cap), with
    /// jitter decorrelated by `seed` (give concurrent clients distinct
    /// seeds so their retries don't stampede in lockstep).
    pub fn new(retries: u32, seed: u64) -> Self {
        Self {
            retries,
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            jitter: rand_chacha::ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The sleep before retry number `attempt` (0-based): full jitter over
    /// an exponentially growing, capped window.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let window = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.max);
        let nanos = window.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // Full jitter in [window/2, window): keeps some backoff while
        // spreading concurrent retries apart.
        let half = nanos / 2;
        Duration::from_nanos(half + self.jitter.next_u64() % (nanos - half).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_codes_are_the_transient_ones() {
        assert!(ErrorCode::QueueFull.is_retryable());
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::Timeout.is_retryable());
        assert!(!ErrorCode::Draining.is_retryable());
        assert!(!ErrorCode::BadRequest.is_retryable());
        assert!(!ErrorCode::Engine.is_retryable());
    }

    #[test]
    fn backoff_grows_and_stays_in_window() {
        let mut p = RetryPolicy::new(5, 42);
        for attempt in 0..6 {
            let window = p.base.saturating_mul(2u32.pow(attempt)).min(p.max);
            let b = p.backoff(attempt);
            assert!(
                b >= window / 2,
                "attempt {attempt}: {b:?} below half-window"
            );
            assert!(b < window, "attempt {attempt}: {b:?} above window");
        }
    }
}
