//! Wall-clock bench for the serving daemon: sustained multi-client SpGEMM
//! latency through the full stack (socket, frames, scheduler, cache,
//! engine).
//!
//! Boots an in-process [`flexagon_serve::Server`] on an ephemeral TCP
//! port, then fans client threads issuing back-to-back jobs over shared
//! cache identities (steady-state: operand bytes cross the wire once per
//! connection) until the budget elapses. One configuration per client
//! count — each with a fresh daemon so runs are independent — recording
//! mean latency as `ns_per_iter` plus `p50_ns`/`p99_ns` percentile fields
//! to `FLEXAGON_BENCH_JSON`, in the criterion shim's line format with
//! `"threads"` carrying the client count (the serve SLO is per-client
//! latency under concurrency, so concurrency is the match key for
//! `bench_guard`, which gates the percentile fields alongside the mean).
//!
//! Knobs mirror the other wall-clock bins: `FLEXAGON_BENCH_MS` (budget per
//! configuration, default 300) and `FLEXAGON_BENCH_JSON` (output path;
//! relative paths resolve against the workspace root).
//! `FLEXAGON_SERVE_CLIENTS` is a comma-separated client-count list
//! (default `1,4`).

#![deny(clippy::unwrap_used)]

use flexagon_serve::protocol::{Request, Response, SpGemmRequest};
use flexagon_serve::{Client, ServeConfig, Server};
use flexagon_sparse::{CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};

/// Operand shape: the synthetic wall-clock layer geometry (96x128x96 at
/// the suite's typical sparsity), small enough for a smoke budget, large
/// enough that the engine dominates framing overhead.
fn operands() -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x005E_127E);
    let a = flexagon_sparse::gen::random(96, 128, 0.30, MajorOrder::Row, &mut rng);
    let b = flexagon_sparse::gen::random(128, 96, 0.40, MajorOrder::Row, &mut rng);
    (a, b)
}

fn budget_ms() -> u64 {
    std::env::var("FLEXAGON_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn results_path() -> std::path::PathBuf {
    let path = std::env::var("FLEXAGON_BENCH_JSON")
        .unwrap_or_else(|_| "target/bench_results.json".to_string());
    criterion::resolve_output_path(&path)
}

/// Client counts to measure: `FLEXAGON_SERVE_CLIENTS` as a comma-separated
/// list, default `1,4`.
///
/// # Panics
///
/// Panics on a malformed token — an unmeasured recorded baseline would
/// only surface as a `bench_guard` skip line, so a typo fails loudly here.
fn client_counts() -> Vec<usize> {
    std::env::var("FLEXAGON_SERVE_CLIENTS")
        .map(|s| {
            s.split(',')
                .map(|t| match t.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => panic!(
                        "FLEXAGON_SERVE_CLIENTS: '{t}' is not a positive client count \
                         (expected a comma-separated list like '1,4')"
                    ),
                })
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 4])
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[((p * sorted.len()).div_ceil(100)).clamp(1, sorted.len()) - 1]
}

fn main() {
    let budget = Duration::from_millis(budget_ms());
    let path = results_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let (a, b) = operands();
    for clients in client_counts() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral serve port");
        let addr = server.local_addr().to_owned();
        let deadline = Instant::now() + budget;
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || -> Vec<u64> {
                    let mut client = Client::connect(&addr).expect("connect to in-process daemon");
                    let mut latencies = Vec::new();
                    let mut first = true;
                    // Warm-up: one job per connection primes the cache
                    // entry (and ships the operand bytes) outside the
                    // measured window.
                    loop {
                        let req = Request::spgemm(SpGemmRequest {
                            tenant: "bench".to_owned(),
                            a: first.then(|| a.clone()),
                            b: first.then(|| b.clone()),
                            a_id: Some("wall-a".to_owned()),
                            b_id: Some("wall-b".to_owned()),
                            timeout_ms: Some(120_000),
                            ..SpGemmRequest::default()
                        });
                        let t0 = Instant::now();
                        let resp = client.request(&req).expect("serve request");
                        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        assert!(
                            matches!(resp, Response::Result(_)),
                            "bench job rejected: {resp:?}"
                        );
                        if first {
                            first = false;
                        } else {
                            latencies.push(ns);
                        }
                        if Instant::now() >= deadline && !latencies.is_empty() {
                            return latencies;
                        }
                    }
                })
            })
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        server.shutdown();
        all.sort_unstable();
        let iters = all.len() as u64;
        let ns_per_iter = all.iter().sum::<u64>() as f64 / iters as f64;
        let (p50, p99) = (percentile(&all, 50), percentile(&all, 99));
        let name = format!("serve_wallclock/sustained_c{clients}");
        println!(
            "bench: {name:<56} {ns_per_iter:>14.1} ns/iter (p50 {p50} ns, p99 {p99} ns, \
             {iters} iters, {clients} clients)"
        );
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"{name}\", \"ns_per_iter\": {ns_per_iter:.1}, \
                     \"iterations\": {iters}, \"threads\": {clients}, \
                     \"p50_ns\": {p50}, \"p99_ns\": {p99}}}"
                );
            }
            Err(e) => eprintln!(
                "warning: cannot write bench results to {}: {e}",
                path.display()
            ),
        }
    }
}
