//! The `serve_client` CLI: drives a running `flexagon_served` daemon.
//!
//! ```text
//! serve_client --addr ADDR ping
//! serve_client --addr ADDR stats [--json PATH]
//! serve_client --addr ADDR shutdown
//! serve_client --addr ADDR load [--clients N] [--requests N] [--dim N]
//!              [--density F] [--tenant T] [--strategy S] [--format F]
//!              [--seed N] [--timeout-ms MS] [--retries N] [--ids]
//!              [--tolerate-errors]
//! ```
//!
//! `load` fans `--clients` threads, each its own connection, each issuing
//! `--requests` SpGEMM jobs over deterministic operands; with `--ids` all
//! clients share cache identities so the operand cache reaches steady
//! state. Prints aggregate p50/p99/mean latency and throughput; exits
//! nonzero if any request failed. `--timeout-ms` sets each job's
//! end-to-end deadline; `--retries N` allows N jittered-backoff retries
//! of retryable typed errors (`queue_full`, `overloaded`, `timeout`) per
//! request — keep it 0 when a chaos harness reconciles stats counters
//! exactly. `--tolerate-errors` (for chaos runs against a fault-injecting
//! daemon) counts typed error replies instead of aborting —
//! connection-level failures still fail the run, because a healthy
//! tenant's *connection* surviving is exactly what chaos tests assert.

#![deny(clippy::unwrap_used)]

use flexagon_serve::protocol::{RawValue, Request, Response, SpGemmRequest};
use flexagon_serve::{Client, RetryPolicy};
use flexagon_sparse::MajorOrder;
use rand::SeedableRng;
use std::time::Instant;

struct LoadArgs {
    clients: usize,
    requests: usize,
    dim: u32,
    density: f64,
    tenant: String,
    strategy: String,
    format: String,
    seed: u64,
    timeout_ms: u64,
    retries: u32,
    ids: bool,
    tolerate_errors: bool,
}

impl Default for LoadArgs {
    fn default() -> Self {
        Self {
            clients: 2,
            requests: 16,
            dim: 96,
            density: 0.3,
            tenant: "load".to_owned(),
            strategy: "heuristic".to_owned(),
            format: "config".to_owned(),
            seed: 7,
            timeout_ms: 60_000,
            retries: 0,
            ids: false,
            tolerate_errors: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_client --addr ADDR (ping | shutdown | stats [--json PATH] | \
         load [--clients N] [--requests N] [--dim N] [--density F] [--tenant T] \
         [--strategy S] [--format F] [--seed N] [--timeout-ms MS] [--retries N] \
         [--ids] [--tolerate-errors])"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_client: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut mode = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().unwrap_or_else(|| usage())),
            "ping" | "shutdown" | "stats" | "load" if mode.is_none() => mode = Some(a),
            _ => rest.push(a),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    match mode.as_deref() {
        Some("ping") => {
            let resp = one_request(&addr, &Request::Ping);
            match resp {
                Response::Pong => println!("pong"),
                other => fail(&format!("unexpected reply {other:?}")),
            }
        }
        Some("shutdown") => {
            let resp = one_request(&addr, &Request::Shutdown);
            match resp {
                Response::Ok => println!("draining"),
                other => fail(&format!("unexpected reply {other:?}")),
            }
        }
        Some("stats") => {
            let mut json_path = None;
            let mut it = rest.into_iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json_path = Some(it.next().unwrap_or_else(|| usage())),
                    _ => usage(),
                }
            }
            let resp = one_request(&addr, &Request::Stats);
            let Response::Stats(v) = resp else {
                fail(&format!("unexpected reply {resp:?}"));
            };
            let text = serde_json::to_string_pretty(&RawValue(&v)).expect("value renders");
            match json_path {
                Some(p) => {
                    std::fs::write(&p, text).unwrap_or_else(|e| fail(&format!("write {p}: {e}")));
                    println!("stats written to {p}");
                }
                None => println!("{text}"),
            }
        }
        Some("load") => run_load(&addr, parse_load(rest)),
        _ => usage(),
    }
}

fn one_request(addr: &str, req: &Request) -> Response {
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    client
        .request(req)
        .unwrap_or_else(|e| fail(&format!("request: {e}")))
}

fn parse_load(rest: Vec<String>) -> LoadArgs {
    let mut la = LoadArgs::default();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--clients" => la.clients = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => la.requests = value().parse().unwrap_or_else(|_| usage()),
            "--dim" => la.dim = value().parse().unwrap_or_else(|_| usage()),
            "--density" => la.density = value().parse().unwrap_or_else(|_| usage()),
            "--tenant" => la.tenant = value(),
            "--strategy" => la.strategy = value(),
            "--format" => la.format = value(),
            "--seed" => la.seed = value().parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => la.timeout_ms = value().parse().unwrap_or_else(|_| usage()),
            "--retries" => la.retries = value().parse().unwrap_or_else(|_| usage()),
            "--ids" => la.ids = true,
            "--tolerate-errors" => la.tolerate_errors = true,
            _ => usage(),
        }
    }
    la
}

fn run_load(addr: &str, la: LoadArgs) {
    let strategy = la
        .strategy
        .parse()
        .unwrap_or_else(|e: String| fail(&format!("--strategy: {e}")));
    let format: flexagon_core::FormatChoice = la
        .format
        .parse()
        .unwrap_or_else(|e: String| fail(&format!("--format: {e}")));
    let started = Instant::now();
    let handles: Vec<_> = (0..la.clients.max(1))
        .map(|c| {
            let addr = addr.to_owned();
            let tenant = la.tenant.clone();
            let (dim, density, seed, requests, ids) =
                (la.dim, la.density, la.seed, la.requests, la.ids);
            let (timeout_ms, retries, tolerate) = (la.timeout_ms, la.retries, la.tolerate_errors);
            std::thread::spawn(move || -> Result<(Vec<u64>, u64), String> {
                let mut client =
                    Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
                // Distinct jitter seed per client so retries decorrelate.
                let mut retry = RetryPolicy::new(retries, seed ^ c as u64);
                // With shared ids every client uses the same operand set
                // (cache steady state); without, each client streams its
                // own matrices (cold-path load).
                let operand_seed = if ids { seed } else { seed ^ (c as u64) << 32 };
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(operand_seed);
                let a = flexagon_sparse::gen::random(dim, dim, density, MajorOrder::Row, &mut rng);
                let b = flexagon_sparse::gen::random(dim, dim, density, MajorOrder::Row, &mut rng);
                let mut latencies = Vec::with_capacity(requests);
                let mut tolerated = 0u64;
                for i in 0..requests {
                    let req = Request::spgemm(SpGemmRequest {
                        tenant: tenant.clone(),
                        strategy,
                        format,
                        // Inline bytes ride along on the first request per
                        // connection; afterwards the id alone suffices.
                        a: (!ids || i == 0).then(|| a.clone()),
                        b: (!ids || i == 0).then(|| b.clone()),
                        a_id: ids.then(|| format!("load-a-{seed}")),
                        b_id: ids.then(|| format!("load-b-{seed}")),
                        want_output: false,
                        timeout_ms: Some(timeout_ms),
                    });
                    let t0 = Instant::now();
                    let resp = client
                        .request_with_retries(&req, &mut retry)
                        .map_err(|e| format!("request: {e}"))?;
                    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                    match resp {
                        Response::Result(_) => latencies.push(us),
                        Response::Error { code, detail } => {
                            if tolerate {
                                // The connection answered with a typed error
                                // and stays usable — exactly what a chaos run
                                // expects from injected faults.
                                tolerated += 1;
                                eprintln!("serve_client: tolerated: {code}: {detail}");
                            } else {
                                return Err(format!("request rejected: {code}: {detail}"));
                            }
                        }
                        other => return Err(format!("unexpected reply {other:?}")),
                    }
                }
                Ok((latencies, tolerated))
            })
        })
        .collect();
    let mut all = Vec::new();
    let mut failures = Vec::new();
    let mut tolerated = 0u64;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok((ls, t)) => {
                all.extend(ls);
                tolerated += t;
            }
            Err(e) => failures.push(e),
        }
    }
    let wall = started.elapsed();
    for f in &failures {
        eprintln!("serve_client: {f}");
    }
    if all.is_empty() {
        fail("no request completed");
    }
    all.sort_unstable();
    let pct = |p: usize| all[((p * all.len()).div_ceil(100)).clamp(1, all.len()) - 1];
    let mean = all.iter().sum::<u64>() / all.len() as u64;
    println!(
        "load: {} requests over {} clients in {:.2}s  p50={}us p99={}us mean={}us  {:.1} req/s",
        all.len(),
        la.clients,
        wall.as_secs_f64(),
        pct(50),
        pct(99),
        mean,
        all.len() as f64 / wall.as_secs_f64().max(1e-9),
    );
    if tolerated > 0 {
        println!("load: tolerated {tolerated} error replies");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
