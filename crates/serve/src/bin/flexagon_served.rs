//! The `flexagon_served` daemon binary.
//!
//! Boots a [`flexagon_serve::Server`] and blocks until a drain is
//! requested — by SIGTERM/SIGINT or by a client's `shutdown` request —
//! then finishes in-flight work and exits 0.
//!
//! ```text
//! flexagon_served [--addr 127.0.0.1:7070 | --addr unix:/run/flexagon.sock]
//!                 [--workers N] [--budget N] [--queue N] [--cache-mb N]
//!                 [--timeout-ms N] [--grain NNZ] [--shard-workers N]
//!                 [--faults panic=N,slow=N:MS,corrupt=N,stuck=N]
//! ```
//!
//! `--faults` (or the `FLEXAGON_FAULTS` environment variable, flag wins)
//! arms deterministic fault injection for chaos testing — see
//! [`flexagon_serve::fault`]. `--timeout-ms` sets the default *end-to-end*
//! deadline applied to requests that carry no `timeout_ms` of their own.

#![deny(clippy::unwrap_used)]

use flexagon_core::EngineConfig;
use flexagon_serve::fault::{FaultPlan, FaultSpec};
use flexagon_serve::{ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    // std links libc; declaring `signal` avoids a libc crate dependency.
    // The handler only stores an atomic flag — async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: flexagon_served [--addr HOST:PORT|unix:PATH] [--workers N] \
         [--budget N] [--queue N] [--cache-mb N] [--timeout-ms N] \
         [--grain NNZ] [--shard-workers N] [--faults SPEC]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServeConfig {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7070".to_owned(),
        ..ServeConfig::default()
    };
    let mut grain = 0usize;
    let mut shard_workers = 0usize;
    let mut faults: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--budget" => cfg.worker_budget = parse_num(&value("--budget"), "--budget"),
            "--queue" => cfg.queue_capacity = parse_num(&value("--queue"), "--queue"),
            "--cache-mb" => {
                cfg.cache_budget_bytes = parse_num::<u64>(&value("--cache-mb"), "--cache-mb") << 20;
            }
            "--timeout-ms" => {
                cfg.default_timeout_ms = parse_num(&value("--timeout-ms"), "--timeout-ms");
            }
            "--grain" => grain = parse_num(&value("--grain"), "--grain"),
            "--shard-workers" => {
                shard_workers = parse_num(&value("--shard-workers"), "--shard-workers");
            }
            "--faults" => faults = Some(value("--faults")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    if grain > 0 {
        cfg.engine = EngineConfig::default().sharded(grain, shard_workers.max(1));
    } else if shard_workers > 0 {
        eprintln!("--shard-workers needs --grain (sharding is off at grain 0)");
        usage()
    }
    // Flag wins over FLEXAGON_FAULTS so a script can override the ambient
    // environment; either way a malformed spec is a startup error, not a
    // silently-unarmed plan.
    let plan = match faults {
        Some(spec) => match FaultSpec::parse(&spec) {
            Ok(s) => FaultPlan::new(s),
            Err(e) => {
                eprintln!("--faults: {e}");
                usage()
            }
        },
        None => match FaultPlan::from_env() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("FLEXAGON_FAULTS: {e}");
                std::process::exit(2);
            }
        },
    };
    if plan.enabled() {
        eprintln!("flexagon_served: FAULT INJECTION ARMED: {:?}", plan.spec());
    }
    cfg.faults = std::sync::Arc::new(plan);
    cfg
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: '{s}' is not a valid number");
        usage()
    })
}

fn main() {
    let cfg = parse_config();
    install_signal_handlers();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("flexagon_served: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The banner line is the contract scripts wait on: once printed, the
    // socket accepts connections.
    println!("flexagon_served listening on {}", server.local_addr());
    loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("flexagon_served: signal received, draining");
            server.begin_drain();
            break;
        }
        if server.drain_requested() {
            eprintln!("flexagon_served: shutdown requested, draining");
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    eprintln!("flexagon_served: drained, exiting");
}
