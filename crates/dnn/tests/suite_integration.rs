//! Integration tests of the workload suite against the simulator: the
//! Table 6 layer groups must favour the paper's dataflows.

use flexagon_core::{
    Accelerator, Dataflow, ExecutionRequest, Flexagon, GammaLike, SigmaLike, SparchLike,
};
use flexagon_dnn::table6::{self, FavouredDataflow};

/// `total_cycles` of one fixed-dataflow execution.
fn cycles(accel: &impl Accelerator, mats: &flexagon_dnn::LayerMatrices, df: Dataflow) -> u64 {
    accel
        .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(df))
        .unwrap()
        .output
        .report
        .total_cycles
}

/// Gustavson-group layers: GAMMA-like must win them (MB215 and A2 are small
/// enough to verify in a debug-build test; V7 is covered by the release
/// harness).
#[test]
fn gustavson_group_layers_favour_gamma() {
    for id in ["MB215", "A2"] {
        let layer = table6::by_id(id).unwrap();
        assert_eq!(layer.favours, FavouredDataflow::Gustavson);
        let mats = layer.spec.materialize(1);
        let ip = cycles(&SigmaLike::with_defaults(), &mats, Dataflow::InnerProductM);
        let op = cycles(&SparchLike::with_defaults(), &mats, Dataflow::OuterProductM);
        let gu = cycles(&GammaLike::with_defaults(), &mats, Dataflow::GustavsonM);
        assert!(gu < ip && gu < op, "{id}: Gust {gu} vs IP {ip} / OP {op}");
    }
}

/// Inner-product-group layers: the SIGMA-like accelerator must beat the
/// outer-product baseline (its defining comparison in Fig. 13).
#[test]
fn inner_product_group_beats_outer_product() {
    for id in ["SQ5", "SQ11"] {
        let layer = table6::by_id(id).unwrap();
        assert_eq!(layer.favours, FavouredDataflow::InnerProduct);
        let mats = layer.spec.materialize(1);
        let ip = cycles(&SigmaLike::with_defaults(), &mats, Dataflow::InnerProductM);
        let op = cycles(&SparchLike::with_defaults(), &mats, Dataflow::OuterProductM);
        assert!(ip < op, "{id}: IP {ip} !< OP {op}");
    }
}

/// Flexagon matches the best baseline on every (small) Table 6 layer.
#[test]
fn flexagon_matches_best_on_table6() {
    for id in ["SQ5", "SQ11", "MB215"] {
        let layer = table6::by_id(id).unwrap();
        let mats = layer.spec.materialize(1);
        let accel = Flexagon::with_defaults();
        let mut best = u64::MAX;
        for df in Dataflow::M_STATIONARY {
            best = best.min(cycles(&accel, &mats, df));
        }
        let oracle = flexagon_core::mapper::oracle(&accel, &mats.a, &mats.b)
            .unwrap()
            .1
            .report
            .total_cycles;
        assert!(oracle <= best, "{id}: oracle {oracle} > best-of-M {best}");
    }
}

/// Materialized sparsities of the pinned layers track Table 6.
#[test]
fn pinned_layer_sparsities_track_table6() {
    for layer in table6::layers() {
        if layer.spec.m * layer.spec.k < 5000 {
            continue; // tiny matrices have high sampling variance
        }
        let mats = layer.spec.materialize(1);
        assert!(
            (mats.a.sparsity_percent() - layer.spec.sp_a).abs() < 3.0,
            "{}: spA {:.1} vs {:.1}",
            layer.id,
            mats.a.sparsity_percent(),
            layer.spec.sp_a
        );
    }
}
