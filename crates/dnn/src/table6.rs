//! The nine representative layers of Table 6.
//!
//! "Since explaining the results requires delving into a finer-grained
//! detail, we have selected 9 representative layers extracted from the
//! execution of the DNN models" — three that favour Inner Product (SQ5,
//! SQ11, R4), three that favour Outer Product (R6, S-R3, V0) and three
//! that favour Gustavson's (MB215, V7, A2).

use crate::LayerSpec;
use serde::{Deserialize, Serialize};

/// Which dataflow the paper reports this layer favouring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FavouredDataflow {
    /// The SIGMA-like Inner-Product accelerator wins.
    InnerProduct,
    /// The SpArch-like Outer-Product accelerator wins.
    OuterProduct,
    /// The GAMMA-like Gustavson accelerator wins.
    Gustavson,
}

impl FavouredDataflow {
    /// Short column label ("IP", "OP", "Gust") used by the harness tables,
    /// matching how the mapper-accuracy report abbreviates dataflow
    /// classes.
    pub fn short_name(self) -> &'static str {
        match self {
            Self::InnerProduct => "IP",
            Self::OuterProduct => "OP",
            Self::Gustavson => "Gust",
        }
    }
}

/// One Table 6 row: a named layer and the dataflow group it belongs to.
///
/// Serialize-only: the `&'static str` identifier cannot be deserialized
/// from owned JSON text.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RepresentativeLayer {
    /// Table 6 identifier ("SQ5", "V0", ...).
    pub id: &'static str,
    /// The layer's SpMSpM problem.
    pub spec: LayerSpec,
    /// The group the paper assigns it to.
    pub favours: FavouredDataflow,
}

/// All nine layers in Table 6 order, at exact published dimensions and
/// sparsities.
pub fn layers() -> Vec<RepresentativeLayer> {
    use FavouredDataflow::*;
    let rows: [(&'static str, u32, u32, u32, f64, f64, FavouredDataflow); 9] = [
        // id,      M,   K,    N,     spA,  spB,  group
        ("SQ5", 64, 16, 2916, 68.0, 11.0, InnerProduct),
        ("SQ11", 128, 32, 729, 70.0, 10.0, InnerProduct),
        ("R4", 256, 64, 3136, 88.0, 9.0, InnerProduct),
        ("R6", 64, 576, 2916, 89.0, 53.0, OuterProduct),
        ("S-R3", 64, 576, 5329, 89.0, 46.0, OuterProduct),
        ("V0", 128, 576, 12100, 90.0, 61.0, OuterProduct),
        ("MB215", 128, 512, 8, 50.0, 0.0, Gustavson),
        ("V7", 512, 4608, 144, 90.0, 94.0, Gustavson),
        ("A2", 384, 1728, 121, 70.0, 54.0, Gustavson),
    ];
    rows.iter()
        .enumerate()
        .map(
            |(i, &(id, m, k, n, sp_a, sp_b, favours))| RepresentativeLayer {
                id,
                spec: LayerSpec::new(i as u32, id, m, k, n, sp_a, sp_b),
                favours,
            },
        )
        .collect()
}

/// Looks a representative layer up by its Table 6 id.
pub fn by_id(id: &str) -> Option<RepresentativeLayer> {
    layers().into_iter().find(|l| l.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_layers_in_three_groups() {
        let all = layers();
        assert_eq!(all.len(), 9);
        for group in [
            FavouredDataflow::InnerProduct,
            FavouredDataflow::OuterProduct,
            FavouredDataflow::Gustavson,
        ] {
            assert_eq!(all.iter().filter(|l| l.favours == group).count(), 3);
        }
    }

    #[test]
    fn dimensions_match_table6() {
        let v0 = by_id("V0").unwrap();
        assert_eq!((v0.spec.m, v0.spec.n, v0.spec.k), (128, 12100, 576));
        let mb = by_id("MB215").unwrap();
        assert_eq!((mb.spec.m, mb.spec.n, mb.spec.k), (128, 8, 512));
        let v7 = by_id("V7").unwrap();
        assert_eq!((v7.spec.m, v7.spec.n, v7.spec.k), (512, 144, 4608));
    }

    #[test]
    fn sparsities_match_table6() {
        let r4 = by_id("R4").unwrap();
        assert_eq!((r4.spec.sp_a, r4.spec.sp_b), (88.0, 9.0));
        let sr3 = by_id("S-R3").unwrap();
        assert_eq!((sr3.spec.sp_a, sr3.spec.sp_b), (89.0, 46.0));
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(by_id("Z9").is_none());
    }

    #[test]
    fn short_names_are_distinct() {
        assert_eq!(FavouredDataflow::InnerProduct.short_name(), "IP");
        assert_eq!(FavouredDataflow::OuterProduct.short_name(), "OP");
        assert_eq!(FavouredDataflow::Gustavson.short_name(), "Gust");
    }

    #[test]
    fn compressed_sizes_are_in_table6_ballpark() {
        // Table 6 reports csA/csB in KiB; our 4-byte elements put us within
        // a small factor. Spot-check the extremes.
        let v0 = by_id("V0").unwrap().spec.materialize(1);
        let cs_b_kib = v0.b.compressed_size_bytes() as f64 / 1024.0;
        assert!(
            cs_b_kib > 5_000.0,
            "V0 csB must be in the MiB range, got {cs_b_kib} KiB"
        );
        let mb = by_id("MB215").unwrap().spec.materialize(1);
        let cs_b_kib = mb.b.compressed_size_bytes() as f64 / 1024.0;
        assert!(
            cs_b_kib < 32.0,
            "MB215 csB must be tiny, got {cs_b_kib} KiB"
        );
    }
}
