//! The eight DNN models of Table 2.
//!
//! Each model is a list of [`LayerSpec`]s with realistic GEMM shapes for
//! its architecture and the per-model average sparsities of Table 2
//! (deterministic per-layer jitter mimics the published min/max spread).
//! The nine representative layers of Table 6 are pinned at their exact
//! published indices, dimensions and sparsities.
//!
//! Scaling note (see DESIGN.md §4): fully-connected and transformer
//! matmuls are uniformly scaled (e.g. DistilBERT hidden 768 → 256,
//! sequence 128 → 64) so the complete suite simulates in minutes; the
//! convolutional shapes — which produce the operand-size-to-cache ratios
//! the dataflow comparison hinges on — are kept at published scale.

use crate::LayerSpec;
use serde::{Deserialize, Serialize};

/// Application domain (Table 2's "Appl" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Computer vision (CV).
    ComputerVision,
    /// Object recognition (OR).
    ObjectRecognition,
    /// Natural language processing (NLP).
    Nlp,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ComputerVision => write!(f, "CV"),
            Self::ObjectRecognition => write!(f, "OR"),
            Self::Nlp => write!(f, "NLP"),
        }
    }
}

/// One DNN model: an ordered list of SpMSpM layer problems.
///
/// Serialize-only: the `&'static str` identifiers cannot be deserialized
/// from owned JSON text.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DnnModel {
    /// Full name ("Resnets-50").
    pub name: &'static str,
    /// Table 2 short code ("R").
    pub short: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// The layers, in execution order.
    pub layers: Vec<LayerSpec>,
}

/// Deterministic per-layer sparsity jitter in `[-6, +6]` percentage points,
/// mimicking the layer-to-layer spread of the published models.
fn jitter(index: u32) -> f64 {
    // Small multiplicative hash; spread over [-6, +6].
    let h = index.wrapping_mul(0x9e37_79b9).rotate_left(13) % 13;
    h as f64 - 6.0
}

fn clamp_sp(sp: f64) -> f64 {
    sp.clamp(0.0, 99.5)
}

/// Builds a layer list from `(m, k, n)` shapes with jittered sparsities.
fn layers_from_shapes(
    shapes: &[(u32, u32, u32)],
    names: impl Fn(u32) -> String,
    sp_a: f64,
    sp_b: f64,
) -> Vec<LayerSpec> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, k, n))| {
            let i = i as u32;
            LayerSpec::new(
                i,
                names(i),
                m,
                k,
                n,
                clamp_sp(sp_a + jitter(i)),
                clamp_sp(sp_b + jitter(i.wrapping_add(101))),
            )
        })
        .collect()
}

/// Pins a layer to exact Table 6 dimensions and sparsities.
#[allow(clippy::too_many_arguments)] // mirrors Table 6's column list
fn pin_layer(
    model: &mut DnnModel,
    index: usize,
    id: &str,
    m: u32,
    k: u32,
    n: u32,
    sp_a: f64,
    sp_b: f64,
) {
    let spec = &mut model.layers[index];
    *spec = LayerSpec::new(index as u32, id, m, k, n, sp_a, sp_b);
}

impl DnnModel {
    /// AlexNet (A): 7 layers, CV, spA ≈ 70%, spB ≈ 48%.
    pub fn alexnet() -> Self {
        let shapes = [
            (64, 363, 3025),
            (192, 1600, 729),
            (384, 1728, 121), // A2 pinned below
            (256, 3456, 169),
            (256, 2304, 169),
            (512, 2304, 64), // fc6, scaled (batch 64)
            (512, 512, 64),  // fc7, scaled
        ];
        let mut model = Self {
            name: "Alexnet",
            short: "A",
            domain: Domain::ComputerVision,
            layers: layers_from_shapes(&shapes, |i| format!("conv/fc{i}"), 70.0, 48.0),
        };
        pin_layer(&mut model, 2, "A2", 384, 1728, 121, 70.0, 54.0);
        model
    }

    /// SqueezeNet (S): 26 layers, CV, spA ≈ 70%, spB ≈ 31%.
    pub fn squeezenet() -> Self {
        let mut shapes: Vec<(u32, u32, u32)> = vec![(64, 147, 2916)]; // conv1
                                                                      // Eight fire modules: (squeeze 1x1, expand 1x1, expand 3x3).
        let fires: [(u32, u32, u32); 8] = [
            // (squeeze, expand, spatial)
            (16, 64, 2916),
            (16, 64, 2916),
            (32, 128, 729),
            (32, 128, 729),
            (48, 192, 169),
            (48, 192, 169),
            (64, 256, 169),
            (64, 256, 169),
        ];
        let mut c_in = 64;
        for &(s, e, n) in &fires {
            shapes.push((s, c_in, n)); // squeeze 1x1
            shapes.push((e, s, n)); // expand 1x1
            shapes.push((e, 9 * s, n)); // expand 3x3
            c_in = 2 * e;
        }
        shapes.push((100, 512, 169)); // conv10 (scaled classifier)
        let mut model = Self {
            name: "Squeezenet",
            short: "S",
            domain: Domain::ComputerVision,
            layers: layers_from_shapes(&shapes, |i| format!("fire{i}"), 70.0, 31.0),
        };
        pin_layer(&mut model, 5, "SQ5", 64, 16, 2916, 68.0, 11.0);
        pin_layer(&mut model, 11, "SQ11", 128, 32, 729, 70.0, 10.0);
        model
    }

    /// VGG-16 (V): 8 layers, CV, spA ≈ 90%, spB ≈ 80%.
    pub fn vgg16() -> Self {
        let shapes = [
            (128, 576, 12100), // V0 pinned below
            (128, 1152, 3025),
            (256, 1152, 3025),
            (256, 2304, 729),
            (512, 2304, 729),
            (512, 4608, 144),
            (512, 4608, 144),
            (512, 4608, 144), // V7 pinned below
        ];
        let mut model = Self {
            name: "VGG-16",
            short: "V",
            domain: Domain::ComputerVision,
            layers: layers_from_shapes(&shapes, |i| format!("conv{i}"), 90.0, 80.0),
        };
        pin_layer(&mut model, 0, "V0", 128, 576, 12100, 90.0, 61.0);
        pin_layer(&mut model, 7, "V7", 512, 4608, 144, 90.0, 94.0);
        model
    }

    /// ResNet-50 (R): 54 layers, CV, spA ≈ 89%, spB ≈ 52%.
    pub fn resnet50() -> Self {
        let mut shapes: Vec<(u32, u32, u32)> = vec![(64, 147, 3136)]; // conv1
                                                                      // (reduce 1x1, 3x3, expand 1x1) bottlenecks over four stages.
        let stages: [(u32, u32, u32, u32); 4] = [
            // (blocks, width, in_channels, spatial)
            (3, 64, 256, 3136),
            (4, 128, 512, 784),
            (6, 256, 1024, 196),
            (3, 512, 2048, 49),
        ];
        for &(blocks, w, c_out, n) in &stages {
            for _ in 0..blocks {
                shapes.push((w, c_out, n)); // 1x1 reduce
                shapes.push((w, 9 * w, n)); // 3x3
                shapes.push((c_out, w, n)); // 1x1 expand
            }
        }
        shapes.push((512, 2048, 16)); // pooled fc (scaled)
                                      // Downsample projections at each stage boundary bring the count to
                                      // the published 54.
        shapes.push((256, 64, 3136));
        shapes.push((512, 256, 784));
        shapes.push((1024, 512, 196));
        shapes.push((2048, 1024, 49));
        debug_assert_eq!(shapes.len(), 54);
        let mut model = Self {
            name: "Resnets-50",
            short: "R",
            domain: Domain::ComputerVision,
            layers: layers_from_shapes(&shapes, |i| format!("res{i}"), 89.0, 52.0),
        };
        pin_layer(&mut model, 4, "R4", 256, 64, 3136, 88.0, 9.0);
        pin_layer(&mut model, 6, "R6", 64, 576, 2916, 89.0, 53.0);
        model
    }

    /// SSD-ResNets (S-R): 37 layers, OR, spA ≈ 89%, spB ≈ 49%.
    pub fn ssd_resnets() -> Self {
        let mut shapes: Vec<(u32, u32, u32)> = vec![(64, 147, 5329)];
        // Backbone: reduced ResNet (9 bottlenecks).
        let stages: [(u32, u32, u32, u32); 3] =
            [(3, 64, 256, 5329), (3, 128, 512, 1369), (3, 256, 1024, 361)];
        for &(blocks, w, c_out, n) in &stages {
            for _ in 0..blocks {
                shapes.push((w, c_out, n));
                shapes.push((w, 9 * w, n));
                shapes.push((c_out, w, n));
            }
        }
        // Detection heads over multiple scales (last scale shares one
        // combined head, matching the published 37-layer count).
        for &(c, n) in &[(512u32, 361u32), (512, 100), (256, 100), (256, 25)] {
            shapes.push((24, c, n)); // class head (scaled)
            shapes.push((16, c, n)); // box head (scaled)
        }
        shapes.push((40, 256, 25)); // combined final head
        debug_assert_eq!(shapes.len(), 37);
        let mut model = Self {
            name: "SSD-Resnets",
            short: "S-R",
            domain: Domain::ObjectRecognition,
            layers: layers_from_shapes(&shapes, |i| format!("ssd_r{i}"), 89.0, 49.0),
        };
        pin_layer(&mut model, 3, "S-R3", 64, 576, 5329, 89.0, 46.0);
        model
    }

    /// SSD-MobileNets (S-M): 29 layers, OR, spA ≈ 74%, spB ≈ 35%.
    pub fn ssd_mobilenets() -> Self {
        // Pointwise (1x1) convolutions dominate MobileNet GEMMs.
        let mut shapes: Vec<(u32, u32, u32)> = vec![(32, 27, 5329)];
        let pw: [(u32, u32, u32); 13] = [
            (64, 32, 5329),
            (128, 64, 1369),
            (128, 128, 1369),
            (256, 128, 361),
            (256, 256, 361),
            (512, 256, 100),
            (512, 512, 100),
            (512, 512, 100),
            (512, 512, 100),
            (512, 512, 100),
            (512, 512, 100),
            (1024, 512, 25),
            (1024, 1024, 25),
        ];
        shapes.extend_from_slice(&pw);
        // Feature pyramid + heads.
        for &(c, n) in &[(512u32, 100u32), (256, 25), (256, 25), (128, 9), (128, 9)] {
            shapes.push((24, c, n));
            shapes.push((16, c, n));
        }
        shapes.extend_from_slice(&[
            (256, 512, 25),
            (128, 256, 9),
            (64, 128, 9),
            (64, 64, 9),
            (32, 64, 9),
        ]);
        debug_assert_eq!(shapes.len(), 29);
        Self {
            name: "SSD-Mobilenets",
            short: "S-M",
            domain: Domain::ObjectRecognition,
            layers: layers_from_shapes(&shapes, |i| format!("ssd_m{i}"), 74.0, 35.0),
        }
    }

    /// DistilBERT (DB): 36 layers, NLP, spA ≈ 50%, spB ≈ 0.04% (dense
    /// activations). Hidden 768 → 256 and sequence 128 → 64, uniformly
    /// scaled for simulation tractability.
    pub fn distilbert() -> Self {
        let mut shapes: Vec<(u32, u32, u32)> = Vec::new();
        for _ in 0..6 {
            shapes.push((256, 256, 64)); // Wq
            shapes.push((256, 256, 64)); // Wk
            shapes.push((256, 256, 64)); // Wv
            shapes.push((256, 256, 64)); // attn out
            shapes.push((1024, 256, 64)); // ffn up
            shapes.push((256, 1024, 64)); // ffn down
        }
        debug_assert_eq!(shapes.len(), 36);
        Self {
            name: "DistilBERT",
            short: "DB",
            domain: Domain::Nlp,
            layers: layers_from_shapes(&shapes, |i| format!("db{i}"), 50.0, 0.04),
        }
    }

    /// MobileBERT (MB): 316 layers, NLP, spA ≈ 50%, spB ≈ 11%. The tiny
    /// bottleneck width (128) and short sequence are what make Gustavson's
    /// win every layer in the paper's Fig. 1.
    pub fn mobilebert() -> Self {
        let mut shapes: Vec<(u32, u32, u32)> = vec![
            (128, 384, 8), // embedding projections
            (128, 128, 8),
            (128, 128, 8),
            (128, 128, 8),
        ];
        // 24 transformer blocks x 13 matmuls (bottleneck in/out, attention,
        // four stacked FFNs).
        let block: [(u32, u32, u32); 13] = [
            (128, 512, 8), // bottleneck in
            (128, 128, 8), // Wq
            (128, 128, 8), // Wk
            (128, 128, 8), // Wv
            (128, 128, 8), // attn out
            (512, 128, 8), // ffn1 up
            (128, 512, 8), // ffn1 down
            (512, 128, 8), // ffn2 up
            (128, 512, 8), // ffn2 down
            (512, 128, 8), // ffn3 up
            (128, 512, 8), // ffn3 down
            (512, 128, 8), // ffn4 up
            (512, 128, 8), // bottleneck out
        ];
        for _ in 0..24 {
            shapes.extend_from_slice(&block);
        }
        debug_assert_eq!(shapes.len(), 316);
        let mut model = Self {
            name: "MobileBERT",
            short: "MB",
            domain: Domain::Nlp,
            layers: layers_from_shapes(&shapes, |i| format!("mb{i}"), 50.0, 11.0),
        };
        pin_layer(&mut model, 215, "MB215", 128, 512, 8, 50.0, 0.0);
        model
    }

    /// Total layer count.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// The full eight-model suite in Table 2 order.
pub fn suite() -> Vec<DnnModel> {
    vec![
        DnnModel::alexnet(),
        DnnModel::squeezenet(),
        DnnModel::vgg16(),
        DnnModel::resnet50(),
        DnnModel::ssd_resnets(),
        DnnModel::ssd_mobilenets(),
        DnnModel::distilbert(),
        DnnModel::mobilebert(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table2() {
        let counts: Vec<(&str, usize)> =
            suite().iter().map(|m| (m.short, m.num_layers())).collect();
        assert_eq!(
            counts,
            vec![
                ("A", 7),
                ("S", 26),
                ("V", 8),
                ("R", 54),
                ("S-R", 37),
                ("S-M", 29),
                ("DB", 36),
                ("MB", 316),
            ]
        );
    }

    #[test]
    fn layer_indices_are_sequential() {
        for model in suite() {
            for (i, layer) in model.layers.iter().enumerate() {
                assert_eq!(layer.index, i as u32, "{} layer {i}", model.name);
            }
        }
    }

    #[test]
    fn table6_layers_are_pinned_in_their_models() {
        let sq = DnnModel::squeezenet();
        assert_eq!(
            (sq.layers[5].m, sq.layers[5].k, sq.layers[5].n),
            (64, 16, 2916)
        );
        assert_eq!(
            (sq.layers[11].m, sq.layers[11].k, sq.layers[11].n),
            (128, 32, 729)
        );
        let r = DnnModel::resnet50();
        assert_eq!(
            (r.layers[4].m, r.layers[4].k, r.layers[4].n),
            (256, 64, 3136)
        );
        assert_eq!(
            (r.layers[6].m, r.layers[6].k, r.layers[6].n),
            (64, 576, 2916)
        );
        let sr = DnnModel::ssd_resnets();
        assert_eq!(
            (sr.layers[3].m, sr.layers[3].k, sr.layers[3].n),
            (64, 576, 5329)
        );
        let v = DnnModel::vgg16();
        assert_eq!(
            (v.layers[0].m, v.layers[0].k, v.layers[0].n),
            (128, 576, 12100)
        );
        assert_eq!(
            (v.layers[7].m, v.layers[7].k, v.layers[7].n),
            (512, 4608, 144)
        );
        let a = DnnModel::alexnet();
        assert_eq!(
            (a.layers[2].m, a.layers[2].k, a.layers[2].n),
            (384, 1728, 121)
        );
        let mb = DnnModel::mobilebert();
        assert_eq!(
            (mb.layers[215].m, mb.layers[215].k, mb.layers[215].n),
            (128, 512, 8)
        );
    }

    #[test]
    fn sparsities_hover_around_table2_averages() {
        for (model, want_a, want_b) in [
            (DnnModel::alexnet(), 70.0, 48.0),
            (DnnModel::vgg16(), 90.0, 80.0),
            (DnnModel::distilbert(), 50.0, 0.04),
        ] {
            let avg_a: f64 =
                model.layers.iter().map(|l| l.sp_a).sum::<f64>() / model.num_layers() as f64;
            let avg_b: f64 =
                model.layers.iter().map(|l| l.sp_b).sum::<f64>() / model.num_layers() as f64;
            assert!(
                (avg_a - want_a).abs() < 8.0,
                "{}: avg spA {avg_a}",
                model.name
            );
            assert!(
                (avg_b - want_b).abs() < 10.0,
                "{}: avg spB {avg_b}",
                model.name
            );
        }
    }

    #[test]
    fn domains_match_table2() {
        let domains: Vec<Domain> = suite().iter().map(|m| m.domain).collect();
        assert_eq!(
            domains,
            vec![
                Domain::ComputerVision,
                Domain::ComputerVision,
                Domain::ComputerVision,
                Domain::ComputerVision,
                Domain::ObjectRecognition,
                Domain::ObjectRecognition,
                Domain::Nlp,
                Domain::Nlp,
            ]
        );
    }

    #[test]
    fn jitter_is_bounded() {
        for i in 0..500 {
            let j = jitter(i);
            assert!((-6.0..=6.0).contains(&j));
        }
    }

    #[test]
    fn every_layer_materializes() {
        // Spot-check the smallest model end to end.
        let model = DnnModel::alexnet();
        for layer in &model.layers {
            let m = layer.materialize(1);
            assert_eq!(m.a.rows(), layer.m);
            assert_eq!(m.b.cols(), layer.n);
        }
    }
}
