//! The sparse DNN workload suite (paper Tables 2 and 6).
//!
//! The paper evaluates on eight pruned DNN models from MLPerf and beyond:
//! AlexNet, SqueezeNet, VGG-16, ResNet-50, SSD-ResNets, SSD-MobileNets,
//! DistilBERT and MobileBERT. We do not have the checkpoints; this crate
//! reconstructs each model as a list of per-layer SpMSpM problems
//! ([`LayerSpec`]) with the published GEMM dimensions and per-model
//! sparsity ratios (Table 2), materialized as unstructured-random sparse
//! matrices from a deterministic seed.
//!
//! The nine representative layers of Table 6 are embedded at their exact
//! published dimensions and sparsities — both inside their parent models
//! (e.g. `V0` is layer 0 of [`DnnModel::vgg16`]) and directly via
//! [`table6::layers`].
//!
//! Very large fully-connected / transformer layers are scaled down so the
//! whole suite simulates in minutes on a laptop; the scaling is uniform and
//! documented per model, and preserves the features that drive dataflow
//! choice (dimension ratios, sparsity degrees, operand-size-to-cache
//! ratios). See DESIGN.md §4.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod layer;
mod models;
mod stats;
pub mod table6;

pub use layer::{LayerMatrices, LayerSpec};
pub use models::{suite, DnnModel, Domain};
pub use stats::{AgreementStats, ModelStats};
