//! Per-layer SpMSpM problem specifications and their materialization.

use flexagon_sparse::{gen, CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One DNN layer as an SpMSpM problem `C[M,N] = A[M,K] x B[K,N]`.
///
/// Following the paper's convention (Table 6), `A` holds the pruned weights
/// (sparsity `sp_a`) and `B` the post-ReLU activations (sparsity `sp_b`),
/// both expressed in percent of zero entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer index within its model.
    pub index: u32,
    /// Human-readable layer name (e.g. `"conv2_1"`).
    pub name: String,
    /// Output rows (e.g. output channels).
    pub m: u32,
    /// Shared dimension (e.g. `in_channels x kh x kw`).
    pub k: u32,
    /// Output columns (e.g. `out_h x out_w`).
    pub n: u32,
    /// Weight sparsity in percent (`100 x` fraction of zeros).
    pub sp_a: f64,
    /// Activation sparsity in percent.
    pub sp_b: f64,
}

impl LayerSpec {
    /// Creates a layer spec.
    ///
    /// # Panics
    ///
    /// Panics if a sparsity lies outside `[0, 100]` or a dimension is zero.
    pub fn new(
        index: u32,
        name: impl Into<String>,
        m: u32,
        k: u32,
        n: u32,
        sp_a: f64,
        sp_b: f64,
    ) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "dimensions must be positive");
        assert!((0.0..=100.0).contains(&sp_a), "sp_a must be a percentage");
        assert!((0.0..=100.0).contains(&sp_b), "sp_b must be a percentage");
        Self {
            index,
            name: name.into(),
            m,
            k,
            n,
            sp_a,
            sp_b,
        }
    }

    /// Densities `(A, B)` implied by the sparsities.
    pub fn densities(&self) -> (f64, f64) {
        (1.0 - self.sp_a / 100.0, 1.0 - self.sp_b / 100.0)
    }

    /// Expected non-zeros of A.
    pub fn expected_nnz_a(&self) -> u64 {
        (self.m as f64 * self.k as f64 * self.densities().0) as u64
    }

    /// Expected non-zeros of B.
    pub fn expected_nnz_b(&self) -> u64 {
        (self.k as f64 * self.n as f64 * self.densities().1) as u64
    }

    /// Generates the layer's matrices (A and B, both CSR) from a
    /// deterministic seed.
    pub fn materialize(&self, seed: u64) -> LayerMatrices {
        // Distinct streams for A and B so changing one dimension does not
        // reshuffle the other operand.
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed ^ (u64::from(self.index) << 32));
        let mut rng_b =
            ChaCha8Rng::seed_from_u64(seed ^ (u64::from(self.index) << 32) ^ 0x9e37_79b9);
        let (da, db) = self.densities();
        LayerMatrices {
            a: gen::random(self.m, self.k, da, MajorOrder::Row, &mut rng_a),
            b: gen::random(self.k, self.n, db, MajorOrder::Row, &mut rng_b),
        }
    }
}

impl std::fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}x{}x{}] spA={:.0}% spB={:.0}%",
            self.name, self.m, self.k, self.n, self.sp_a, self.sp_b
        )
    }
}

/// The materialized operands of one layer.
#[derive(Debug, Clone)]
pub struct LayerMatrices {
    /// Weights, `M x K`, CSR.
    pub a: CompressedMatrix,
    /// Activations, `K x N`, CSR.
    pub b: CompressedMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LayerSpec {
        LayerSpec::new(3, "conv", 32, 64, 49, 70.0, 40.0)
    }

    #[test]
    fn densities_invert_sparsities() {
        let (da, db) = spec().densities();
        assert!((da - 0.3).abs() < 1e-12);
        assert!((db - 0.6).abs() < 1e-12);
    }

    #[test]
    fn materialize_has_right_shapes_and_formats() {
        let m = spec().materialize(42);
        assert_eq!((m.a.rows(), m.a.cols()), (32, 64));
        assert_eq!((m.b.rows(), m.b.cols()), (64, 49));
        assert_eq!(m.a.order(), MajorOrder::Row);
        assert_eq!(m.b.order(), MajorOrder::Row);
    }

    #[test]
    fn materialize_is_deterministic() {
        let x = spec().materialize(42);
        let y = spec().materialize(42);
        assert_eq!(x.a, y.a);
        assert_eq!(x.b, y.b);
    }

    #[test]
    fn different_seeds_differ() {
        let x = spec().materialize(1);
        let y = spec().materialize(2);
        assert_ne!(x.a, y.a);
    }

    #[test]
    fn sparsity_is_close_to_spec() {
        let big = LayerSpec::new(0, "big", 200, 200, 200, 70.0, 40.0);
        let m = big.materialize(7);
        assert!((m.a.sparsity_percent() - 70.0).abs() < 2.0);
        assert!((m.b.sparsity_percent() - 40.0).abs() < 2.0);
    }

    #[test]
    fn expected_nnz_matches_generation_roughly() {
        let s = LayerSpec::new(0, "x", 100, 100, 100, 50.0, 50.0);
        let m = s.materialize(3);
        let want = s.expected_nnz_a() as f64;
        assert!((m.a.nnz() as f64 - want).abs() < want * 0.1);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bad_sparsity_rejected() {
        LayerSpec::new(0, "x", 1, 1, 1, 150.0, 0.0);
    }

    #[test]
    fn display_contains_dims() {
        assert!(format!("{}", spec()).contains("[32x64x49]"));
    }
}
