//! Per-model workload statistics — the measured columns of Table 2.

use crate::DnnModel;
use flexagon_sparse::stats::MatrixStats;
use serde::Serialize;

/// One Table 2 row computed over a materialized model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelStats {
    /// Model short code ("A", "V", ...).
    pub short: &'static str,
    /// Number of layers (nl).
    pub num_layers: usize,
    /// Average sparsity of A across layers, percent (AvSpA).
    pub avg_sp_a: f64,
    /// Average sparsity of B across layers, percent (AvSpB).
    pub avg_sp_b: f64,
    /// Average compressed size of A in MiB (AvCsA).
    pub avg_cs_a_mib: f64,
    /// Average compressed size of B in MiB (AvCsB).
    pub avg_cs_b_mib: f64,
    /// Minimum compressed size of A in MiB (MinCsA).
    pub min_cs_a_mib: f64,
    /// Minimum compressed size of B in MiB (MinCsB).
    pub min_cs_b_mib: f64,
    /// Maximum compressed size of A in MiB (MaxCsA).
    pub max_cs_a_mib: f64,
    /// Maximum compressed size of B in MiB (MaxCsB).
    pub max_cs_b_mib: f64,
}

impl ModelStats {
    /// Materializes every layer of `model` with `seed` and aggregates the
    /// Table 2 statistics.
    pub fn measure(model: &DnnModel, seed: u64) -> Self {
        let mut sp_a = 0.0;
        let mut sp_b = 0.0;
        let mut cs_a = Vec::with_capacity(model.layers.len());
        let mut cs_b = Vec::with_capacity(model.layers.len());
        for layer in &model.layers {
            let mats = layer.materialize(seed);
            let sa = MatrixStats::of(&mats.a);
            let sb = MatrixStats::of(&mats.b);
            sp_a += sa.sparsity_percent;
            sp_b += sb.sparsity_percent;
            cs_a.push(sa.compressed_mib());
            cs_b.push(sb.compressed_mib());
        }
        let n = model.layers.len() as f64;
        let minmax = |v: &[f64]| {
            (
                v.iter().copied().fold(f64::INFINITY, f64::min),
                v.iter().copied().fold(0.0, f64::max),
            )
        };
        let (min_a, max_a) = minmax(&cs_a);
        let (min_b, max_b) = minmax(&cs_b);
        Self {
            short: model.short,
            num_layers: model.layers.len(),
            avg_sp_a: sp_a / n,
            avg_sp_b: sp_b / n,
            avg_cs_a_mib: cs_a.iter().sum::<f64>() / n,
            avg_cs_b_mib: cs_b.iter().sum::<f64>() / n,
            min_cs_a_mib: min_a,
            min_cs_b_mib: min_b,
            max_cs_a_mib: max_a,
            max_cs_b_mib: max_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_stats_are_sane() {
        let stats = ModelStats::measure(&DnnModel::alexnet(), 1);
        assert_eq!(stats.num_layers, 7);
        assert!(
            (stats.avg_sp_a - 70.0).abs() < 8.0,
            "spA = {}",
            stats.avg_sp_a
        );
        assert!(stats.min_cs_a_mib <= stats.avg_cs_a_mib);
        assert!(stats.avg_cs_a_mib <= stats.max_cs_a_mib);
        assert!(stats.max_cs_b_mib > 0.0);
    }

    #[test]
    fn mobilebert_matrices_are_tiny() {
        let stats = ModelStats::measure(&DnnModel::mobilebert(), 1);
        assert!(
            stats.avg_cs_b_mib < 0.1,
            "MB csB avg {}",
            stats.avg_cs_b_mib
        );
        assert!(stats.max_cs_a_mib < 1.0);
    }

    #[test]
    fn vgg_has_the_largest_activations() {
        let vgg = ModelStats::measure(&DnnModel::vgg16(), 1);
        let mb = ModelStats::measure(&DnnModel::mobilebert(), 1);
        assert!(vgg.max_cs_b_mib > 20.0 * mb.max_cs_b_mib);
    }
}
