//! Per-model workload statistics — the measured columns of Table 2.

use crate::DnnModel;
use flexagon_sparse::stats::MatrixStats;
use serde::Serialize;

/// One Table 2 row computed over a materialized model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelStats {
    /// Model short code ("A", "V", ...).
    pub short: &'static str,
    /// Number of layers (nl).
    pub num_layers: usize,
    /// Average sparsity of A across layers, percent (AvSpA).
    pub avg_sp_a: f64,
    /// Average sparsity of B across layers, percent (AvSpB).
    pub avg_sp_b: f64,
    /// Average compressed size of A in MiB (AvCsA).
    pub avg_cs_a_mib: f64,
    /// Average compressed size of B in MiB (AvCsB).
    pub avg_cs_b_mib: f64,
    /// Minimum compressed size of A in MiB (MinCsA).
    pub min_cs_a_mib: f64,
    /// Minimum compressed size of B in MiB (MinCsB).
    pub min_cs_b_mib: f64,
    /// Maximum compressed size of A in MiB (MaxCsA).
    pub max_cs_a_mib: f64,
    /// Maximum compressed size of B in MiB (MaxCsB).
    pub max_cs_b_mib: f64,
}

impl ModelStats {
    /// Materializes every layer of `model` with `seed` and aggregates the
    /// Table 2 statistics.
    pub fn measure(model: &DnnModel, seed: u64) -> Self {
        let mut sp_a = 0.0;
        let mut sp_b = 0.0;
        let mut cs_a = Vec::with_capacity(model.layers.len());
        let mut cs_b = Vec::with_capacity(model.layers.len());
        for layer in &model.layers {
            let mats = layer.materialize(seed);
            let sa = MatrixStats::of(&mats.a);
            let sb = MatrixStats::of(&mats.b);
            sp_a += sa.sparsity_percent;
            sp_b += sb.sparsity_percent;
            cs_a.push(sa.compressed_mib());
            cs_b.push(sb.compressed_mib());
        }
        let n = model.layers.len() as f64;
        let minmax = |v: &[f64]| {
            (
                v.iter().copied().fold(f64::INFINITY, f64::min),
                v.iter().copied().fold(0.0, f64::max),
            )
        };
        let (min_a, max_a) = minmax(&cs_a);
        let (min_b, max_b) = minmax(&cs_b);
        Self {
            short: model.short,
            num_layers: model.layers.len(),
            avg_sp_a: sp_a / n,
            avg_sp_b: sp_b / n,
            avg_cs_a_mib: cs_a.iter().sum::<f64>() / n,
            avg_cs_b_mib: cs_b.iter().sum::<f64>() / n,
            min_cs_a_mib: min_a,
            min_cs_b_mib: min_b,
            max_cs_a_mib: max_a,
            max_cs_b_mib: max_b,
        }
    }
}

/// Running top-1 agreement and cycle-regret statistics for a dataflow
/// selector audited against an oracle (the mapper-accuracy report's
/// aggregation unit, one per model or scenario family plus one overall).
///
/// *Agreement* is the fraction of cases where the selector picked the
/// oracle's winner; *regret* is `selected_cycles / oracle_cycles ≥ 1`, so
/// a geomean regret of 1.0 means the selector never cost anything even
/// where it disagreed (ties), and 1.15 means 15% mean slowdown.
#[derive(Debug, Clone, Default)]
pub struct AgreementStats {
    /// Number of recorded cases.
    pub cases: usize,
    /// Cases where the selector matched the oracle's top-1 choice.
    pub agreements: usize,
    log_regret_sum: f64,
    max_regret: f64,
    worst: Option<String>,
}

impl AgreementStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one audited case.
    ///
    /// # Panics
    ///
    /// Panics if `regret < 1` (the oracle is by definition no slower than
    /// any selection) or is not finite.
    pub fn record(&mut self, label: &str, agrees: bool, regret: f64) {
        assert!(
            regret.is_finite() && regret >= 1.0,
            "regret must be a finite ratio >= 1, got {regret} for {label}"
        );
        self.cases += 1;
        if agrees {
            self.agreements += 1;
        }
        self.log_regret_sum += regret.ln();
        if regret > self.max_regret {
            self.max_regret = regret;
            self.worst = Some(label.to_owned());
        }
    }

    /// Folds another accumulator into this one (e.g. per-group stats into
    /// the overall row). The worst case is kept from whichever side has the
    /// larger max regret.
    pub fn merge(&mut self, other: &AgreementStats) {
        self.cases += other.cases;
        self.agreements += other.agreements;
        self.log_regret_sum += other.log_regret_sum;
        if other.max_regret > self.max_regret {
            self.max_regret = other.max_regret;
            self.worst = other.worst.clone();
        }
    }

    /// Top-1 agreement as a fraction in `[0, 1]` (1.0 when empty).
    pub fn top1_fraction(&self) -> f64 {
        if self.cases == 0 {
            1.0
        } else {
            self.agreements as f64 / self.cases as f64
        }
    }

    /// Geometric-mean regret (1.0 when empty).
    pub fn geomean_regret(&self) -> f64 {
        if self.cases == 0 {
            1.0
        } else {
            (self.log_regret_sum / self.cases as f64).exp()
        }
    }

    /// Largest single-case regret (1.0 when empty).
    pub fn max_regret(&self) -> f64 {
        if self.cases == 0 {
            1.0
        } else {
            self.max_regret
        }
    }

    /// Label of the worst-regret case, if any case was recorded.
    pub fn worst_case(&self) -> Option<&str> {
        self.worst.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_stats_are_sane() {
        let stats = ModelStats::measure(&DnnModel::alexnet(), 1);
        assert_eq!(stats.num_layers, 7);
        assert!(
            (stats.avg_sp_a - 70.0).abs() < 8.0,
            "spA = {}",
            stats.avg_sp_a
        );
        assert!(stats.min_cs_a_mib <= stats.avg_cs_a_mib);
        assert!(stats.avg_cs_a_mib <= stats.max_cs_a_mib);
        assert!(stats.max_cs_b_mib > 0.0);
    }

    #[test]
    fn mobilebert_matrices_are_tiny() {
        let stats = ModelStats::measure(&DnnModel::mobilebert(), 1);
        assert!(
            stats.avg_cs_b_mib < 0.1,
            "MB csB avg {}",
            stats.avg_cs_b_mib
        );
        assert!(stats.max_cs_a_mib < 1.0);
    }

    #[test]
    fn vgg_has_the_largest_activations() {
        let vgg = ModelStats::measure(&DnnModel::vgg16(), 1);
        let mb = ModelStats::measure(&DnnModel::mobilebert(), 1);
        assert!(vgg.max_cs_b_mib > 20.0 * mb.max_cs_b_mib);
    }

    #[test]
    fn agreement_stats_aggregate_correctly() {
        let mut s = AgreementStats::new();
        assert_eq!(s.top1_fraction(), 1.0);
        assert_eq!(s.geomean_regret(), 1.0);
        assert_eq!(s.max_regret(), 1.0);
        s.record("a", true, 1.0);
        s.record("b", false, 4.0);
        assert_eq!(s.cases, 2);
        assert_eq!(s.agreements, 1);
        assert!((s.top1_fraction() - 0.5).abs() < 1e-12);
        assert!((s.geomean_regret() - 2.0).abs() < 1e-12, "sqrt(1*4)");
        assert_eq!(s.max_regret(), 4.0);
        assert_eq!(s.worst_case(), Some("b"));
    }

    #[test]
    fn agreement_stats_merge_matches_flat_recording() {
        let mut left = AgreementStats::new();
        left.record("x", true, 1.2);
        let mut right = AgreementStats::new();
        right.record("y", false, 1.8);
        right.record("z", true, 1.0);
        let mut merged = left.clone();
        merged.merge(&right);
        let mut flat = AgreementStats::new();
        flat.record("x", true, 1.2);
        flat.record("y", false, 1.8);
        flat.record("z", true, 1.0);
        assert_eq!(merged.cases, flat.cases);
        assert_eq!(merged.agreements, flat.agreements);
        assert!((merged.geomean_regret() - flat.geomean_regret()).abs() < 1e-12);
        assert_eq!(merged.max_regret(), flat.max_regret());
        assert_eq!(merged.worst_case(), Some("y"));
    }

    #[test]
    #[should_panic(expected = "regret must be")]
    fn agreement_stats_reject_sub_unity_regret() {
        AgreementStats::new().record("bad", true, 0.5);
    }
}
