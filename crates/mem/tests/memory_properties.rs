//! Property-based tests for the memory hierarchy: the PSRAM must behave as
//! a lossless multimap of psum fibers under any interleaving, and the cache
//! must agree with an ideal reference model on hit/miss classification.

use flexagon_mem::{CacheConfig, Dram, Psram, PsramConfig, StrCache};
use flexagon_sparse::Element;
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

proptest! {
    /// Any interleaving of partial writes to multiple (row, k) fibers is
    /// read back exactly, in write order, regardless of spills.
    #[test]
    fn psram_is_a_lossless_fiber_multimap(
        ops in proptest::collection::vec((0u32..6, 0u32..4, 1usize..12), 1..60),
    ) {
        let mut psram = Psram::new(PsramConfig {
            capacity_bytes: 256, // tiny: forces constant spilling
            block_bytes: 16,
            num_sets: 4,
            banks: 1,
        });
        let mut dram = Dram::with_defaults();
        let mut model: HashMap<(u32, u32), Vec<Element>> = HashMap::new();
        let mut next_coord: HashMap<(u32, u32), u32> = HashMap::new();
        for (row, k, burst) in ops {
            // Coordinates must ascend within a fiber: track a cursor.
            let cursor = next_coord.entry((row, k)).or_insert(0);
            let elems: Vec<Element> = (0..burst as u32)
                .map(|i| Element::new(*cursor + i, (*cursor + i) as f32))
                .collect();
            *cursor += burst as u32;
            psram.partial_write_fiber(row, k, &elems, &mut dram);
            model.entry((row, k)).or_default().extend(elems);
        }
        for ((row, k), want) in model {
            let got = psram.consume_fiber(row, k, &mut dram).into_inner();
            prop_assert_eq!(got, want, "fiber ({}, {})", row, k);
        }
        prop_assert!(psram.is_empty());
    }

    /// PSRAM traffic accounting: written == read when everything is
    /// consumed (and both equal the total element count).
    #[test]
    fn psram_conserves_elements(
        fibers in proptest::collection::vec((0u32..8, 0u32..3, 1usize..20), 1..20),
    ) {
        let mut psram = Psram::with_defaults();
        let mut dram = Dram::with_defaults();
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        for (row, k, len) in fibers {
            if !seen.insert((row, k)) {
                continue; // one write burst per fiber keeps coords sorted
            }
            let elems: Vec<Element> =
                (0..len as u32).map(|i| Element::new(i, 1.0)).collect();
            psram.partial_write_fiber(row, k, &elems, &mut dram);
            total += len as u64;
        }
        prop_assert_eq!(psram.written_elements(), total);
        for row in psram.rows_with_data() {
            for k in psram.fiber_tags_of_row(row) {
                psram.consume_fiber(row, k, &mut dram);
            }
        }
        // On-chip reads + spilled reloads cover every element exactly once.
        let spilled = psram.usage().spilled_elements;
        prop_assert_eq!(psram.read_elements() + spilled, total);
    }

    /// The set-associative cache never reports a hit that a fully
    /// associative cache of unlimited size would classify as a first touch.
    #[test]
    fn cache_hits_imply_prior_touch(
        lines in proptest::collection::vec(0u64..64, 1..120),
    ) {
        let mut cache = StrCache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            associativity: 2,
            banks: 1,
        });
        let mut dram = Dram::with_defaults();
        let mut touched = std::collections::HashSet::new();
        for &line in &lines {
            let hit = cache.access_line(line, &mut dram);
            if hit {
                prop_assert!(touched.contains(&line), "hit on never-touched line {line}");
            }
            touched.insert(line);
        }
    }

    /// LRU within a set: the cache behaves exactly like a per-set LRU queue
    /// reference model.
    #[test]
    fn cache_matches_lru_reference(
        lines in proptest::collection::vec(0u64..48, 1..200),
    ) {
        let cfg = CacheConfig {
            capacity_bytes: 512,
            line_bytes: 16,
            associativity: 4,
            banks: 1,
        };
        let sets = cfg.num_sets();
        let mut cache = StrCache::new(cfg);
        let mut dram = Dram::with_defaults();
        let mut model: Vec<VecDeque<u64>> = vec![VecDeque::new(); sets as usize];
        for &line in &lines {
            let set = (line % sets) as usize;
            let model_hit = model[set].contains(&line);
            let hit = cache.access_line(line, &mut dram);
            prop_assert_eq!(hit, model_hit, "line {} divergence", line);
            if model_hit {
                model[set].retain(|&l| l != line);
            } else if model[set].len() == 4 {
                model[set].pop_front();
            }
            model[set].push_back(line);
        }
    }

    /// Fill traffic equals misses times the line size.
    #[test]
    fn fill_traffic_is_miss_lines(
        ranges in proptest::collection::vec((0u64..2000, 1u64..50), 1..40),
    ) {
        let mut cache = StrCache::with_defaults();
        let mut dram = Dram::with_defaults();
        let mut misses = 0u64;
        for (start, len) in ranges {
            let out = cache.read_range(start, len, &mut dram);
            misses += out.misses;
        }
        prop_assert_eq!(cache.fill_bytes(), misses * 128);
        prop_assert_eq!(dram.read_bytes(), cache.fill_bytes());
    }
}
