//! Output write buffer (paper §3.4, `Write(Offset, E)`).
//!
//! "We also augment our memory structure with a FIFO which is used as a
//! write buffer to hide the latency of sending out final output fibers to
//! DRAM."

use crate::Dram;
use flexagon_sparse::ELEMENT_BYTES;

/// FIFO write buffer for final output fibers.
///
/// Final (fully merged) elements leave the MRN root, pass through this
/// buffer and stream to DRAM; the buffer hides the store latency, so the
/// model is a traffic meter.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    written_elements: u64,
}

impl WriteBuffer {
    /// Creates an empty write buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes `elements` final output elements through to DRAM.
    ///
    /// Returns the bytes written (which also accrue on `dram`).
    pub fn write(&mut self, elements: u64, dram: &mut Dram) -> u64 {
        if elements == 0 {
            return 0;
        }
        let bytes = elements * ELEMENT_BYTES;
        dram.write(bytes);
        self.written_elements += elements;
        bytes
    }

    /// Total final output elements written.
    pub fn written_elements(&self) -> u64 {
        self.written_elements
    }

    /// Total final output bytes written.
    pub fn written_bytes(&self) -> u64 {
        self.written_elements * ELEMENT_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_counts_bytes() {
        let mut w = WriteBuffer::new();
        let mut dram = Dram::with_defaults();
        assert_eq!(w.write(10, &mut dram), 40);
        assert_eq!(w.written_elements(), 10);
        assert_eq!(w.written_bytes(), 40);
        assert_eq!(dram.written_bytes(), 40);
    }

    #[test]
    fn write_zero_is_free() {
        let mut w = WriteBuffer::new();
        let mut dram = Dram::with_defaults();
        assert_eq!(w.write(0, &mut dram), 0);
        assert_eq!(dram.write_requests(), 0);
    }

    #[test]
    fn writes_accumulate() {
        let mut w = WriteBuffer::new();
        let mut dram = Dram::with_defaults();
        w.write(3, &mut dram);
        w.write(4, &mut dram);
        assert_eq!(w.written_elements(), 7);
    }
}
