//! The streaming-matrix set-associative cache (paper §3.4).
//!
//! "To factor the worst-case Gust dataflow, we implement the memory
//! structure for the streaming matrix as a traditional read-only
//! set-associative cache. However, we implement this cache to operate on a
//! virtual address space relative to the beginning of the streaming matrix."
//!
//! Addresses handed to the cache are therefore *element offsets* within the
//! streaming matrix's data vector, scaled to bytes — no translation state is
//! needed and tags stay short, exactly as the paper argues.

use crate::Dram;
use flexagon_sim::Ratio;
use flexagon_sparse::ELEMENT_BYTES;
use serde::{Deserialize, Serialize};

/// Streaming-cache geometry (defaults are Table 5's values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (1 MiB).
    pub capacity_bytes: u64,
    /// Line size in bytes (128).
    pub line_bytes: u64,
    /// Associativity (16 ways).
    pub associativity: u32,
    /// Number of banks (16) — determines peak read bandwidth.
    pub banks: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn num_sets(&self) -> u64 {
        let per_set = self.line_bytes * self.associativity as u64;
        assert!(
            per_set > 0 && self.capacity_bytes.is_multiple_of(per_set),
            "capacity must be a multiple of line_bytes * associativity"
        );
        self.capacity_bytes / per_set
    }

    /// Elements per cache line.
    pub fn elements_per_line(&self) -> u64 {
        self.line_bytes / ELEMENT_BYTES
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 1 << 20,
            line_bytes: 128,
            associativity: 16,
            banks: 16,
        }
    }
}

/// Result of a ranged cache access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Distinct lines touched by the access.
    pub lines: u64,
    /// Lines that hit.
    pub hits: u64,
    /// Lines that missed and were filled from DRAM.
    pub misses: u64,
}

impl AccessOutcome {
    /// Folds another outcome into this one.
    pub fn merge(&mut self, other: AccessOutcome) {
        self.lines += other.lines;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Read-only set-associative LRU cache for the streaming (STR) matrix.
///
/// Simulated line-by-line: every access probes real tag state, so miss rates
/// (Fig. 15) and fill traffic (Fig. 16) emerge from the actual access
/// stream rather than an analytical estimate.
#[derive(Debug, Clone)]
pub struct StrCache {
    cfg: CacheConfig,
    /// `sets[s]` holds up to `associativity` line tags in LRU order
    /// (most-recently-used last).
    sets: Vec<Vec<u64>>,
    stats: Ratio,
    fill_bytes: u64,
    onchip_bytes: u64,
}

impl StrCache {
    /// Creates a cache with the given geometry, initially empty.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(cfg.associativity as usize); cfg.num_sets() as usize];
        Self {
            cfg,
            sets,
            stats: Ratio::new(),
            fill_bytes: 0,
            onchip_bytes: 0,
        }
    }

    /// Creates a cache with the paper's Table 5 geometry.
    pub fn with_defaults() -> Self {
        Self::new(CacheConfig::default())
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Invalidates all lines (used when a new streaming matrix is bound,
    /// since the virtual address space restarts at zero).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Probes the line containing virtual byte address `addr`, recording
    /// one element-granularity access in the statistics.
    ///
    /// On a miss the line is filled from `dram` and becomes MRU; on a hit it
    /// is promoted to MRU. Returns `true` on hit.
    pub fn access_byte(&mut self, addr: u64, dram: &mut Dram) -> bool {
        let line = addr / self.cfg.line_bytes;
        let hit = self.access_line(line, dram);
        self.stats.record(hit);
        hit
    }

    /// Probes line index `line` directly (no statistics recorded — the
    /// paper's Fig. 15 miss rate is per element access, which
    /// [`StrCache::read_range`] and [`StrCache::access_byte`] account for).
    pub fn access_line(&mut self, line: u64, dram: &mut Dram) -> bool {
        let num_sets = self.cfg.num_sets();
        let set_idx = (line % num_sets) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&tag| tag == line) {
            let tag = set.remove(pos);
            set.push(tag);
            true
        } else {
            if set.len() == self.cfg.associativity as usize {
                set.remove(0); // evict LRU; read-only, so no write-back
            }
            set.push(line);
            dram.read(self.cfg.line_bytes);
            self.fill_bytes += self.cfg.line_bytes;
            false
        }
    }

    /// Reads `n_elements` consecutive elements starting at element offset
    /// `first_element` of the streaming matrix, probing each touched line
    /// once and counting on-chip delivery traffic.
    ///
    /// This is the tile-reader STR operation for sequential fiber reads.
    pub fn read_range(
        &mut self,
        first_element: u64,
        n_elements: u64,
        dram: &mut Dram,
    ) -> AccessOutcome {
        if n_elements == 0 {
            return AccessOutcome::default();
        }
        let per_line = self.cfg.line_bytes / ELEMENT_BYTES;
        let first_line = first_element * ELEMENT_BYTES / self.cfg.line_bytes;
        let last_line = (first_element + n_elements - 1) * ELEMENT_BYTES / self.cfg.line_bytes;
        let mut out = AccessOutcome::default();
        for line in first_line..=last_line {
            // Elements of the requested range that live in this line: the
            // hit/miss statistics are per element access (Fig. 15's metric),
            // while fills and `AccessOutcome` stay at line granularity.
            let lo = (line * per_line).max(first_element);
            let hi = ((line + 1) * per_line).min(first_element + n_elements);
            let elems = hi - lo;
            out.lines += 1;
            if self.access_line(line, dram) {
                out.hits += 1;
                self.stats.record_many(elems, elems);
            } else {
                // The first element access takes the miss; once the line is
                // resident the remaining accesses to it hit.
                out.misses += 1;
                self.stats.record_many(elems - 1, elems);
            }
        }
        self.onchip_bytes += n_elements * ELEMENT_BYTES;
        out
    }

    /// Lifetime hit/miss statistics (element-granularity accesses).
    pub fn stats(&self) -> Ratio {
        self.stats
    }

    /// Miss rate over all element accesses so far (Fig. 15's metric).
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }

    /// Bytes filled from DRAM (Fig. 16's off-chip traffic contribution).
    pub fn fill_bytes(&self) -> u64 {
        self.fill_bytes
    }

    /// Bytes delivered on-chip to the datapath (Fig. 14's STR bars).
    pub fn onchip_bytes(&self) -> u64 {
        self.onchip_bytes
    }
}

impl Default for StrCache {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StrCache {
        // 4 sets * 2 ways * 16B lines = 128 bytes.
        StrCache::new(CacheConfig {
            capacity_bytes: 128,
            line_bytes: 16,
            associativity: 2,
            banks: 1,
        })
    }

    #[test]
    fn default_geometry_matches_table5() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.capacity_bytes, 1 << 20);
        assert_eq!(cfg.line_bytes, 128);
        assert_eq!(cfg.associativity, 16);
        assert_eq!(cfg.num_sets(), 512);
        assert_eq!(cfg.elements_per_line(), 32);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        let mut dram = Dram::with_defaults();
        assert!(!c.access_byte(0, &mut dram));
        assert!(c.access_byte(4, &mut dram), "same line must hit");
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.fill_bytes(), 16);
        assert_eq!(dram.read_bytes(), 16);
    }

    #[test]
    fn miss_rate_is_per_element_not_per_line() {
        let mut c = tiny(); // 16B lines, 4 elements per line
        let mut dram = Dram::with_defaults();
        // A single sequential pass over 16 elements = 4 lines, all cold:
        // one miss per line (the first element), the rest hit, so the rate
        // is 1/4 on the first pass and halves after a fully-hitting second.
        c.read_range(0, 16, &mut dram);
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
        c.read_range(0, 16, &mut dram);
        assert!((c.miss_rate() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        let mut dram = Dram::with_defaults();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Assoc 2.
        assert!(!c.access_line(0, &mut dram));
        assert!(!c.access_line(4, &mut dram));
        assert!(!c.access_line(8, &mut dram)); // evicts line 0
        assert!(!c.access_line(0, &mut dram), "line 0 was evicted");
        assert!(c.access_line(8, &mut dram), "line 8 is still resident");
    }

    #[test]
    fn lru_promotion_on_hit() {
        let mut c = tiny();
        let mut dram = Dram::with_defaults();
        c.access_line(0, &mut dram);
        c.access_line(4, &mut dram);
        c.access_line(0, &mut dram); // promote 0 to MRU
        c.access_line(8, &mut dram); // evicts 4, not 0
        assert!(c.access_line(0, &mut dram), "promoted line survived");
        assert!(!c.access_line(4, &mut dram), "LRU line was evicted");
    }

    #[test]
    fn read_range_touches_correct_lines() {
        let mut c = tiny();
        let mut dram = Dram::with_defaults();
        // 16B lines, 4B elements -> 4 elements per line.
        let out = c.read_range(2, 6, &mut dram); // elements 2..8 -> lines 0 and 1
        assert_eq!(out.lines, 2);
        assert_eq!(out.misses, 2);
        assert_eq!(c.onchip_bytes(), 24);
        let out2 = c.read_range(0, 4, &mut dram); // line 0 again
        assert_eq!(out2.hits, 1);
    }

    #[test]
    fn read_range_zero_elements() {
        let mut c = tiny();
        let mut dram = Dram::with_defaults();
        assert_eq!(c.read_range(5, 0, &mut dram), AccessOutcome::default());
    }

    #[test]
    fn invalidate_clears_contents() {
        let mut c = tiny();
        let mut dram = Dram::with_defaults();
        c.access_line(3, &mut dram);
        c.invalidate_all();
        assert!(!c.access_line(3, &mut dram), "line gone after invalidate");
    }

    #[test]
    fn whole_matrix_fits_second_pass_all_hits() {
        let mut c = tiny(); // 8 lines capacity
        let mut dram = Dram::with_defaults();
        // Stream 32 elements = 8 lines twice; second pass must fully hit.
        c.read_range(0, 32, &mut dram);
        let second = c.read_range(0, 32, &mut dram);
        assert_eq!(second.misses, 0);
        assert_eq!(second.hits, 8);
    }

    #[test]
    fn matrix_larger_than_cache_thrashes() {
        let mut c = tiny(); // 8 lines
        let mut dram = Dram::with_defaults();
        // 64 lines streamed twice: every line maps round-robin over 4 sets,
        // 16 lines per set vs 2 ways -> second pass misses everything.
        c.read_range(0, 256, &mut dram);
        let second = c.read_range(0, 256, &mut dram);
        assert_eq!(second.hits, 0, "capacity thrash must miss on re-stream");
    }

    #[test]
    fn outcome_merge_accumulates() {
        let mut a = AccessOutcome {
            lines: 1,
            hits: 1,
            misses: 0,
        };
        a.merge(AccessOutcome {
            lines: 2,
            hits: 0,
            misses: 2,
        });
        assert_eq!(
            a,
            AccessOutcome {
                lines: 3,
                hits: 1,
                misses: 2
            }
        );
    }
}
