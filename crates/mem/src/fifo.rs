//! The stationary-matrix FIFO (paper §3.4).
//!
//! "The elements of the stationary matrix are always read once and
//! sequentially for the three dataflows. To hide the access latency, we
//! implement a read-only FIFO. The memory structure keeps the DRAM location
//! of the stationary matrix in a register, so that the fibres are pushed
//! implicitly into FIFO."

use crate::Dram;
use flexagon_sparse::ELEMENT_BYTES;
use serde::{Deserialize, Serialize};

/// Configuration for the STA FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoConfig {
    /// FIFO capacity in bytes (Table 5: 256 bytes).
    pub capacity_bytes: u64,
}

impl Default for FifoConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 256,
        }
    }
}

/// Read-only FIFO for the stationary (STA) matrix.
///
/// Because pushes are implicit (the tile filler walks the matrix
/// sequentially in DRAM), the model is a traffic meter with a capacity used
/// for latency-hiding accounting: the first fill of the FIFO is exposed, and
/// thereafter DRAM streaming overlaps with consumption.
#[derive(Debug, Clone)]
pub struct StaFifo {
    cfg: FifoConfig,
    popped_elements: u64,
}

impl StaFifo {
    /// Creates a FIFO with the given configuration.
    pub fn new(cfg: FifoConfig) -> Self {
        Self {
            cfg,
            popped_elements: 0,
        }
    }

    /// Creates a FIFO with the paper's 256-byte capacity.
    pub fn with_defaults() -> Self {
        Self::new(FifoConfig::default())
    }

    /// The FIFO configuration.
    pub fn config(&self) -> FifoConfig {
        self.cfg
    }

    /// Capacity in elements.
    pub fn capacity_elements(&self) -> u64 {
        self.cfg.capacity_bytes / ELEMENT_BYTES
    }

    /// Streams `elements` stationary elements through the FIFO: the tile
    /// filler fetches them from DRAM and the tile reader pops them.
    ///
    /// Returns the number of on-chip bytes read out of the FIFO (the STA
    /// portion of Fig. 14's on-chip traffic).
    pub fn stream(&mut self, elements: u64, dram: &mut Dram) -> u64 {
        if elements == 0 {
            return 0;
        }
        let bytes = elements * ELEMENT_BYTES;
        dram.read(bytes);
        self.popped_elements += elements;
        bytes
    }

    /// Total elements popped by the datapath.
    pub fn popped_elements(&self) -> u64 {
        self.popped_elements
    }

    /// Total on-chip bytes delivered to the datapath.
    pub fn onchip_bytes(&self) -> u64 {
        self.popped_elements * ELEMENT_BYTES
    }
}

impl Default for StaFifo {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_matches_table5() {
        let f = StaFifo::with_defaults();
        assert_eq!(f.config().capacity_bytes, 256);
        assert_eq!(f.capacity_elements(), 64);
    }

    #[test]
    fn stream_counts_both_sides() {
        let mut f = StaFifo::with_defaults();
        let mut dram = Dram::with_defaults();
        let onchip = f.stream(100, &mut dram);
        assert_eq!(onchip, 400);
        assert_eq!(f.popped_elements(), 100);
        assert_eq!(f.onchip_bytes(), 400);
        assert_eq!(dram.read_bytes(), 400);
    }

    #[test]
    fn stream_zero_is_free() {
        let mut f = StaFifo::with_defaults();
        let mut dram = Dram::with_defaults();
        assert_eq!(f.stream(0, &mut dram), 0);
        assert_eq!(dram.read_bytes(), 0);
    }

    #[test]
    fn stream_accumulates() {
        let mut f = StaFifo::with_defaults();
        let mut dram = Dram::with_defaults();
        f.stream(10, &mut dram);
        f.stream(20, &mut dram);
        assert_eq!(f.popped_elements(), 30);
    }
}
