//! Combined memory-hierarchy configuration.

use crate::{CacheConfig, DramConfig, FifoConfig, PsramConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the full memory hierarchy (the yellow boxes of Fig. 3
/// plus the off-chip channel). Defaults reproduce Table 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Stationary-matrix FIFO.
    pub fifo: FifoConfig,
    /// Streaming-matrix cache.
    pub cache: CacheConfig,
    /// Partial-sum buffer.
    pub psram: PsramConfig,
    /// Off-chip DRAM channel.
    pub dram: DramConfig,
}

impl MemoryConfig {
    /// Table 5 configuration (Flexagon / SpArch-like: 256 KiB PSRAM).
    pub fn table5() -> Self {
        Self::default()
    }

    /// Same hierarchy with the PSRAM halved to 128 KiB — the GAMMA-like
    /// sizing of Table 8 ("the area of the PSRAM in the GAMMA-like
    /// accelerator is half the area in the Sparch-like and Flexagon
    /// accelerators as it requires to store less partial sums").
    pub fn table5_half_psram() -> Self {
        let mut cfg = Self::default();
        cfg.psram.capacity_bytes /= 2;
        cfg
    }

    /// Same hierarchy with no PSRAM at all — the SIGMA-like accelerator
    /// ("since the SIGMA-like architecture employs an IP dataflow, this
    /// accelerator does not need this structure"). The PSRAM still exists
    /// in the model but is never exercised by the IP dataflow; this
    /// constructor simply documents the intent.
    pub fn table5_no_psram() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values() {
        let m = MemoryConfig::table5();
        assert_eq!(m.fifo.capacity_bytes, 256);
        assert_eq!(m.cache.capacity_bytes, 1 << 20);
        assert_eq!(m.cache.line_bytes, 128);
        assert_eq!(m.cache.associativity, 16);
        assert_eq!(m.cache.banks, 16);
        assert_eq!(m.psram.capacity_bytes, 256 << 10);
        assert_eq!(m.dram.latency_cycles, 80);
        assert_eq!(m.dram.bytes_per_cycle, 320);
    }

    #[test]
    fn half_psram_halves_only_psram() {
        let m = MemoryConfig::table5_half_psram();
        assert_eq!(m.psram.capacity_bytes, 128 << 10);
        assert_eq!(m.cache.capacity_bytes, 1 << 20);
    }
}
