//! Off-chip DRAM channel model.
//!
//! Stands in for the Structural Simulation Toolkit the paper attaches to
//! STONNE: an HBM 2.0 channel with 100 ns access time and 256 GB/s of
//! bandwidth (Table 5). At the accelerator's 800 MHz clock that is 80 cycles
//! of latency and 320 bytes per cycle of bandwidth.

use flexagon_sim::{cycles_for, Cycle};
use serde::{Deserialize, Serialize};

/// DRAM channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Access latency in accelerator cycles (100 ns at 800 MHz = 80).
    pub latency_cycles: Cycle,
    /// Sustained bandwidth in bytes per accelerator cycle
    /// (256 GB/s at 800 MHz = 320 B/cycle).
    pub bytes_per_cycle: u64,
    /// Maximum in-flight requests; latency of a batch of independent
    /// accesses is amortized over this many overlapping requests.
    pub max_outstanding: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            latency_cycles: 80,
            bytes_per_cycle: 320,
            max_outstanding: 16,
        }
    }
}

/// The off-chip channel: counts traffic and accumulates bandwidth occupancy.
///
/// The engine interleaves compute and memory accounting: structures issue
/// [`Dram::read`] / [`Dram::write`] traffic as the functional simulation
/// touches data, and at each accounting step the engine calls
/// [`Dram::take_busy_cycles`] to fold the channel's occupancy into the
/// step's bottleneck calculation.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    read_bytes: u64,
    write_bytes: u64,
    read_requests: u64,
    write_requests: u64,
    pending_bytes: u64,
    pending_requests: u64,
}

impl Dram {
    /// Creates a channel with the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            read_bytes: 0,
            write_bytes: 0,
            read_requests: 0,
            write_requests: 0,
            pending_bytes: 0,
            pending_requests: 0,
        }
    }

    /// Creates a channel with the paper's Table 5 parameters.
    pub fn with_defaults() -> Self {
        Self::new(DramConfig::default())
    }

    /// The channel configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Issues a read of `bytes` bytes.
    pub fn read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
        self.read_requests += 1;
        self.pending_bytes += bytes;
        self.pending_requests += 1;
    }

    /// Issues a write of `bytes` bytes.
    pub fn write(&mut self, bytes: u64) {
        self.write_bytes += bytes;
        self.write_requests += 1;
        self.pending_bytes += bytes;
        self.pending_requests += 1;
    }

    /// Drains the accumulated channel occupancy since the last call.
    ///
    /// Returns the cycles the channel was busy: bandwidth occupancy of the
    /// pending bytes plus access latency amortized over up to
    /// `max_outstanding` overlapping requests. The engine takes the max of
    /// this against the concurrent compute cost (memory either hides behind
    /// compute or becomes the bottleneck).
    pub fn take_busy_cycles(&mut self) -> Cycle {
        if self.pending_requests == 0 {
            return 0;
        }
        let bandwidth = cycles_for(self.pending_bytes, self.cfg.bytes_per_cycle);
        let latency_batches = self.pending_requests.div_ceil(self.cfg.max_outstanding);
        let latency = self.cfg.latency_cycles * latency_batches.min(self.pending_requests);
        self.pending_bytes = 0;
        self.pending_requests = 0;
        bandwidth + latency
    }

    /// Total bytes read so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Total bytes written so far.
    pub fn written_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Total off-chip traffic (reads + writes) in bytes — Fig. 16's metric.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Number of read requests issued.
    pub fn read_requests(&self) -> u64 {
        self.read_requests
    }

    /// Number of write requests issued.
    pub fn write_requests(&self) -> u64 {
        self.write_requests
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table5() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.latency_cycles, 80);
        assert_eq!(cfg.bytes_per_cycle, 320);
    }

    #[test]
    fn traffic_accumulates() {
        let mut d = Dram::with_defaults();
        d.read(100);
        d.read(28);
        d.write(64);
        assert_eq!(d.read_bytes(), 128);
        assert_eq!(d.written_bytes(), 64);
        assert_eq!(d.total_bytes(), 192);
        assert_eq!(d.read_requests(), 2);
        assert_eq!(d.write_requests(), 1);
    }

    #[test]
    fn busy_cycles_drain_and_reset() {
        let mut d = Dram::new(DramConfig {
            latency_cycles: 10,
            bytes_per_cycle: 32,
            max_outstanding: 4,
        });
        d.read(64); // 2 cycles bandwidth
        let busy = d.take_busy_cycles();
        assert_eq!(busy, 2 + 10);
        assert_eq!(d.take_busy_cycles(), 0, "drain resets pending state");
        assert_eq!(d.read_bytes(), 64, "totals survive draining");
    }

    #[test]
    fn latency_amortized_over_outstanding_requests() {
        let mut d = Dram::new(DramConfig {
            latency_cycles: 10,
            bytes_per_cycle: 1000,
            max_outstanding: 8,
        });
        for _ in 0..16 {
            d.read(10);
        }
        // 16 requests / 8 outstanding = 2 latency batches.
        assert_eq!(d.take_busy_cycles(), cycles_for(160, 1000) + 20);
    }

    #[test]
    fn single_request_pays_full_latency() {
        let mut d = Dram::new(DramConfig {
            latency_cycles: 80,
            bytes_per_cycle: 320,
            max_outstanding: 16,
        });
        d.read(128);
        assert_eq!(d.take_busy_cycles(), 1 + 80);
    }

    #[test]
    fn idle_channel_is_free() {
        let mut d = Dram::with_defaults();
        assert_eq!(d.take_busy_cycles(), 0);
    }
}
