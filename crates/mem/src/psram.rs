//! The PSRAM partial-sum buffer (paper §3.4, Fig. 10).
//!
//! "The memory is organized into sets corresponding to different rows and
//! each set into blocks for different K dimension within a row. Each block
//! has a valid bit. Besides, we use a register as a line tag to keep the
//! column coordinate (i.e., the k-iteration) assigned to that line. Since
//! the length of the output fiber is undetermined, it may occupy several
//! (and non-consecutive) lines in the same row. This is essentially a
//! way-combining scheme tagged by the k-iteration."
//!
//! The simulator additionally tags blocks with the output row (several rows
//! can map onto one set), and models overflow by spilling the victim fiber
//! to DRAM — the spill traffic shows up in the off-chip figures, which is
//! how an undersized PSRAM degrades a real design.
//!
//! Internally a chain index maps `(row, k)` to its block list so that the
//! Outer-Product dataflow's millions of `PartialWrite`s stay O(1) amortized;
//! the hardware achieves the same with the parallel tag search of Fig. 10.

use crate::Dram;
use flexagon_sparse::{Element, Fiber, FiberView, ELEMENT_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// PSRAM geometry. Defaults give the paper's 256 KiB structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PsramConfig {
    /// Total capacity in bytes (Table 5: 256 KiB; GAMMA-like uses 128 KiB).
    pub capacity_bytes: u64,
    /// Bytes per block ("line" in Fig. 10).
    pub block_bytes: u64,
    /// Number of sets; output rows are interleaved across sets.
    pub num_sets: u32,
    /// Number of banks across the lines of a set (parallel fiber reads).
    pub banks: u32,
}

impl PsramConfig {
    /// Elements that fit in one block.
    pub fn elements_per_block(&self) -> usize {
        (self.block_bytes / ELEMENT_BYTES) as usize
    }

    /// Blocks per set implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn blocks_per_set(&self) -> usize {
        let total = self.capacity_bytes / self.block_bytes;
        assert!(
            total.is_multiple_of(self.num_sets as u64),
            "capacity must split evenly across sets"
        );
        (total / self.num_sets as u64) as usize
    }
}

impl Default for PsramConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 256 << 10,
            block_bytes: 64,
            num_sets: 64,
            banks: 16,
        }
    }
}

/// Occupancy snapshot of the PSRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PsramUsage {
    /// Blocks currently valid.
    pub live_blocks: usize,
    /// Most blocks ever simultaneously valid.
    pub high_water_blocks: usize,
    /// Elements spilled to DRAM due to set overflow.
    pub spilled_elements: u64,
}

/// One way-combined fiber chain: the blocks of `(row, k)` in write order.
#[derive(Debug, Clone, Default)]
struct Chain {
    /// Block slots within the owning set, in allocation order.
    blocks: Vec<usize>,
    /// Total elements across the chain.
    len: usize,
    /// Ghost chains model occupancy and traffic only: their blocks carry no
    /// element data (the engine accumulates the psums elsewhere), but every
    /// allocation, spill and consume follows the exact arithmetic of a data
    /// chain of the same length.
    ghost: bool,
}

impl Chain {
    /// Free element slots in the chain's tail block. Blocks fill strictly
    /// in order, so the tail's fill level is implied by the total length.
    fn tail_space(&self, per_block: usize) -> usize {
        self.blocks.len() * per_block - self.len
    }
}

/// Struct-of-arrays element storage for one block or spill buffer: block
/// writes are a coordinate memcpy plus a scaled value map, and consuming a
/// chain appends straight into a [`Fiber`] with no per-element conversion.
#[derive(Debug, Clone, Default)]
struct SoaBuf {
    coords: Vec<u32>,
    values: Vec<f32>,
}

impl SoaBuf {
    fn len(&self) -> usize {
        self.coords.len()
    }

    fn clear(&mut self) {
        self.coords.clear();
        self.values.clear();
    }

    /// Appends `take` elements of `fiber` starting at `off`, scaling values.
    fn append_scaled(&mut self, fiber: FiberView<'_>, off: usize, take: usize, factor: f32) {
        let span = fiber.slice(off, take);
        self.coords.extend_from_slice(span.coords());
        if factor == 1.0 {
            self.values.extend_from_slice(span.values());
        } else {
            self.values.extend(span.values().iter().map(|v| v * factor));
        }
    }

    /// Drains `other`, appending its contents here.
    fn append_drain(&mut self, other: &mut SoaBuf) {
        self.coords.append(&mut other.coords);
        self.values.append(&mut other.values);
    }
}

/// One set: fixed block slots plus a free list.
#[derive(Debug, Clone)]
struct Set {
    /// `blocks[i]` is the element data of slot `i` (empty = invalid).
    blocks: Vec<SoaBuf>,
    /// Invalid slots available for allocation.
    free: Vec<usize>,
    /// Chains resident in this set, keyed by (row, k).
    chains: HashMap<(u32, u32), Chain>,
}

impl Set {
    fn new(num_blocks: usize) -> Self {
        Self {
            blocks: vec![SoaBuf::default(); num_blocks],
            free: (0..num_blocks).rev().collect(),
            chains: HashMap::new(),
        }
    }
}

/// Way-combining partial-sum SRAM.
///
/// Functionally exact: it stores the real psum elements, so the merging
/// phase that consumes it produces the real output matrix.
#[derive(Debug, Clone)]
pub struct Psram {
    cfg: PsramConfig,
    sets: Vec<Set>,
    write_elems: u64,
    read_elems: u64,
    usage: PsramUsage,
    /// Overflow fibers resident in DRAM, keyed by (row, k); values stay
    /// coordinate-sorted because spills preserve write order.
    spilled: HashMap<(u32, u32), SoaBuf>,
    /// Overflow lengths of ghost chains resident in DRAM, keyed by (row, k).
    spilled_ghost: HashMap<(u32, u32), u64>,
}

impl Psram {
    /// Creates a PSRAM with the given geometry.
    pub fn new(cfg: PsramConfig) -> Self {
        let blocks = cfg.blocks_per_set();
        let sets = (0..cfg.num_sets).map(|_| Set::new(blocks)).collect();
        Self {
            cfg,
            sets,
            write_elems: 0,
            read_elems: 0,
            usage: PsramUsage::default(),
            spilled: HashMap::new(),
            spilled_ghost: HashMap::new(),
        }
    }

    /// Creates a PSRAM with the paper's 256 KiB geometry.
    pub fn with_defaults() -> Self {
        Self::new(PsramConfig::default())
    }

    /// The PSRAM geometry.
    pub fn config(&self) -> PsramConfig {
        self.cfg
    }

    fn set_index(&self, row: u32) -> usize {
        (row % self.cfg.num_sets) as usize
    }

    /// `PartialWrite(row, k, E)`: appends one psum element to the output
    /// fiber identified by `(row, k)`.
    ///
    /// Follows Fig. 10's logic: the set is indexed by `row`; if a block
    /// chain for this fiber exists and has room, the element lands in its
    /// last block; otherwise the first free block is allocated. When the
    /// set is exhausted, the largest resident fiber is spilled to DRAM.
    pub fn partial_write(&mut self, row: u32, k: u32, e: Element, dram: &mut Dram) {
        let coords = [e.coord];
        let values = [e.value];
        self.partial_write_fiber_view(row, k, FiberView::from_parts(&coords, &values), dram);
    }

    /// Appends a whole run of elements for `(row, k)`.
    ///
    /// Equivalent to repeated `PartialWrite`s; the bulk form exists because
    /// the Outer-Product streaming phase emits an entire scaled B fiber per
    /// stationary element.
    pub fn partial_write_fiber(&mut self, row: u32, k: u32, elems: &[Element], dram: &mut Dram) {
        // Allocation-free conversion: split the slice into stack-buffered
        // chunks; sequential chunk writes to the same `(row, k)` append
        // through the normal tail-block path.
        const CHUNK: usize = 64;
        let mut coords = [0u32; CHUNK];
        let mut values = [0.0f32; CHUNK];
        for chunk in elems.chunks(CHUNK) {
            for (i, e) in chunk.iter().enumerate() {
                coords[i] = e.coord;
                values[i] = e.value;
            }
            self.partial_write_fiber_view(
                row,
                k,
                FiberView::from_parts(&coords[..chunk.len()], &values[..chunk.len()]),
                dram,
            );
        }
    }

    /// Appends a whole fiber view for `(row, k)` — the zero-copy form the
    /// engine uses: elements stream straight from the operand (or a scaled
    /// scratch fiber) into the blocks, with no intermediate vector.
    pub fn partial_write_fiber_view(
        &mut self,
        row: u32,
        k: u32,
        fiber: FiberView<'_>,
        dram: &mut Dram,
    ) {
        self.partial_write_scaled(row, k, fiber, 1.0, dram);
    }

    /// Appends `fiber` with every value multiplied by `factor` — the fused
    /// multiplier-to-PSRAM path of the Outer-Product streaming phase (one
    /// stationary scalar times a streaming fiber, §3.2.2), saving the
    /// intermediate scaled copy entirely.
    pub fn partial_write_scaled(
        &mut self,
        row: u32,
        k: u32,
        fiber: FiberView<'_>,
        factor: f32,
        dram: &mut Dram,
    ) {
        if fiber.is_empty() {
            return;
        }
        self.write_elems += fiber.len() as u64;
        let per_block = self.cfg.elements_per_block();
        let set_idx = self.set_index(row);
        let mut off = 0usize;
        while off < fiber.len() {
            // Room in the chain's tail block?
            let tail_space = {
                let set = &self.sets[set_idx];
                set.chains
                    .get(&(row, k))
                    .map(|c| {
                        debug_assert!(!c.ghost, "data write into a ghost chain");
                        c.tail_space(per_block)
                    })
                    .unwrap_or(0)
            };
            if tail_space > 0 {
                let take = tail_space.min(fiber.len() - off);
                let set = &mut self.sets[set_idx];
                let chain = set.chains.get_mut(&(row, k)).expect("tail implies chain");
                let slot = *chain.blocks.last().expect("tail implies block");
                set.blocks[slot].append_scaled(fiber, off, take, factor);
                chain.len += take;
                off += take;
                continue;
            }
            // Allocate a fresh block, spilling if the set is full.
            let slot = self.allocate_block(set_idx, dram);
            let set = &mut self.sets[set_idx];
            let take = per_block.min(fiber.len() - off);
            set.blocks[slot].clear();
            set.blocks[slot].append_scaled(fiber, off, take, factor);
            let chain = set.chains.entry((row, k)).or_default();
            chain.blocks.push(slot);
            chain.len += take;
            off += take;
        }
    }

    /// `PartialWrite` of `len` elements for `(row, k)` in ghost mode: the
    /// chain's block allocation, spill pressure, and read/write traffic are
    /// modeled exactly as [`Psram::partial_write_scaled`] would for a fiber
    /// of the same length, but no element data is stored — the engine's
    /// accumulator paths keep the actual psums in a
    /// `flexagon_sparse::RowAccum` and retrieve them with
    /// [`Psram::ghost_consume`].
    pub fn ghost_write(&mut self, row: u32, k: u32, len: usize, dram: &mut Dram) {
        if len == 0 {
            return;
        }
        self.write_elems += len as u64;
        let per_block = self.cfg.elements_per_block();
        let set_idx = self.set_index(row);
        let mut off = 0usize;
        while off < len {
            let tail_space = {
                let set = &self.sets[set_idx];
                set.chains
                    .get(&(row, k))
                    .map(|c| {
                        debug_assert!(c.ghost, "ghost write into a data chain");
                        c.tail_space(per_block)
                    })
                    .unwrap_or(0)
            };
            if tail_space > 0 {
                let take = tail_space.min(len - off);
                let set = &mut self.sets[set_idx];
                let chain = set.chains.get_mut(&(row, k)).expect("tail implies chain");
                chain.len += take;
                off += take;
                continue;
            }
            let slot = self.allocate_block(set_idx, dram);
            let set = &mut self.sets[set_idx];
            let take = per_block.min(len - off);
            let chain = set.chains.entry((row, k)).or_insert_with(|| Chain {
                ghost: true,
                ..Chain::default()
            });
            chain.blocks.push(slot);
            chain.len += take;
            off += take;
        }
    }

    /// Pops a free block slot of `set_idx`, spilling victims until one is
    /// available, and accounts the allocation.
    fn allocate_block(&mut self, set_idx: usize, dram: &mut Dram) -> usize {
        while self.sets[set_idx].free.is_empty() {
            self.spill_victim(set_idx, dram);
        }
        let slot = self.sets[set_idx]
            .free
            .pop()
            .expect("free slot after spilling");
        self.usage.live_blocks += 1;
        self.usage.high_water_blocks = self.usage.high_water_blocks.max(self.usage.live_blocks);
        slot
    }

    /// Evicts the largest fiber of `set_idx` to DRAM.
    ///
    /// Length ties break toward the smallest `(row, k)` tag: `HashMap`
    /// iteration order is process-random, and a random victim would make
    /// spill traffic — and therefore execution reports — differ between
    /// runs of the same input.
    fn spill_victim(&mut self, set_idx: usize, dram: &mut Dram) {
        let (victim, ghost) = {
            let set = &self.sets[set_idx];
            set.chains
                .iter()
                .max_by_key(|(&key, c)| (c.len, std::cmp::Reverse(key)))
                .map(|(&key, c)| (key, c.ghost))
                .expect("spill requested on a set with no chains")
        };
        if ghost {
            let len = self.take_onchip_ghost(set_idx, victim) as u64;
            dram.write(len * ELEMENT_BYTES);
            self.usage.spilled_elements += len;
            *self.spilled_ghost.entry(victim).or_insert(0) += len;
        } else {
            let mut fiber = self.take_onchip_fiber(set_idx, victim);
            dram.write(fiber.len() as u64 * ELEMENT_BYTES);
            self.usage.spilled_elements += fiber.len() as u64;
            self.spilled
                .entry(victim)
                .or_default()
                .append_drain(&mut fiber);
        }
    }

    /// Removes and returns the on-chip portion of fiber `(row, k)`,
    /// invalidating its blocks. Elements come back in write order.
    fn take_onchip_fiber(&mut self, set_idx: usize, key: (u32, u32)) -> SoaBuf {
        let set = &mut self.sets[set_idx];
        let Some(chain) = set.chains.remove(&key) else {
            return SoaBuf::default();
        };
        debug_assert!(!chain.ghost, "data consume of a ghost chain");
        let mut out = SoaBuf {
            coords: Vec::with_capacity(chain.len),
            values: Vec::with_capacity(chain.len),
        };
        for slot in chain.blocks {
            out.append_drain(&mut set.blocks[slot]);
            set.free.push(slot);
            self.usage.live_blocks -= 1;
        }
        out
    }

    /// Removes the on-chip portion of ghost fiber `(row, k)`, freeing its
    /// blocks, and returns its element count.
    fn take_onchip_ghost(&mut self, set_idx: usize, key: (u32, u32)) -> usize {
        let set = &mut self.sets[set_idx];
        let Some(chain) = set.chains.remove(&key) else {
            return 0;
        };
        debug_assert!(chain.ghost, "ghost consume of a data chain");
        for slot in chain.blocks {
            set.free.push(slot);
            self.usage.live_blocks -= 1;
        }
        chain.len
    }

    /// `Consume(row, k)`: reads and erases the whole output fiber for
    /// `(row, k)`, re-loading any spilled portion from DRAM.
    ///
    /// Elements are returned in the order they were written, which for all
    /// dataflows is coordinate order.
    pub fn consume_fiber(&mut self, row: u32, k: u32, dram: &mut Dram) -> Fiber {
        let set_idx = self.set_index(row);
        let mut out = SoaBuf::default();
        if let Some(spilled) = self.spilled.remove(&(row, k)) {
            dram.read(spilled.len() as u64 * ELEMENT_BYTES);
            out = spilled;
        }
        let mut onchip = self.take_onchip_fiber(set_idx, (row, k));
        self.read_elems += onchip.len() as u64;
        out.append_drain(&mut onchip);
        debug_assert!(
            out.coords.windows(2).all(|w| w[0] < w[1]),
            "psum fiber for (row {row}, k {k}) must be coordinate-sorted"
        );
        Fiber::from_parts(out.coords, out.values)
    }

    /// `Consume(row, k)` of a ghost fiber: frees the chain's blocks and
    /// charges the same on-chip read traffic and DRAM reload traffic as
    /// [`Psram::consume_fiber`] would for the equivalent data fiber.
    /// Returns the total element count (spilled + on-chip).
    pub fn ghost_consume(&mut self, row: u32, k: u32, dram: &mut Dram) -> u64 {
        let set_idx = self.set_index(row);
        let mut total = 0u64;
        if let Some(len) = self.spilled_ghost.remove(&(row, k)) {
            dram.read(len * ELEMENT_BYTES);
            total += len;
        }
        let onchip = self.take_onchip_ghost(set_idx, (row, k)) as u64;
        self.read_elems += onchip;
        total + onchip
    }

    /// Sorted list of k tags with data (on-chip or spilled) for `row`.
    pub fn fiber_tags_of_row(&self, row: u32) -> Vec<u32> {
        let set_idx = self.set_index(row);
        let mut ks: Vec<u32> = self.sets[set_idx]
            .chains
            .keys()
            .filter(|&&(r, _)| r == row)
            .map(|&(_, k)| k)
            .chain(
                self.spilled
                    .keys()
                    .filter(|&&(r, _)| r == row)
                    .map(|&(_, k)| k),
            )
            .chain(
                self.spilled_ghost
                    .keys()
                    .filter(|&&(r, _)| r == row)
                    .map(|&(_, k)| k),
            )
            .collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// All rows currently holding data.
    pub fn rows_with_data(&self) -> Vec<u32> {
        let mut rows: Vec<u32> = self
            .sets
            .iter()
            .flat_map(|s| s.chains.keys().map(|&(r, _)| r))
            .chain(self.spilled.keys().map(|&(r, _)| r))
            .chain(self.spilled_ghost.keys().map(|&(r, _)| r))
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Returns `true` when no psums are buffered anywhere.
    pub fn is_empty(&self) -> bool {
        self.usage.live_blocks == 0 && self.spilled.is_empty() && self.spilled_ghost.is_empty()
    }

    /// Occupancy snapshot.
    pub fn usage(&self) -> PsramUsage {
        self.usage
    }

    /// Elements written on-chip so far (psum write traffic, Fig. 14).
    pub fn written_elements(&self) -> u64 {
        self.write_elems
    }

    /// Elements read on-chip so far (psum read traffic, Fig. 14).
    pub fn read_elements(&self) -> u64 {
        self.read_elems
    }

    /// Total on-chip psum bytes moved (reads + writes) — Fig. 14's green bar.
    pub fn onchip_bytes(&self) -> u64 {
        (self.write_elems + self.read_elems) * ELEMENT_BYTES
    }

    /// Charges the traffic of an intermediate merge result parking in the
    /// PSRAM between passes (one write now, one read on the next pass),
    /// without storing the data — the engine keeps the fiber in flight.
    pub fn charge_intermediate_roundtrip(&mut self, elements: u64) {
        self.write_elems += elements;
        self.read_elems += elements;
    }
}

impl Default for Psram {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(c: u32, v: f32) -> Element {
        Element::new(c, v)
    }

    fn tiny() -> Psram {
        // 2 sets x 4 blocks x 2 elements = 16 elements capacity.
        Psram::new(PsramConfig {
            capacity_bytes: 64,
            block_bytes: 8,
            num_sets: 2,
            banks: 1,
        })
    }

    #[test]
    fn default_geometry_matches_table5() {
        let cfg = PsramConfig::default();
        assert_eq!(cfg.capacity_bytes, 256 << 10);
        assert_eq!(cfg.elements_per_block(), 16);
        assert_eq!(
            cfg.blocks_per_set() * cfg.num_sets as usize * cfg.block_bytes as usize,
            256 << 10
        );
    }

    #[test]
    fn write_then_consume_roundtrips() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        p.partial_write(0, 3, e(1, 1.0), &mut dram);
        p.partial_write(0, 3, e(5, 2.0), &mut dram);
        let fiber = p.consume_fiber(0, 3, &mut dram);
        assert_eq!(fiber.into_inner(), vec![e(1, 1.0), e(5, 2.0)]);
        assert!(p.is_empty());
        assert_eq!(p.written_elements(), 2);
        assert_eq!(p.read_elements(), 2);
    }

    #[test]
    fn fiber_spans_multiple_blocks_in_order() {
        let mut p = tiny(); // 2 elements per block
        let mut dram = Dram::with_defaults();
        for i in 0..6 {
            p.partial_write(0, 0, e(i, i as f32), &mut dram);
        }
        let fiber = p.consume_fiber(0, 0, &mut dram);
        let coords: Vec<u32> = fiber.iter().map(|x| x.coord).collect();
        assert_eq!(coords, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn distinct_k_fibers_coexist_in_one_set() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        p.partial_write(0, 0, e(2, 1.0), &mut dram);
        p.partial_write(0, 7, e(1, 9.0), &mut dram);
        assert_eq!(p.fiber_tags_of_row(0), vec![0, 7]);
        assert_eq!(
            p.consume_fiber(0, 7, &mut dram).into_inner(),
            vec![e(1, 9.0)]
        );
        assert_eq!(
            p.consume_fiber(0, 0, &mut dram).into_inner(),
            vec![e(2, 1.0)]
        );
    }

    #[test]
    fn rows_interleave_across_sets() {
        let mut p = tiny(); // 2 sets
        let mut dram = Dram::with_defaults();
        p.partial_write(0, 0, e(0, 1.0), &mut dram); // set 0
        p.partial_write(1, 0, e(0, 2.0), &mut dram); // set 1
        p.partial_write(2, 0, e(0, 3.0), &mut dram); // set 0 again
        assert_eq!(p.rows_with_data(), vec![0, 1, 2]);
        assert_eq!(
            p.consume_fiber(2, 0, &mut dram).into_inner(),
            vec![e(0, 3.0)]
        );
        assert_eq!(
            p.consume_fiber(0, 0, &mut dram).into_inner(),
            vec![e(0, 1.0)]
        );
    }

    #[test]
    fn overflow_spills_to_dram_and_reloads() {
        let mut p = tiny(); // each set: 4 blocks x 2 elems = 8 elements
        let mut dram = Dram::with_defaults();
        // Fill set 0 beyond capacity with a single fiber.
        for i in 0..12 {
            p.partial_write(0, 0, e(i, 1.0), &mut dram);
        }
        assert!(p.usage().spilled_elements > 0, "overflow must spill");
        assert!(dram.written_bytes() > 0, "spill writes DRAM");
        let fiber = p.consume_fiber(0, 0, &mut dram);
        assert_eq!(fiber.len(), 12, "spilled part reloads on consume");
        let coords: Vec<u32> = fiber.iter().map(|x| x.coord).collect();
        assert!(coords.windows(2).all(|w| w[0] < w[1]), "order preserved");
        assert!(dram.read_bytes() > 0, "reload reads DRAM");
        assert!(p.is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        for i in 0..4 {
            p.partial_write(0, i, e(0, 1.0), &mut dram); // 4 distinct blocks
        }
        for i in 0..4 {
            p.consume_fiber(0, i, &mut dram);
        }
        assert_eq!(p.usage().live_blocks, 0);
        assert_eq!(p.usage().high_water_blocks, 4);
    }

    #[test]
    fn consume_missing_fiber_is_empty() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        assert!(p.consume_fiber(5, 9, &mut dram).is_empty());
    }

    #[test]
    fn onchip_bytes_counts_reads_and_writes() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        p.partial_write(1, 0, e(0, 1.0), &mut dram);
        p.consume_fiber(1, 0, &mut dram);
        assert_eq!(p.onchip_bytes(), 2 * ELEMENT_BYTES);
    }

    #[test]
    fn partial_write_fiber_bulk() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        let elems = vec![e(0, 1.0), e(3, 2.0), e(4, 3.0)];
        p.partial_write_fiber(1, 2, &elems, &mut dram);
        assert_eq!(p.consume_fiber(1, 2, &mut dram).into_inner(), elems);
    }

    #[test]
    fn bulk_write_larger_than_set_spills_and_roundtrips() {
        let mut p = tiny(); // set capacity 8 elements
        let mut dram = Dram::with_defaults();
        let elems: Vec<Element> = (0..20).map(|i| e(i, i as f32)).collect();
        p.partial_write_fiber(0, 1, &elems, &mut dram);
        let back = p.consume_fiber(0, 1, &mut dram);
        assert_eq!(back.into_inner(), elems);
    }

    #[test]
    fn ghost_mirrors_data_chain_accounting() {
        // Drive the same write/consume schedule through a data PSRAM and a
        // ghost PSRAM (spill pressure included) and compare every
        // observable number: occupancy, spills, on-chip and DRAM traffic.
        let schedule: &[(u32, u32, usize)] = &[
            (0, 0, 5),
            (0, 1, 3),
            (2, 0, 9), // same set as row 0: contends for blocks
            (0, 0, 2),
            (1, 3, 7),
            (0, 1, 12), // overflows the 8-element set: forces spills
        ];
        let mut data = tiny();
        let mut data_dram = Dram::with_defaults();
        let mut ghost = tiny();
        let mut ghost_dram = Dram::with_defaults();
        let mut next_coord: HashMap<(u32, u32), u32> = HashMap::new();
        for &(row, k, len) in schedule {
            let base = next_coord.entry((row, k)).or_insert(0);
            let elems: Vec<Element> = (0..len as u32).map(|i| e(*base + i, 1.0)).collect();
            *base += len as u32;
            data.partial_write_fiber(row, k, &elems, &mut data_dram);
            ghost.ghost_write(row, k, len, &mut ghost_dram);
        }
        assert_eq!(data.usage(), ghost.usage());
        assert_eq!(data.written_elements(), ghost.written_elements());
        assert_eq!(data_dram.written_bytes(), ghost_dram.written_bytes());
        assert_eq!(data.rows_with_data(), ghost.rows_with_data());
        for row in data.rows_with_data() {
            assert_eq!(data.fiber_tags_of_row(row), ghost.fiber_tags_of_row(row));
            for k in data.fiber_tags_of_row(row) {
                let fiber = data.consume_fiber(row, k, &mut data_dram);
                let len = ghost.ghost_consume(row, k, &mut ghost_dram);
                assert_eq!(fiber.len() as u64, len, "row {row} k {k}");
            }
        }
        assert_eq!(data.usage(), ghost.usage());
        assert_eq!(data.read_elements(), ghost.read_elements());
        assert_eq!(data_dram.read_bytes(), ghost_dram.read_bytes());
        assert!(data.is_empty() && ghost.is_empty());
    }

    #[test]
    fn interleaved_writes_to_two_fibers_keep_chains_apart() {
        let mut p = tiny();
        let mut dram = Dram::with_defaults();
        for i in 0..3 {
            p.partial_write(0, 0, e(i, 1.0), &mut dram);
            p.partial_write(0, 1, e(i, 2.0), &mut dram);
        }
        let f0 = p.consume_fiber(0, 0, &mut dram);
        let f1 = p.consume_fiber(0, 1, &mut dram);
        assert_eq!(f0.iter().map(|x| x.value).sum::<f32>(), 3.0);
        assert_eq!(f1.iter().map(|x| x.value).sum::<f32>(), 6.0);
    }
}
