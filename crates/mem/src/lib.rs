//! Flexagon's memory hierarchy (paper §3.4, Figs. 9 and 10).
//!
//! The paper designs "a customized L1 memory level specifically tailored for
//! the common and different patterns among the three dataflows":
//!
//! * [`StaFifo`] — a small read-only FIFO for the stationary matrix, whose
//!   elements are always read once, sequentially.
//! * [`StrCache`] — a read-only set-associative cache for the streaming
//!   matrix, operating on a virtual address space relative to the beginning
//!   of the matrix; sized for the worst-case Gustavson access pattern.
//! * [`Psram`] — a way-combining partial-sum buffer whose sets are indexed
//!   by output row and whose blocks are tagged by k-iteration, with
//!   `PartialWrite` / `Consume` operations.
//! * [`WriteBuffer`] — a FIFO hiding the latency of final output stores.
//! * [`Dram`] — the off-chip HBM 2.0 channel (SST's role in the paper).
//!
//! Every structure counts its own traffic; those counters feed the on-chip
//! (Fig. 14) and off-chip (Fig. 16) traffic figures and the miss-rate figure
//! (Fig. 15).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod dram;
mod fifo;
mod psram;
mod wbuf;

pub use cache::{AccessOutcome, CacheConfig, StrCache};
pub use config::MemoryConfig;
pub use dram::{Dram, DramConfig};
pub use fifo::{FifoConfig, StaFifo};
pub use psram::{Psram, PsramConfig, PsramUsage};
pub use wbuf::WriteBuffer;
