//! Per-phase cycle attribution.
//!
//! Flexagon's runtime is organized in three phases (paper Fig. 3b): the
//! stationary phase loads operands into the multipliers, the streaming phase
//! multiplies (the "Mult" bars of Fig. 13), and the merging phase combines
//! partial-sum fibers (the "Merg" bars). [`PhaseClock`] attributes every
//! simulated cycle to one of these.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Runtime execution phase of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Phase 2: delivering stationary operands to the multipliers.
    Stationary,
    /// Phase 3: streaming the other operand and multiplying.
    Streaming,
    /// Phase 4: merging partial-sum fibers (skipped by Inner Product).
    Merging,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 3] = [Phase::Stationary, Phase::Streaming, Phase::Merging];
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Stationary => write!(f, "stationary"),
            Phase::Streaming => write!(f, "streaming"),
            Phase::Merging => write!(f, "merging"),
        }
    }
}

/// Accumulates cycles per [`Phase`].
///
/// ```
/// use flexagon_sim::{Phase, PhaseClock};
/// let mut clock = PhaseClock::new();
/// clock.advance(Phase::Streaming, 100);
/// clock.advance(Phase::Merging, 20);
/// assert_eq!(clock.total(), 120);
/// assert_eq!(clock.of(Phase::Merging), 20);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseClock {
    stationary: Cycle,
    streaming: Cycle,
    merging: Cycle,
}

impl PhaseClock {
    /// Creates a clock with all phases at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to the given phase.
    pub fn advance(&mut self, phase: Phase, cycles: Cycle) {
        match phase {
            Phase::Stationary => self.stationary += cycles,
            Phase::Streaming => self.streaming += cycles,
            Phase::Merging => self.merging += cycles,
        }
    }

    /// Cycles attributed to `phase`.
    pub fn of(&self, phase: Phase) -> Cycle {
        match phase {
            Phase::Stationary => self.stationary,
            Phase::Streaming => self.streaming,
            Phase::Merging => self.merging,
        }
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> Cycle {
        self.stationary + self.streaming + self.merging
    }

    /// The multiply portion of Fig. 13's bars: stationary + streaming.
    pub fn mult_cycles(&self) -> Cycle {
        self.stationary + self.streaming
    }

    /// The merge portion of Fig. 13's bars.
    pub fn merge_cycles(&self) -> Cycle {
        self.merging
    }

    /// Adds every phase of `other` into `self`.
    pub fn merge(&mut self, other: PhaseClock) {
        self.stationary += other.stationary;
        self.streaming += other.streaming;
        self.merging += other.merging;
    }
}

impl std::fmt::Display for PhaseClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stationary {} + streaming {} + merging {} = {}",
            self.stationary,
            self.streaming,
            self.merging,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_query() {
        let mut c = PhaseClock::new();
        c.advance(Phase::Stationary, 5);
        c.advance(Phase::Streaming, 10);
        c.advance(Phase::Streaming, 10);
        c.advance(Phase::Merging, 1);
        assert_eq!(c.of(Phase::Stationary), 5);
        assert_eq!(c.of(Phase::Streaming), 20);
        assert_eq!(c.of(Phase::Merging), 1);
        assert_eq!(c.total(), 26);
        assert_eq!(c.mult_cycles(), 25);
        assert_eq!(c.merge_cycles(), 1);
    }

    #[test]
    fn merge_combines_clocks() {
        let mut a = PhaseClock::new();
        a.advance(Phase::Streaming, 10);
        let mut b = PhaseClock::new();
        b.advance(Phase::Merging, 4);
        a.merge(b);
        assert_eq!(a.total(), 14);
    }

    #[test]
    fn all_phases_listed_in_order() {
        assert_eq!(
            Phase::ALL,
            [Phase::Stationary, Phase::Streaming, Phase::Merging]
        );
    }

    #[test]
    fn display_formats() {
        let mut c = PhaseClock::new();
        c.advance(Phase::Merging, 3);
        assert!(format!("{c}").contains("merging 3"));
        assert_eq!(format!("{}", Phase::Streaming), "streaming");
    }
}
