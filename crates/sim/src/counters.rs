//! Named event counters and hit/miss ratios.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of named monotone counters.
///
/// Used throughout the simulator for traffic accounting: bytes through each
/// memory structure, elements through each network, DRAM requests, etc.
/// Counter names are static strings so typos surface at the call site during
/// review rather than silently splitting a statistic. (Serializes to a name →
/// value map; deserialization is intentionally unsupported because the keys
/// are `&'static str`.)
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CounterSet {
    counts: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counts.entry(name).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Accumulates every counter of `other` into `self`.
    ///
    /// Lets per-layer reports roll up into per-model reports.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl std::fmt::Display for CounterSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(no counters)");
        }
        for (i, (name, value)) in self.counts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

/// A hit/total ratio, e.g. the STR cache miss rate of Fig. 15.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (0 / 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event, counted as a hit when `hit` is true.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Records `n` events of which `hits` were hits.
    ///
    /// # Panics
    ///
    /// Panics if `hits > n`.
    pub fn record_many(&mut self, hits: u64, n: u64) {
        assert!(hits <= n, "cannot record more hits than events");
        self.total += n;
        self.hits += hits;
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Hit fraction in `[0, 1]`; zero when empty.
    pub fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Miss fraction in `[0, 1]`; zero when empty.
    pub fn miss_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses() as f64 / self.total as f64
        }
    }

    /// Merges another ratio's events into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.hits,
            self.total,
            100.0 * self.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = CounterSet::new();
        c.add("bytes", 10);
        c.incr("bytes");
        c.incr("reqs");
        assert_eq!(c.get("bytes"), 11);
        assert_eq!(c.get("reqs"), 1);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_merge() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        let mut b = CounterSet::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    /// The golden-report bit-identity check (`golden_reports` binary)
    /// depends on counter serialization being a pure function of the
    /// recorded (name, value) pairs: insertion order must not leak. The
    /// indexed Inner-Product paths record the same probe totals in a
    /// different order than the streaming scan, and this is what guarantees
    /// their reports still serialize identically.
    #[test]
    fn serialization_is_insertion_order_independent() {
        let mut scan_order = CounterSet::new();
        scan_order.add("dn.injected", 7);
        scan_order.add("mrn.additions", 3);
        scan_order.add("dn.injected", 2);
        let mut probe_order = CounterSet::new();
        probe_order.add("mrn.additions", 1);
        probe_order.add("dn.injected", 9);
        probe_order.add("mrn.additions", 2);
        assert_eq!(scan_order, probe_order);
        let render = |c: &CounterSet| serde_json::to_string(c).expect("serializes");
        assert_eq!(render(&scan_order), render(&probe_order));
    }

    #[test]
    fn counters_display() {
        let mut c = CounterSet::new();
        assert_eq!(format!("{c}"), "(no counters)");
        c.add("a", 1);
        assert_eq!(format!("{c}"), "a: 1");
    }

    #[test]
    fn ratio_rates() {
        let mut r = Ratio::new();
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.miss_rate(), 0.0);
        r.record(true);
        r.record(true);
        r.record(false);
        assert_eq!(r.hits(), 2);
        assert_eq!(r.misses(), 1);
        assert!((r.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_record_many_and_merge() {
        let mut r = Ratio::new();
        r.record_many(7, 10);
        let mut other = Ratio::new();
        other.record_many(3, 10);
        r.merge(other);
        assert_eq!(r.hits(), 10);
        assert_eq!(r.total(), 20);
    }

    #[test]
    #[should_panic(expected = "more hits than events")]
    fn ratio_rejects_invalid() {
        Ratio::new().record_many(2, 1);
    }

    #[test]
    fn ratio_display() {
        let mut r = Ratio::new();
        r.record_many(1, 4);
        assert_eq!(format!("{r}"), "1/4 (25.00%)");
    }
}
