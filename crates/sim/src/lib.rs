//! Cycle-accounting substrate for the Flexagon simulator.
//!
//! The paper evaluates with a cycle-level microarchitectural simulator
//! (STONNE + SST). This crate provides the timing vocabulary our engine uses
//! to reproduce that accounting:
//!
//! * [`Cycle`] arithmetic helpers for bandwidth-limited and pipelined
//!   transfers ([`cycles_for`], [`pipeline_cycles`], [`bottleneck`]).
//! * [`CounterSet`] — named event counters feeding the traffic figures
//!   (Figs. 14 and 16).
//! * [`Ratio`] — hit/miss style ratios (Fig. 15).
//! * [`PhaseClock`] — per-phase cycle attribution (the Mult/Merge split of
//!   Fig. 13).
//!
//! Everything here is deterministic and free of wall-clock time; the
//! simulated cycle is the only notion of time.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod phase;
mod timing;

pub use counters::{CounterSet, Ratio};
pub use phase::{Phase, PhaseClock};
pub use timing::{bottleneck, cycles_for, pipeline_cycles, Bandwidth, Cycle};
