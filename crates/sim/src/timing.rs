//! Cycle arithmetic: bandwidth-limited transfers and pipelined operations.

use serde::{Deserialize, Serialize};

/// Simulated clock cycles. All accelerator configurations in the paper run
/// at 800 MHz; cycles are the unit every result is reported in.
pub type Cycle = u64;

/// Cycles needed to move `items` through a resource that accepts
/// `per_cycle` items each cycle (ceiling division; zero items are free).
///
/// ```
/// use flexagon_sim::cycles_for;
/// assert_eq!(cycles_for(0, 16), 0);
/// assert_eq!(cycles_for(16, 16), 1);
/// assert_eq!(cycles_for(17, 16), 2);
/// ```
///
/// # Panics
///
/// Panics if `per_cycle` is zero.
#[inline]
pub fn cycles_for(items: u64, per_cycle: u64) -> Cycle {
    assert!(per_cycle > 0, "resource bandwidth must be positive");
    items.div_ceil(per_cycle)
}

/// Cycles for a pipelined unit: fill latency plus bandwidth-limited drain.
///
/// A tree of depth `latency` that accepts `per_cycle` inputs every cycle
/// completes `items` inputs in `latency + ceil(items / per_cycle)` cycles
/// (the classic pipeline formula). Zero items cost zero cycles — an
/// unconfigured unit is never charged its fill latency.
///
/// # Panics
///
/// Panics if `per_cycle` is zero.
#[inline]
pub fn pipeline_cycles(items: u64, latency: Cycle, per_cycle: u64) -> Cycle {
    if items == 0 {
        return 0;
    }
    latency + cycles_for(items, per_cycle)
}

/// Combines the cycle costs of resources that operate concurrently: the
/// slowest one is the bottleneck.
///
/// ```
/// use flexagon_sim::bottleneck;
/// assert_eq!(bottleneck(&[3, 10, 7]), 10);
/// assert_eq!(bottleneck(&[]), 0);
/// ```
#[inline]
pub fn bottleneck(concurrent: &[Cycle]) -> Cycle {
    concurrent.iter().copied().max().unwrap_or(0)
}

/// A per-cycle transfer rate (elements/cycle or bytes/cycle).
///
/// Newtype so configuration fields can't be confused with plain counts
/// (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth of `per_cycle` items per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero — a zero-bandwidth resource would make
    /// every transfer take infinitely long.
    pub fn per_cycle(per_cycle: u64) -> Self {
        assert!(per_cycle > 0, "bandwidth must be positive");
        Self(per_cycle)
    }

    /// Items transferred per cycle.
    pub fn rate(self) -> u64 {
        self.0
    }

    /// Cycles to transfer `items` at this rate.
    pub fn cycles(self, items: u64) -> Cycle {
        cycles_for(items, self.0)
    }

    /// Cycles for a pipelined transfer with the given fill latency.
    pub fn pipelined_cycles(self, items: u64, latency: Cycle) -> Cycle {
        pipeline_cycles(items, latency, self.0)
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/cycle", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_for_rounds_up() {
        assert_eq!(cycles_for(1, 16), 1);
        assert_eq!(cycles_for(15, 16), 1);
        assert_eq!(cycles_for(16, 16), 1);
        assert_eq!(cycles_for(17, 16), 2);
        assert_eq!(cycles_for(32, 16), 2);
    }

    #[test]
    fn cycles_for_zero_items_is_free() {
        assert_eq!(cycles_for(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn cycles_for_zero_bandwidth_panics() {
        cycles_for(1, 0);
    }

    #[test]
    fn pipeline_adds_latency_once() {
        assert_eq!(pipeline_cycles(16, 6, 16), 7);
        assert_eq!(pipeline_cycles(32, 6, 16), 8);
    }

    #[test]
    fn pipeline_zero_items_skips_latency() {
        assert_eq!(pipeline_cycles(0, 100, 16), 0);
    }

    #[test]
    fn bottleneck_takes_max() {
        assert_eq!(bottleneck(&[1, 2, 3]), 3);
        assert_eq!(bottleneck(&[7]), 7);
        assert_eq!(bottleneck(&[]), 0);
    }

    #[test]
    fn bandwidth_accessors() {
        let bw = Bandwidth::per_cycle(16);
        assert_eq!(bw.rate(), 16);
        assert_eq!(bw.cycles(33), 3);
        assert_eq!(bw.pipelined_cycles(33, 4), 7);
        assert_eq!(format!("{bw}"), "16/cycle");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Bandwidth::per_cycle(0);
    }
}
