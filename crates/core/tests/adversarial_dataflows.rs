//! The adversarial sweep, pinned **bit-identical** to the reference
//! kernels on all six dataflows.
//!
//! Exactness is by construction, not luck: `gen::adversarial_sweep` emits
//! integer-valued matrices, so every product and partial sum is exactly
//! representable in `f32` (far below 2^24) and every accumulation order —
//! the engine's tiled, banded, accumulator-tiered order and the reference
//! kernels' naive order alike — produces identical bits. Any divergence is
//! therefore a real structural or indexing bug (a dropped element, a
//! truncated coordinate, a misplaced psum), never float noise.
//!
//! The N-stationary recipes mirror the engine's own orientation step: an
//! N-run of `C = A x B` is the M-run of `Cᵀ = Bᵀ x Aᵀ` on reinterpreted
//! views, with the output reinterpreted back to CSC.

use flexagon_core::{
    Accelerator, AcceleratorConfig, Dataflow, DataflowClass, Flexagon, Stationarity,
};
use flexagon_sparse::{gen, reference, CompressedMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    df: Dataflow,
) -> flexagon_core::Result<flexagon_core::RunOutput> {
    accel
        .execute(flexagon_core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

/// The reference result for `df`, in `df.c_format()`.
fn reference_for(df: Dataflow, a: &CompressedMatrix, b: &CompressedMatrix) -> CompressedMatrix {
    let af = a.converted(df.a_format());
    let bf = b.converted(df.b_format());
    let kernel = |x: &CompressedMatrix, y: &CompressedMatrix| match df.class() {
        DataflowClass::InnerProduct => reference::inner_product(x, y),
        DataflowClass::OuterProduct => reference::outer_product(x, y),
        DataflowClass::Gustavson => reference::gustavson(x, y),
    };
    match df.stationarity() {
        Stationarity::M => kernel(&af, &bf).expect("reference M run"),
        Stationarity::N => kernel(&bf.reinterpret_transposed(), &af.reinterpret_transposed())
            .expect("reference N run")
            .reinterpret_transposed(),
    }
}

#[test]
fn adversarial_sweep_is_bit_identical_to_reference_on_all_dataflows() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xAD7E);
    let sweep = gen::adversarial_sweep(&mut rng);
    assert!(sweep.len() >= 7, "sweep covers all three families");
    // The tiny config forces row splitting, cache thrash and PSRAM spills
    // even on these shapes — the pin must hold through all of it.
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    for sc in &sweep {
        for df in Dataflow::ALL {
            let out = run_df(&accel, &sc.a, &sc.b, df)
                .unwrap_or_else(|e| panic!("{df} failed on {}: {e}", sc.name));
            assert_eq!(out.c.order(), df.c_format(), "{df} on {}", sc.name);
            out.c
                .validate()
                .unwrap_or_else(|e| panic!("{df} on {}: invalid output: {e}", sc.name));
            let want = reference_for(df, &sc.a, &sc.b);
            assert_eq!(
                out.c, want,
                "{df} on {} diverges from the reference kernel",
                sc.name
            );
        }
    }
}
