//! Fuzz targets for the engine's six dataflow paths.
//!
//! The robustness invariant: **any structurally valid operand pair runs
//! every dataflow without panicking and produces the exact product; any
//! invalid operand yields a typed [`CoreError::Validation`] before the
//! engine touches it** — on every path, including adversarial shapes the
//! generators never emit (maximally skewed rows, all-empty fibers, zero
//! matrices, degenerate 1×n dimensions).
//!
//! Case count scales with the `FLEXAGON_FUZZ_CASES` environment variable
//! (default 128; CI's chaos-smoke job runs far more).

use flexagon_core::{
    Accelerator, AcceleratorConfig, CoreError, Dataflow, ExecutionRequest, Flexagon,
};
use flexagon_sparse::{gen, CompressedMatrix, DenseMatrix, MajorOrder, ValidationConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cases() -> u32 {
    std::env::var("FLEXAGON_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or(128, |n: u32| n / 2)
}

/// One adversarial structure family, keyed by `family % 5`.
fn family(rows: u32, cols: u32, family: u8, seed: u64) -> CompressedMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match family % 5 {
        // Uniform random — the baseline the engine sees everywhere else.
        0 => gen::random(rows, cols, 0.3, MajorOrder::Row, &mut rng),
        // Maximal skew: every nonzero in one row, the rest all-empty
        // fibers (stresses row splitting and empty-fiber walks).
        1 => {
            let r = (seed % u64::from(rows)) as u32;
            let triplets: Vec<(u32, u32, f32)> =
                (0..cols).map(|c| (r, c, c as f32 + 1.0)).collect();
            CompressedMatrix::from_triplets(rows, cols, &triplets, MajorOrder::Row)
                .expect("in-range triplets")
        }
        // The zero matrix: nothing to multiply, everything to survive.
        2 => CompressedMatrix::zero(rows, cols, MajorOrder::Row),
        // Near-dense, accumulator pressure.
        3 => gen::random(rows, cols, 0.95, MajorOrder::Row, &mut rng),
        // A single nonzero in the last cell (minimal, corner-placed).
        _ => CompressedMatrix::from_triplets(
            rows,
            cols,
            &[(rows - 1, cols - 1, 2.5)],
            MajorOrder::Row,
        )
        .expect("one in-range triplet"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Every family pair, through every dataflow, on the punishing tiny
    /// config: no panic, structurally valid output, exact product.
    #[test]
    fn six_dataflows_survive_adversarial_structures(
        m in 1u32..14,
        k in 1u32..14,
        n in 1u32..14,
        fam_a in 0u8..5,
        fam_b in 0u8..5,
        seed in 0u64..1 << 32,
    ) {
        let a = family(m, k, fam_a, seed);
        let b = family(k, n, fam_b, seed ^ 0x5eed);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        let want = DenseMatrix::from_compressed(&a)
            .matmul(&DenseMatrix::from_compressed(&b))
            .expect("dims agree");
        for df in Dataflow::ALL {
            let out = accel
                .execute(
                    ExecutionRequest::new(&a, &b)
                        .dataflow(df)
                        .validated(ValidationConfig::untrusted()),
                )
                .unwrap_or_else(|e| panic!("{df} rejected a valid pair: {e}"))
                .output;
            prop_assert!(out.c.validate().is_ok(), "{df} output invalid");
            let got = DenseMatrix::from_compressed(&out.c);
            prop_assert!(
                got.approx_eq(&want, 1e-2),
                "{df}: wrong product on families ({fam_a},{fam_b})"
            );
        }
    }

    /// A non-finite value anywhere in either operand is rejected with a
    /// typed validation error by every dataflow path — never a panic,
    /// never a NaN-laced result.
    #[test]
    fn non_finite_operands_yield_typed_errors_on_every_path(
        m in 2u32..12,
        k in 2u32..12,
        n in 2u32..12,
        poison_b in 0u8..2,
        poison_at in 0usize..64,
        kind in 0u8..3,
        seed in 0u64..1 << 32,
    ) {
        let mut a = family(m, k, 3, seed);
        let mut b = family(k, n, 3, seed ^ 0x5eed);
        let bad = match kind {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
        let target = if poison_b == 0 { &mut a } else { &mut b };
        prop_assert!(target.nnz() > 0, "family 3 at dims >=2 is never empty");
        let idx = poison_at % target.nnz();
        let mut values = target.values().to_vec();
        values[idx] = bad;
        *target = CompressedMatrix::from_raw_parts(
            target.rows(),
            target.cols(),
            target.order(),
            target.ptr().to_vec(),
            target.coords().to_vec(),
            values,
        )
        .expect("structure untouched");
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let req = ExecutionRequest::new(&a, &b)
                .dataflow(df)
                .validated(ValidationConfig::untrusted());
            match accel.execute(req) {
                Err(CoreError::Validation(_)) => {}
                other => prop_assert!(
                    false,
                    "{df}: expected a validation error, got {:?}",
                    other.map(|ex| ex.output.report.dataflow)
                ),
            }
        }
    }
}
