//! Cycle- and traffic-shape tests: the qualitative behaviours the paper's
//! evaluation section rests on must emerge from the simulation.

use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon};
use flexagon_sparse::{gen, CompressedMatrix, MajorOrder, ELEMENT_BYTES};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    df: Dataflow,
) -> flexagon_core::Result<flexagon_core::RunOutput> {
    accel
        .execute(flexagon_core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

fn pair(
    m: u32,
    k: u32,
    n: u32,
    da: f64,
    db: f64,
    seed: u64,
) -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (
        gen::random(m, k, da, MajorOrder::Row, &mut rng),
        gen::random(k, n, db, MajorOrder::Row, &mut rng),
    )
}

#[test]
fn inner_product_never_touches_the_psram() {
    // Fig. 14: "the number of partial sums sent to the PSRAM for the
    // SIGMA-like architecture is always 0".
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    let (a, b) = pair(20, 30, 25, 0.4, 0.4, 1);
    let out = run_df(&accel, &a, &b, Dataflow::InnerProductM).unwrap();
    assert_eq!(out.report.traffic.psum_onchip_bytes, 0);
    assert_eq!(out.report.psram.high_water_blocks, 0);
}

#[test]
fn inner_product_streams_b_once_per_tile() {
    // IP's defining cost: the whole of B flows past every stationary tile.
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    let (a, b) = pair(20, 30, 25, 0.4, 0.4, 2);
    let out = run_df(&accel, &a, &b, Dataflow::InnerProductM).unwrap();
    let expected = out.report.tiles * b.nnz() as u64 * ELEMENT_BYTES;
    assert_eq!(out.report.traffic.str_onchip_bytes, expected);
    assert!(
        out.report.tiles > 1,
        "tiny config must force multiple tiles"
    );
}

#[test]
fn outer_product_reads_b_once_but_doubles_psum_traffic() {
    let accel = Flexagon::new(AcceleratorConfig::table5());
    let (a, b) = pair(30, 40, 35, 0.3, 0.3, 3);
    let out = run_df(&accel, &a, &b, Dataflow::OuterProductM).unwrap();
    // Every product goes into the PSRAM once and is read back at least
    // once (merge passes may add intermediate round trips).
    let products = out.report.work.products;
    assert!(out.report.traffic.psum_onchip_bytes >= 2 * products * ELEMENT_BYTES);
    // B is multicast: each of its elements enters the DN at most once per
    // tile that references its row, and with one tile it's exactly once.
    if out.report.tiles == 1 {
        assert!(out.report.counters.get("dn.injected") <= products + b.nnz() as u64);
    }
}

#[test]
fn gustavson_merges_inline_with_zero_merge_phase_for_short_rows() {
    // GAMMA "is able to compute the merging phase ... in parallel within
    // the multiplying phase": rows that fit one cluster never visit the
    // PSRAM and spend no cycles in the merging phase.
    let accel = Flexagon::new(AcceleratorConfig::table5());
    let (a, b) = pair(32, 48, 24, 0.2, 0.3, 4); // rows << 64 nnz
    let out = run_df(&accel, &a, &b, Dataflow::GustavsonM).unwrap();
    assert_eq!(out.report.phases.merge_cycles(), 0);
    assert_eq!(out.report.traffic.psum_onchip_bytes, 0);
}

#[test]
fn gustavson_long_rows_use_psram_and_merge_phase() {
    let accel = Flexagon::new(AcceleratorConfig::tiny()); // 4 multipliers
    let (a, b) = pair(4, 30, 20, 0.9, 0.5, 5); // ~27 nnz rows => 7 chunks
    let out = run_df(&accel, &a, &b, Dataflow::GustavsonM).unwrap();
    assert!(out.report.phases.merge_cycles() > 0);
    assert!(out.report.traffic.psum_onchip_bytes > 0);
    assert!(out.report.counters.get("gust.split_rows_merged") > 0);
}

#[test]
fn ip_traffic_grows_with_stationary_tiles_gust_does_not() {
    // Doubling nnz(A) doubles IP's B re-streams but leaves Gustavson's B
    // fetch volume tied to products.
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    let (a_small, b) = pair(8, 24, 20, 0.25, 0.4, 6);
    let (a_big, _) = pair(32, 24, 20, 0.5, 0.4, 7);
    let ip_small = run_df(&accel, &a_small, &b, Dataflow::InnerProductM).unwrap();
    let ip_big = run_df(&accel, &a_big, &b, Dataflow::InnerProductM).unwrap();
    assert!(ip_big.report.tiles > ip_small.report.tiles);
    assert!(ip_big.report.traffic.str_onchip_bytes > ip_small.report.traffic.str_onchip_bytes);
}

#[test]
fn small_b_hits_cache_large_b_misses() {
    // Fig. 15's story: GAMMA-like thrashes when B's rows do not fit.
    let accel = Flexagon::new(AcceleratorConfig::tiny()); // 512-byte cache
                                                          // Small B: 32 elements = 128 bytes, fits.
    let (a1, b_small) = pair(30, 16, 8, 0.5, 0.25, 8);
    let small = run_df(&accel, &a1, &b_small, Dataflow::GustavsonM).unwrap();
    // Large B: ~2000 elements = 8 KiB >> 512 B.
    let (a2, b_large) = pair(30, 64, 64, 0.5, 0.5, 9);
    let large = run_df(&accel, &a2, &b_large, Dataflow::GustavsonM).unwrap();
    assert!(
        large.report.cache.miss_rate() > small.report.cache.miss_rate(),
        "large-B miss rate {} must exceed small-B {}",
        large.report.cache.miss_rate(),
        small.report.cache.miss_rate()
    );
}

#[test]
fn offchip_traffic_includes_cache_fills_and_output() {
    // Diagonal A keeps every Gustavson row in a single cluster: no splits,
    // no PSRAM, so DRAM writes are exactly the final output.
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    let a = gen::diagonal(12, 2.0, MajorOrder::Row);
    let (_, b) = pair(10, 12, 10, 0.5, 0.5, 10);
    let out = run_df(&accel, &a, &b, Dataflow::GustavsonM).unwrap();
    let t = &out.report.traffic;
    assert!(t.dram_read_bytes >= t.str_fill_bytes);
    assert_eq!(out.report.psram.spilled_elements, 0);
    assert_eq!(
        t.dram_write_bytes,
        out.c_bytes(),
        "with no spills, DRAM writes are exactly the output"
    );
}

trait OutBytes {
    fn c_bytes(&self) -> u64;
}
impl OutBytes for flexagon_core::RunOutput {
    fn c_bytes(&self) -> u64 {
        self.c.nnz() as u64 * ELEMENT_BYTES
    }
}

#[test]
fn cycles_scale_with_problem_size() {
    let accel = Flexagon::new(AcceleratorConfig::table5());
    let (a1, b1) = pair(16, 16, 16, 0.3, 0.3, 11);
    let (a2, b2) = pair(128, 128, 128, 0.3, 0.3, 12);
    for df in Dataflow::M_STATIONARY {
        let small = run_df(&accel, &a1, &b1, df).unwrap();
        let large = run_df(&accel, &a2, &b2, df).unwrap();
        assert!(
            large.report.total_cycles > small.report.total_cycles,
            "{df}: {} !> {}",
            large.report.total_cycles,
            small.report.total_cycles
        );
    }
}

#[test]
fn phase_cycles_sum_to_total() {
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    let (a, b) = pair(20, 25, 15, 0.4, 0.4, 13);
    for df in Dataflow::ALL {
        let out = run_df(&accel, &a, &b, df).unwrap();
        assert_eq!(out.report.phases.total(), out.report.total_cycles, "{df}");
    }
}

#[test]
fn stationary_traffic_is_negligible_fraction() {
    // Fig. 14: "the negligible traffic that is fetched from the memory
    // structure for the STA matrix".
    let accel = Flexagon::new(AcceleratorConfig::table5());
    let (a, b) = pair(64, 96, 64, 0.3, 0.4, 14);
    for df in Dataflow::M_STATIONARY {
        let out = run_df(&accel, &a, &b, df).unwrap();
        let t = &out.report.traffic;
        assert!(
            t.sta_onchip_bytes * 4 <= t.onchip_total(),
            "{df}: STA {} vs total {}",
            t.sta_onchip_bytes,
            t.onchip_total()
        );
    }
}

#[test]
fn psram_spills_surface_in_offchip_traffic() {
    // A tiny PSRAM (256 B) with a psum-heavy OP run must spill.
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    let (a, b) = pair(12, 40, 40, 0.6, 0.6, 15);
    let out = run_df(&accel, &a, &b, Dataflow::OuterProductM).unwrap();
    assert!(out.report.psram.spilled_elements > 0, "must spill");
    assert!(
        out.report.traffic.dram_write_bytes > out.c.nnz() as u64 * ELEMENT_BYTES,
        "spill writes exceed the plain output traffic"
    );
}
