//! Invariants of the execution report that must hold for any input and any
//! dataflow — conservation laws of the simulation.

use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, Flexagon};
use flexagon_sparse::{gen, CompressedMatrix, MajorOrder, ELEMENT_BYTES};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    df: Dataflow,
) -> flexagon_core::Result<flexagon_core::RunOutput> {
    accel
        .execute(flexagon_core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

fn random_pair(
    m: u32,
    k: u32,
    n: u32,
    da: f64,
    db: f64,
    seed: u64,
) -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (
        gen::random(m, k, da, MajorOrder::Row, &mut rng),
        gen::random(k, n, db, MajorOrder::Row, &mut rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Conservation laws that hold for every dataflow on every input.
    #[test]
    fn conservation_laws(
        m in 1u32..20, k in 1u32..20, n in 1u32..20,
        da in 0.05f64..0.9, db in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let (a, b) = random_pair(m, k, n, da, db, seed);
        let accel = Flexagon::new(AcceleratorConfig::tiny());
        for df in Dataflow::ALL {
            let out = run_df(&accel, &a, &b, df).unwrap();
            let r = &out.report;

            // Work conservation: the MN performed exactly the effectual
            // products, and the output holds at most that many elements.
            prop_assert_eq!(r.multiplications, r.work.products);
            prop_assert!(out.c.nnz() as u64 <= r.work.products);

            // The stationary matrix is read exactly once from DRAM.
            prop_assert_eq!(
                r.traffic.sta_onchip_bytes,
                r.work.nnz_a * ELEMENT_BYTES,
                "{}: STA traffic",
                df
            );

            // Off-chip reads cover at least the cache fills; writes cover
            // at least the final output.
            prop_assert!(r.traffic.dram_read_bytes >= r.traffic.str_fill_bytes);
            prop_assert!(
                r.traffic.dram_write_bytes >= out.c.nnz() as u64 * ELEMENT_BYTES
            );

            // Phases sum to the total.
            prop_assert_eq!(r.phases.total(), r.total_cycles);

            // Inner product never produces psums.
            if !df.requires_merging() {
                prop_assert_eq!(r.traffic.psum_onchip_bytes, 0, "{}", df);
            }

            // Cycles are zero only for empty work.
            if r.work.products > 0 {
                prop_assert!(r.total_cycles > 0);
            }
        }
    }

    /// Flexagon's oracle choice is optimal among supported dataflows, and
    /// tighter hardware never makes a dataflow faster.
    #[test]
    fn more_multipliers_never_hurt(
        seed in 0u64..200,
    ) {
        let (a, b) = random_pair(24, 24, 24, 0.4, 0.4, seed);
        for df in Dataflow::M_STATIONARY {
            let mut small_cfg = AcceleratorConfig::table5();
            small_cfg.multipliers = 8;
            let small = run_df(&Flexagon::new(small_cfg), &a, &b, df).unwrap();
            let large = run_df(&Flexagon::with_defaults(), &a, &b, df).unwrap();
            prop_assert!(
                large.report.total_cycles <= small.report.total_cycles,
                "{df}: 64 mults {} vs 8 mults {}",
                large.report.total_cycles,
                small.report.total_cycles
            );
        }
    }

    /// A larger cache never increases the miss count.
    #[test]
    fn bigger_cache_never_misses_more(seed in 0u64..200) {
        let (a, b) = random_pair(20, 30, 24, 0.5, 0.5, seed);
        let mut small_cfg = AcceleratorConfig::tiny();
        small_cfg.memory.cache.capacity_bytes = 256;
        small_cfg.memory.cache.associativity = 1;
        let mut big_cfg = small_cfg;
        big_cfg.memory.cache.capacity_bytes = 64 << 10;
        big_cfg.memory.cache.associativity = 16;
        let small = run_df(&Flexagon::new(small_cfg), &a, &b, Dataflow::GustavsonM).unwrap();
        let big = run_df(&Flexagon::new(big_cfg), &a, &b, Dataflow::GustavsonM).unwrap();
        prop_assert!(big.report.cache.misses() <= small.report.cache.misses());
    }
}
