//! Functional correctness of the engine: every dataflow, on every
//! accelerator, must produce exactly the product matrix.

use flexagon_core::{
    Accelerator, AcceleratorConfig, Dataflow, Flexagon, GammaLike, SigmaLike, SparchLike,
};
use flexagon_sparse::{gen, CompressedMatrix, DenseMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One fixed-dataflow run through the unified `execute` entry point (the
/// deprecated `run` wrapper keeps its own coverage in the core crate).
fn run_df(
    accel: &impl Accelerator,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    df: Dataflow,
) -> flexagon_core::Result<flexagon_core::RunOutput> {
    accel
        .execute(flexagon_core::ExecutionRequest::new(a, b).dataflow(df))
        .map(|ex| ex.output)
}

fn golden(a: &CompressedMatrix, b: &CompressedMatrix) -> DenseMatrix {
    DenseMatrix::from_compressed(a)
        .matmul(&DenseMatrix::from_compressed(b))
        .unwrap()
}

fn check_all_dataflows(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) {
    let accel = Flexagon::new(*cfg);
    let want = golden(a, b);
    for df in Dataflow::ALL {
        let out = run_df(&accel, a, b, df).unwrap_or_else(|e| panic!("{df} failed: {e}"));
        assert_eq!(out.c.order(), df.c_format(), "{df} output format");
        assert_eq!(out.c.rows(), a.rows());
        assert_eq!(out.c.cols(), b.cols());
        out.c.validate().expect("output must be structurally valid");
        let got = DenseMatrix::from_compressed(&out.c);
        assert!(
            got.approx_eq(&want, 1e-2),
            "{df}: max diff {}",
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn random_problems_tiny_config() {
    // The tiny config (4 multipliers, 512 B cache, 256 B PSRAM) forces row
    // splitting, cache thrash and PSRAM spills even on small inputs.
    let cfg = AcceleratorConfig::tiny();
    for seed in 0..8 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gen::random(13, 17, 0.35, MajorOrder::Row, &mut rng);
        let b = gen::random(17, 11, 0.4, MajorOrder::Row, &mut rng);
        check_all_dataflows(&cfg, &a, &b);
    }
}

#[test]
fn random_problems_table5_config() {
    let cfg = AcceleratorConfig::table5();
    for seed in 100..104 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gen::random(40, 60, 0.25, MajorOrder::Row, &mut rng);
        let b = gen::random(60, 50, 0.3, MajorOrder::Row, &mut rng);
        check_all_dataflows(&cfg, &a, &b);
    }
}

#[test]
fn long_rows_force_cluster_splitting() {
    // Rows of 40+ nnz on a 4-multiplier array: 10+ chunks per row.
    let cfg = AcceleratorConfig::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = gen::random(6, 50, 0.9, MajorOrder::Row, &mut rng);
    let b = gen::random(50, 30, 0.5, MajorOrder::Row, &mut rng);
    check_all_dataflows(&cfg, &a, &b);
}

#[test]
fn hypersparse_inputs() {
    let cfg = AcceleratorConfig::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let a = gen::random(50, 50, 0.02, MajorOrder::Row, &mut rng);
    let b = gen::random(50, 50, 0.02, MajorOrder::Row, &mut rng);
    check_all_dataflows(&cfg, &a, &b);
}

#[test]
fn fully_dense_inputs() {
    let cfg = AcceleratorConfig::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let a = gen::random(10, 10, 1.0, MajorOrder::Row, &mut rng);
    let b = gen::random(10, 10, 1.0, MajorOrder::Row, &mut rng);
    check_all_dataflows(&cfg, &a, &b);
}

#[test]
fn empty_operands_give_empty_output() {
    let cfg = AcceleratorConfig::tiny();
    let accel = Flexagon::new(cfg);
    let a = CompressedMatrix::zero(5, 6, MajorOrder::Row);
    let b = CompressedMatrix::zero(6, 7, MajorOrder::Row);
    for df in Dataflow::ALL {
        let out = run_df(&accel, &a, &b, df).unwrap();
        assert_eq!(out.c.nnz(), 0, "{df}");
        assert_eq!(out.report.total_cycles, 0, "{df} should be free");
    }
}

#[test]
fn single_element_matrices() {
    let cfg = AcceleratorConfig::tiny();
    let accel = Flexagon::new(cfg);
    let a = CompressedMatrix::from_triplets(1, 1, &[(0, 0, 3.0)], MajorOrder::Row).unwrap();
    let b = CompressedMatrix::from_triplets(1, 1, &[(0, 0, 4.0)], MajorOrder::Row).unwrap();
    for df in Dataflow::ALL {
        let out = run_df(&accel, &a, &b, df).unwrap();
        assert_eq!(out.c.get(0, 0), 12.0, "{df}");
        assert!(out.report.total_cycles > 0, "{df} must cost something");
    }
}

#[test]
fn rectangular_extremes() {
    let cfg = AcceleratorConfig::tiny();
    for (m, k, n) in [(1, 40, 1), (40, 1, 40), (2, 3, 60), (60, 3, 2)] {
        let mut rng = ChaCha8Rng::seed_from_u64((m * 1000 + k * 10 + n) as u64);
        let a = gen::random(m, k, 0.6, MajorOrder::Row, &mut rng);
        let b = gen::random(k, n, 0.6, MajorOrder::Row, &mut rng);
        check_all_dataflows(&cfg, &a, &b);
    }
}

#[test]
fn banded_and_block_structures() {
    let cfg = AcceleratorConfig::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let a = gen::banded(24, 3, 0.8, MajorOrder::Row, &mut rng);
    let b = gen::block_sparse(24, 24, 4, 0.5, MajorOrder::Row, &mut rng);
    check_all_dataflows(&cfg, &a, &b);
}

#[test]
fn baselines_match_flexagon_functionally() {
    let cfg = AcceleratorConfig::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let a = gen::random(15, 20, 0.3, MajorOrder::Row, &mut rng);
    let b = gen::random(20, 12, 0.3, MajorOrder::Row, &mut rng);
    let want = golden(&a, &b);
    let sigma = run_df(&SigmaLike::new(cfg), &a, &b, Dataflow::InnerProductM).unwrap();
    let sparch = run_df(&SparchLike::new(cfg), &a, &b, Dataflow::OuterProductM).unwrap();
    let gamma = run_df(&GammaLike::new(cfg), &a, &b, Dataflow::GustavsonM).unwrap();
    for out in [sigma, sparch, gamma] {
        assert!(DenseMatrix::from_compressed(&out.c).approx_eq(&want, 1e-2));
    }
}

#[test]
fn n_stationary_equals_m_stationary_transposed() {
    let cfg = AcceleratorConfig::tiny();
    let accel = Flexagon::new(cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let a = gen::random(12, 14, 0.4, MajorOrder::Row, &mut rng);
    let b = gen::random(14, 10, 0.4, MajorOrder::Row, &mut rng);
    for class_pair in [
        (Dataflow::InnerProductM, Dataflow::InnerProductN),
        (Dataflow::OuterProductM, Dataflow::OuterProductN),
        (Dataflow::GustavsonM, Dataflow::GustavsonN),
    ] {
        let m = run_df(&accel, &a, &b, class_pair.0).unwrap();
        let n = run_df(&accel, &a, &b, class_pair.1).unwrap();
        assert!(
            m.c.approx_eq(&n.c, 1e-3),
            "{} vs {}",
            class_pair.0,
            class_pair.1
        );
        // The N-variant on (A, B) costs what the M-variant costs on the
        // transposed problem — same tiles, same traffic, mirrored.
        assert_eq!(m.report.work.products, n.report.work.products);
    }
}

#[test]
fn explicit_conversions_are_counted() {
    let cfg = AcceleratorConfig::tiny();
    let accel = Flexagon::new(cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(51);
    let a = gen::random(8, 8, 0.5, MajorOrder::Row, &mut rng);
    let b = gen::random(8, 8, 0.5, MajorOrder::Row, &mut rng);
    // Gustavson(M) wants CSR x CSR: as given, no conversions.
    let ok = run_df(&accel, &a, &b, Dataflow::GustavsonM).unwrap();
    assert_eq!(ok.report.explicit_conversions, 0);
    // Inner-Product(M) wants B in CSC: one conversion.
    let one = run_df(&accel, &a, &b, Dataflow::InnerProductM).unwrap();
    assert_eq!(one.report.explicit_conversions, 1);
    // Outer-Product(M) wants A in CSC: also one.
    let op = run_df(&accel, &a, &b, Dataflow::OuterProductM).unwrap();
    assert_eq!(op.report.explicit_conversions, 1);
}
