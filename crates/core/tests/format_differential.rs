//! Differential tests for the storage-format tier at the engine level: a
//! pinned *lossless* format must be result-transparent — byte-identical
//! output matrix **and** byte-identical execution report — against the SoA
//! baseline, across all six dataflows and the adversarial generator sweep.
//!
//! This is the contract that lets the mapper treat format as a free
//! mapping dimension and lets `FLEXAGON_FORMAT` force CI through any
//! lossless tier without re-blessing goldens.

use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
use flexagon_sparse::{gen, DenseMatrix, FiberFormat, FormattedMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs one `(dataflow, format)` point and returns the output.
fn run(
    accel: &Flexagon,
    a: &flexagon_sparse::CompressedMatrix,
    b: &flexagon_sparse::CompressedMatrix,
    df: Dataflow,
    format: FiberFormat,
) -> flexagon_core::RunOutput {
    accel
        .execute(ExecutionRequest::new(a, b).dataflow(df).format(format))
        .unwrap_or_else(|e| panic!("{df} @ {format} failed: {e}"))
        .output
}

/// Every lossless non-SoA format, on every dataflow, over the adversarial
/// sweep: outputs and reports must equal the SoA run bit for bit.
#[test]
fn lossless_formats_are_result_transparent_on_every_dataflow() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let scenarios = gen::adversarial_sweep(&mut rng);
    assert!(scenarios.len() >= 7, "sweep lost scenarios");
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    for s in &scenarios {
        for df in Dataflow::ALL {
            let baseline = run(&accel, &s.a, &s.b, df, FiberFormat::Soa);
            for format in FiberFormat::ALL {
                if format == FiberFormat::Soa || !format.is_lossless() {
                    continue;
                }
                let formatted = run(&accel, &s.a, &s.b, df, format);
                assert_eq!(
                    formatted.c, baseline.c,
                    "{}: {df} output differs under {format}",
                    s.name
                );
                assert_eq!(
                    serde_json::to_string(&formatted.report).unwrap(),
                    serde_json::to_string(&baseline.report).unwrap(),
                    "{}: {df} report differs under {format}",
                    s.name
                );
            }
        }
    }
}

/// The lossy quantized tier is *opt-in* and close, not identical: under
/// `q8` every dataflow still computes a product within the per-block
/// quantization tolerance of the exact one, and structure is untouched.
#[test]
fn quantized_execution_stays_within_tolerance() {
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let a = gen::random(48, 64, 0.2, flexagon_sparse::MajorOrder::Row, &mut rng);
    let b = gen::random(64, 40, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    // The engine computes on dequantized operands, so the right reference
    // is the dense product of the *quantized* operands — exactly what the
    // documented bound covers — plus a sanity band against the true one.
    let aq = FormattedMatrix::encode(&a, FiberFormat::Quant8).decode();
    let bq = FormattedMatrix::encode(&b, FiberFormat::Quant8).decode();
    let want_q = DenseMatrix::from_compressed(&aq)
        .matmul(&DenseMatrix::from_compressed(&bq))
        .expect("dims agree");
    let want_exact = DenseMatrix::from_compressed(&a)
        .matmul(&DenseMatrix::from_compressed(&b))
        .expect("dims agree");
    for df in Dataflow::ALL {
        let out = run(&accel, &a, &b, df, FiberFormat::Quant8);
        let got = DenseMatrix::from_compressed(&out.c);
        assert!(
            got.approx_eq(&want_q, 1e-3),
            "{df}: quantized run differs from the quantized reference"
        );
        // |v - v'| <= max_abs/254 per operand element; through a K-deep
        // dot product the product error stays far inside this band for
        // these magnitudes.
        assert!(
            got.approx_eq(&want_exact, 0.5),
            "{df}: quantized run drifted past the documented tolerance"
        );
    }
}

/// `FormatChoice::Auto` never picks the lossy tier, whatever the operand
/// structure — quantization is strictly opt-in.
#[test]
fn auto_selection_never_picks_quant() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let scenarios = gen::adversarial_sweep(&mut rng);
    let accel = Flexagon::new(AcceleratorConfig::tiny());
    for s in &scenarios {
        let ex = accel
            .execute(
                ExecutionRequest::new(&s.a, &s.b)
                    .strategy(flexagon_core::MappingStrategy::Heuristic)
                    .format_choice(flexagon_core::FormatChoice::Auto),
            )
            .unwrap_or_else(|e| panic!("{}: auto run failed: {e}", s.name));
        assert!(
            ex.format.is_lossless(),
            "{}: auto picked lossy {}",
            s.name,
            ex.format
        );
    }
}
