//! The six SpMSpM dataflows and their taxonomy (paper §2.2, Fig. 2, Table 3).

use flexagon_sparse::MajorOrder;
use serde::{Deserialize, Serialize};

/// The three base SpMSpM dataflows, classified by where the shared dimension
/// `K` co-iterates in the loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowClass {
    /// Co-iteration at the innermost loop: full sums, intersection hardware.
    InnerProduct,
    /// Co-iteration at the outermost loop: psums for whole matrices, merger.
    OuterProduct,
    /// Co-iteration at the middle loop: psums into the current fiber,
    /// leader-follower intersection.
    Gustavson,
}

impl std::fmt::Display for DataflowClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InnerProduct => write!(f, "Inner Product"),
            Self::OuterProduct => write!(f, "Outer Product"),
            Self::Gustavson => write!(f, "Gustavson's"),
        }
    }
}

/// Which independent dimension stays outermost (and thus stationary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stationarity {
    /// M-stationary: output produced row-wise (CSR).
    M,
    /// N-stationary: output produced column-wise (CSC).
    N,
}

/// One of the six dataflow variants of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// MNK loop order — `Inner-Product(M)`.
    InnerProductM,
    /// KMN loop order — `Outer-Product(M)`.
    OuterProductM,
    /// MKN loop order — `Gustavson(M)`.
    GustavsonM,
    /// NMK loop order — `Inner-Product(N)`.
    InnerProductN,
    /// KNM loop order — `Outer-Product(N)`.
    OuterProductN,
    /// NKM loop order — `Gustavson(N)`.
    GustavsonN,
}

impl Dataflow {
    /// All six variants in Table 3 order.
    pub const ALL: [Dataflow; 6] = [
        Dataflow::InnerProductM,
        Dataflow::OuterProductM,
        Dataflow::GustavsonM,
        Dataflow::InnerProductN,
        Dataflow::OuterProductN,
        Dataflow::GustavsonN,
    ];

    /// The three M-stationary variants (one per class).
    pub const M_STATIONARY: [Dataflow; 3] = [
        Dataflow::InnerProductM,
        Dataflow::OuterProductM,
        Dataflow::GustavsonM,
    ];

    /// The base dataflow class.
    pub fn class(self) -> DataflowClass {
        match self {
            Self::InnerProductM | Self::InnerProductN => DataflowClass::InnerProduct,
            Self::OuterProductM | Self::OuterProductN => DataflowClass::OuterProduct,
            Self::GustavsonM | Self::GustavsonN => DataflowClass::Gustavson,
        }
    }

    /// The stationary independent dimension.
    pub fn stationarity(self) -> Stationarity {
        match self {
            Self::InnerProductM | Self::OuterProductM | Self::GustavsonM => Stationarity::M,
            Self::InnerProductN | Self::OuterProductN | Self::GustavsonN => Stationarity::N,
        }
    }

    /// Loop order, outermost first (Table 3's "Dataflow" column).
    pub fn loop_order(self) -> &'static str {
        match self {
            Self::InnerProductM => "MNK",
            Self::OuterProductM => "KMN",
            Self::GustavsonM => "MKN",
            Self::InnerProductN => "NMK",
            Self::OuterProductN => "KNM",
            Self::GustavsonN => "NKM",
        }
    }

    /// Informal name (Table 3).
    pub fn informal_name(self) -> &'static str {
        match self {
            Self::InnerProductM => "Inner Product(M)",
            Self::OuterProductM => "Outer Product(M)",
            Self::GustavsonM => "Gustavson's(M)",
            Self::InnerProductN => "Inner Product(N)",
            Self::OuterProductN => "Outer Product(N)",
            Self::GustavsonN => "Gustavson's(N)",
        }
    }

    /// Compression format required for operand A (Table 3).
    pub fn a_format(self) -> MajorOrder {
        match self {
            Self::InnerProductM | Self::GustavsonM | Self::InnerProductN => MajorOrder::Row,
            Self::OuterProductM | Self::OuterProductN | Self::GustavsonN => MajorOrder::Col,
        }
    }

    /// Compression format required for operand B (Table 3).
    pub fn b_format(self) -> MajorOrder {
        match self {
            Self::InnerProductM | Self::InnerProductN | Self::GustavsonN => MajorOrder::Col,
            Self::OuterProductM | Self::GustavsonM | Self::OuterProductN => MajorOrder::Row,
        }
    }

    /// Compression format of the produced output C (Table 3): M-stationary
    /// dataflows emit CSR, N-stationary emit CSC.
    pub fn c_format(self) -> MajorOrder {
        match self.stationarity() {
            Stationarity::M => MajorOrder::Row,
            Stationarity::N => MajorOrder::Col,
        }
    }

    /// Whether the dataflow produces partial sums that require merging
    /// (Table 3's "Merging" column; Inner Product does not).
    pub fn requires_merging(self) -> bool {
        !matches!(self.class(), DataflowClass::InnerProduct)
    }

    /// Table 3's "Intersection" column.
    pub fn intersection(self) -> &'static str {
        match self {
            Self::InnerProductM => "Scalar A vs Scalar B",
            Self::InnerProductN => "Scalar B vs Scalar A",
            Self::GustavsonM => "Scalar A vs Fiber B",
            Self::GustavsonN => "Scalar B vs Fiber A",
            Self::OuterProductM | Self::OuterProductN => "N/A",
        }
    }

    /// Table 3's "Merging" column.
    pub fn merging(self) -> &'static str {
        match self {
            Self::InnerProductM | Self::InnerProductN => "N/A",
            Self::OuterProductM | Self::OuterProductN => "Scalar",
            Self::GustavsonM => "Fiber(M)",
            Self::GustavsonN => "Fiber(N)",
        }
    }

    /// The same class with the opposite stationarity.
    #[must_use]
    pub fn flipped_stationarity(self) -> Dataflow {
        match self {
            Self::InnerProductM => Self::InnerProductN,
            Self::OuterProductM => Self::OuterProductN,
            Self::GustavsonM => Self::GustavsonN,
            Self::InnerProductN => Self::InnerProductM,
            Self::OuterProductN => Self::OuterProductM,
            Self::GustavsonN => Self::GustavsonM,
        }
    }

    /// The M-stationary variant of this dataflow's class.
    #[must_use]
    pub fn as_m_stationary(self) -> Dataflow {
        match self.class() {
            DataflowClass::InnerProduct => Self::InnerProductM,
            DataflowClass::OuterProduct => Self::OuterProductM,
            DataflowClass::Gustavson => Self::GustavsonM,
        }
    }

    /// Short command-line token (`spgemm_cli` and the mapping-strategy
    /// parser): `ip-m`, `op-m`, `gust-m`, `ip-n`, `op-n`, `gust-n`.
    pub fn token(self) -> &'static str {
        match self {
            Self::InnerProductM => "ip-m",
            Self::OuterProductM => "op-m",
            Self::GustavsonM => "gust-m",
            Self::InnerProductN => "ip-n",
            Self::OuterProductN => "op-n",
            Self::GustavsonN => "gust-n",
        }
    }

    /// Parses a short token produced by [`Dataflow::token`].
    pub fn from_token(s: &str) -> Option<Dataflow> {
        Self::ALL.into_iter().find(|d| d.token() == s)
    }
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.informal_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_formats_m_stationary() {
        // MNK: A CSR, B CSC, C CSR.
        assert_eq!(Dataflow::InnerProductM.a_format(), MajorOrder::Row);
        assert_eq!(Dataflow::InnerProductM.b_format(), MajorOrder::Col);
        assert_eq!(Dataflow::InnerProductM.c_format(), MajorOrder::Row);
        // KMN: A CSC, B CSR, C CSR.
        assert_eq!(Dataflow::OuterProductM.a_format(), MajorOrder::Col);
        assert_eq!(Dataflow::OuterProductM.b_format(), MajorOrder::Row);
        assert_eq!(Dataflow::OuterProductM.c_format(), MajorOrder::Row);
        // MKN: A CSR, B CSR, C CSR.
        assert_eq!(Dataflow::GustavsonM.a_format(), MajorOrder::Row);
        assert_eq!(Dataflow::GustavsonM.b_format(), MajorOrder::Row);
        assert_eq!(Dataflow::GustavsonM.c_format(), MajorOrder::Row);
    }

    #[test]
    fn table3_formats_n_stationary() {
        // NMK: A CSR, B CSC, C CSC.
        assert_eq!(Dataflow::InnerProductN.a_format(), MajorOrder::Row);
        assert_eq!(Dataflow::InnerProductN.b_format(), MajorOrder::Col);
        assert_eq!(Dataflow::InnerProductN.c_format(), MajorOrder::Col);
        // KNM: A CSC, B CSR, C CSC.
        assert_eq!(Dataflow::OuterProductN.a_format(), MajorOrder::Col);
        assert_eq!(Dataflow::OuterProductN.b_format(), MajorOrder::Row);
        assert_eq!(Dataflow::OuterProductN.c_format(), MajorOrder::Col);
        // NKM: A CSC, B CSC, C CSC.
        assert_eq!(Dataflow::GustavsonN.a_format(), MajorOrder::Col);
        assert_eq!(Dataflow::GustavsonN.b_format(), MajorOrder::Col);
        assert_eq!(Dataflow::GustavsonN.c_format(), MajorOrder::Col);
    }

    #[test]
    fn loop_orders_match_table3() {
        let orders: Vec<&str> = Dataflow::ALL.iter().map(|d| d.loop_order()).collect();
        assert_eq!(orders, vec!["MNK", "KMN", "MKN", "NMK", "KNM", "NKM"]);
    }

    #[test]
    fn only_inner_product_skips_merging() {
        for d in Dataflow::ALL {
            assert_eq!(
                d.requires_merging(),
                d.class() != DataflowClass::InnerProduct,
                "{d}"
            );
        }
    }

    #[test]
    fn merging_column_matches_table3() {
        assert_eq!(Dataflow::InnerProductM.merging(), "N/A");
        assert_eq!(Dataflow::OuterProductM.merging(), "Scalar");
        assert_eq!(Dataflow::GustavsonM.merging(), "Fiber(M)");
        assert_eq!(Dataflow::GustavsonN.merging(), "Fiber(N)");
    }

    #[test]
    fn stationarity_partitions_variants() {
        let m: Vec<_> = Dataflow::ALL
            .iter()
            .filter(|d| d.stationarity() == Stationarity::M)
            .collect();
        assert_eq!(m.len(), 3);
        assert_eq!(Dataflow::M_STATIONARY.len(), 3);
    }

    #[test]
    fn flip_is_involution() {
        for d in Dataflow::ALL {
            assert_eq!(d.flipped_stationarity().flipped_stationarity(), d);
            assert_eq!(d.flipped_stationarity().class(), d.class());
            assert_ne!(d.flipped_stationarity().stationarity(), d.stationarity());
        }
    }

    #[test]
    fn as_m_stationary_fixes_stationarity() {
        for d in Dataflow::ALL {
            assert_eq!(d.as_m_stationary().stationarity(), Stationarity::M);
            assert_eq!(d.as_m_stationary().class(), d.class());
        }
    }

    #[test]
    fn tokens_round_trip() {
        for d in Dataflow::ALL {
            assert_eq!(Dataflow::from_token(d.token()), Some(d));
        }
        assert_eq!(Dataflow::from_token("csr"), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Dataflow::GustavsonM), "Gustavson's(M)");
        assert_eq!(format!("{}", DataflowClass::OuterProduct), "Outer Product");
    }
}
