//! Inter-layer dataflow transitions (paper §3.3, Table 4).
//!
//! "M-stationary dataflows output the elements in CSR format while
//! N-stationary dataflows output the elements in CSC format. Flexagon
//! supports the six dataflows and takes advantage of this observation to
//! appropriately execute every possible sequence of DNN layers without
//! requiring costly explicit hardware format conversions."
//!
//! A transition from a producing layer to a consuming layer is free exactly
//! when the producer's C format equals the consumer's A format; otherwise an
//! Explicit Conversion (EC) would be needed.

use crate::Dataflow;

/// Returns `true` when the output of a layer run with `producer` can feed a
/// layer run with `consumer` without an explicit format conversion.
///
/// This reproduces Table 4 (rows = producer, columns = consumer): a green
/// tick in the paper corresponds to `true` here.
pub fn is_free(producer: Dataflow, consumer: Dataflow) -> bool {
    producer.c_format() == consumer.a_format()
}

/// Returns the dataflows that can consume `producer`'s output for free.
pub fn free_successors(producer: Dataflow) -> Vec<Dataflow> {
    Dataflow::ALL
        .into_iter()
        .filter(|&d| is_free(producer, d))
        .collect()
}

/// Returns the dataflows whose output `consumer` can accept for free.
pub fn free_predecessors(consumer: Dataflow) -> Vec<Dataflow> {
    Dataflow::ALL
        .into_iter()
        .filter(|&d| is_free(d, consumer))
        .collect()
}

/// The full 6x6 transition matrix in Table 4's row/column order;
/// `matrix()[i][j]` is `true` when row `i`'s output feeds column `j` free of
/// conversion.
pub fn matrix() -> [[bool; 6]; 6] {
    let mut m = [[false; 6]; 6];
    for (i, prod) in Dataflow::ALL.iter().enumerate() {
        for (j, cons) in Dataflow::ALL.iter().enumerate() {
            m[i][j] = is_free(*prod, *cons);
        }
    }
    m
}

/// Selects, for each layer in a chain, a dataflow from `preferred` such that
/// every adjacent transition is conversion-free, if possible.
///
/// `preferred[i]` lists layer `i`'s dataflows in descending preference (as
/// produced by the mapper). Returns `None` when no conversion-free chain
/// exists using the given preferences.
///
/// This is the decision the paper assigns to the mapper/compiler: "These
/// combinations can be utilized by the mapper/compiler to generate the best
/// sequence of dataflows".
pub fn plan_chain(preferred: &[Vec<Dataflow>]) -> Option<Vec<Dataflow>> {
    fn solve(prev: Option<Dataflow>, rest: &[Vec<Dataflow>]) -> Option<Vec<Dataflow>> {
        let Some((head, tail)) = rest.split_first() else {
            return Some(Vec::new());
        };
        for &candidate in head {
            let ok = match prev {
                None => true,
                Some(p) => is_free(p, candidate),
            };
            if ok {
                if let Some(mut plan) = solve(Some(candidate), tail) {
                    plan.insert(0, candidate);
                    return Some(plan);
                }
            }
        }
        None
    }
    solve(None, preferred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataflow as D;

    /// Table 4, transcribed: rows/columns in `Dataflow::ALL` order, `true`
    /// = no explicit conversion required (the paper's green tick).
    const TABLE4: [[bool; 6]; 6] = [
        // IP(M)   OP(M)  Gust(M) IP(N)  OP(N)  Gust(N)
        [true, false, true, true, false, false], // from IP(M)
        [true, false, true, true, false, false], // from OP(M)
        [true, false, true, true, false, false], // from Gust(M)
        [false, true, false, false, true, true], // from IP(N)
        [false, true, false, false, true, true], // from OP(N)
        [false, true, false, false, true, true], // from Gust(N)
    ];

    #[test]
    fn matrix_reproduces_table4_exactly() {
        assert_eq!(matrix(), TABLE4);
    }

    #[test]
    fn m_stationary_feeds_csr_consumers() {
        assert!(is_free(D::InnerProductM, D::GustavsonM));
        assert!(is_free(D::GustavsonM, D::InnerProductN));
        assert!(!is_free(D::GustavsonM, D::OuterProductM));
    }

    #[test]
    fn n_stationary_feeds_csc_consumers() {
        assert!(is_free(D::InnerProductN, D::OuterProductM));
        assert!(is_free(D::OuterProductN, D::GustavsonN));
        assert!(!is_free(D::OuterProductN, D::InnerProductM));
    }

    #[test]
    fn successors_and_predecessors_are_consistent() {
        for d in D::ALL {
            for s in free_successors(d) {
                assert!(free_predecessors(s).contains(&d));
            }
        }
    }

    #[test]
    fn every_dataflow_has_three_free_successors() {
        // Each output format (CSR or CSC) is consumed by exactly 3 dataflows.
        for d in D::ALL {
            assert_eq!(free_successors(d).len(), 3, "{d}");
        }
    }

    #[test]
    fn paper_fig8_example_chain_is_free() {
        // Fig. 8: IP(N) -> OP(M) -> Gust(M).
        assert!(is_free(D::InnerProductN, D::OuterProductM));
        assert!(is_free(D::OuterProductM, D::GustavsonM));
    }

    #[test]
    fn plan_chain_finds_fig8_plan() {
        // Layer 1 prefers IP, layer 2 prefers OP, layer 3 prefers Gust;
        // the planner must pick stationarities that chain for free.
        let preferred = vec![
            vec![D::InnerProductN, D::InnerProductM],
            vec![D::OuterProductM, D::OuterProductN],
            vec![D::GustavsonM, D::GustavsonN],
        ];
        let plan = plan_chain(&preferred).expect("a free chain exists");
        assert_eq!(
            plan,
            vec![D::InnerProductN, D::OuterProductM, D::GustavsonM]
        );
    }

    #[test]
    fn plan_chain_backtracks() {
        // First choice of layer 1 (IP(M) outputs CSR) cannot feed OP(M)
        // (needs CSC), so the planner must fall back to IP(N).
        let preferred = vec![
            vec![D::InnerProductM, D::InnerProductN],
            vec![D::OuterProductM],
        ];
        let plan = plan_chain(&preferred).expect("fallback chain exists");
        assert_eq!(plan, vec![D::InnerProductN, D::OuterProductM]);
    }

    #[test]
    fn plan_chain_reports_impossible() {
        // OP(M) output is CSR; OP(M) input must be CSC: no free chain.
        let preferred = vec![vec![D::OuterProductM], vec![D::OuterProductM]];
        assert_eq!(plan_chain(&preferred), None);
    }

    #[test]
    fn plan_chain_empty_is_trivially_free() {
        assert_eq!(plan_chain(&[]), Some(vec![]));
    }
}
