//! The CPU MKL baseline (paper §4).
//!
//! The paper measures Intel MKL's SpMSpM on a 4-core i5-7400 at 3 GHz and
//! reports total cycles per model (Table 2, last column). We cannot run
//! MKL; instead we execute the same Gustavson SpGEMM in software and charge
//! a calibrated superscalar-CPU cost model. The model only needs to place
//! the CPU 1–2 orders of magnitude behind the accelerators — the property
//! Figs. 12's speed-ups rest on — and its two constants are documented and
//! tunable.

use crate::{Dataflow, ExecutionReport, Result, RunOutput, TrafficReport};
use flexagon_sim::{CounterSet, Cycle, Phase, PhaseClock, Ratio};
use flexagon_sparse::{reference, stats::SpGemmWork, CompressedMatrix, MajorOrder};
use serde::{Deserialize, Serialize};

/// Cost-model constants for the CPU baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Cycles per effectual multiply-accumulate.
    ///
    /// MKL's sparse-sparse kernel is gather/scatter-bound: each product
    /// involves an index load, a value load, a hash/accumulator update and
    /// poor SIMD utilization. The default (4 cycles/product across the
    /// whole chip) reproduces the order of magnitude of Table 2's measured
    /// cycle counts on our synthetic suite.
    pub cycles_per_product: f64,
    /// Cycles per compressed input/output element touched (streaming the
    /// operands and writing the result through the cache hierarchy).
    pub cycles_per_element: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            cycles_per_product: 4.0,
            cycles_per_element: 2.0,
        }
    }
}

/// The CPU MKL stand-in: software Gustavson SpGEMM plus a cycle model.
#[derive(Debug, Clone, Default)]
pub struct CpuMkl {
    cfg: CpuConfig,
}

impl CpuMkl {
    /// Creates a CPU baseline with the given cost model.
    pub fn new(cfg: CpuConfig) -> Self {
        Self { cfg }
    }

    /// Creates a CPU baseline with the default calibration.
    pub fn with_defaults() -> Self {
        Self::new(CpuConfig::default())
    }

    /// The cost-model constants.
    pub fn config(&self) -> CpuConfig {
        self.cfg
    }

    /// Executes `a x b` (any input formats; CSR output) and returns the
    /// result with a cycle estimate in an [`ExecutionReport`].
    ///
    /// The report reuses the accelerator schema: all cycles land in the
    /// streaming phase, and no on-chip structures are modelled.
    ///
    /// # Errors
    ///
    /// Returns a format error on dimension mismatch.
    pub fn run(&self, a: &CompressedMatrix, b: &CompressedMatrix) -> Result<RunOutput> {
        let a_csr = a.converted(MajorOrder::Row);
        let b_csr = b.converted(MajorOrder::Row);
        let work = SpGemmWork::of(&a_csr, &b_csr);
        let c = reference::gustavson(&a_csr, &b_csr)?;
        let cycles = self.estimate_cycles(&work, c.nnz() as u64);
        let mut phases = PhaseClock::new();
        phases.advance(Phase::Streaming, cycles);
        let report = ExecutionReport {
            dataflow: Dataflow::GustavsonM,
            total_cycles: cycles,
            phases,
            traffic: TrafficReport::default(),
            cache: Ratio::new(),
            psram: flexagon_mem::PsramUsage::default(),
            work,
            tiles: 0,
            multiplications: work.products,
            explicit_conversions: 0,
            counters: CounterSet::new(),
        };
        Ok(RunOutput { c, report })
    }

    /// The cycle estimate for a given work profile and output size.
    pub fn estimate_cycles(&self, work: &SpGemmWork, nnz_c: u64) -> Cycle {
        let elements = work.nnz_a + work.nnz_b + nnz_c;
        let cycles = self.cfg.cycles_per_product * work.products as f64
            + self.cfg.cycles_per_element * elements as f64;
        cycles.ceil() as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::{gen, DenseMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cpu_result_matches_dense_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = gen::random(12, 15, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(15, 9, 0.4, MajorOrder::Col, &mut rng);
        let out = CpuMkl::with_defaults().run(&a, &b).unwrap();
        let want = DenseMatrix::from_compressed(&a)
            .matmul(&DenseMatrix::from_compressed(&b))
            .unwrap();
        assert!(DenseMatrix::from_compressed(&out.c).approx_eq(&want, 1e-3));
    }

    #[test]
    fn cycles_scale_with_work() {
        let cpu = CpuMkl::with_defaults();
        let small = SpGemmWork {
            products: 100,
            nnz_a: 10,
            nnz_b: 10,
            effectual_k: 5,
        };
        let large = SpGemmWork {
            products: 10_000,
            nnz_a: 10,
            nnz_b: 10,
            effectual_k: 5,
        };
        assert!(cpu.estimate_cycles(&large, 100) > cpu.estimate_cycles(&small, 100));
    }

    #[test]
    fn empty_product_costs_nothing_but_elements() {
        let cpu = CpuMkl::with_defaults();
        let w = SpGemmWork {
            products: 0,
            nnz_a: 0,
            nnz_b: 0,
            effectual_k: 0,
        };
        assert_eq!(cpu.estimate_cycles(&w, 0), 0);
    }

    #[test]
    fn config_is_tunable() {
        let cpu = CpuMkl::new(CpuConfig {
            cycles_per_product: 10.0,
            cycles_per_element: 0.0,
        });
        let w = SpGemmWork {
            products: 7,
            nnz_a: 0,
            nnz_b: 0,
            effectual_k: 1,
        };
        assert_eq!(cpu.estimate_cycles(&w, 0), 70);
    }
}
