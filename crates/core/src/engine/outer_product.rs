//! The Outer-Product(M) phase loop (paper §3.2.2, Fig. 6).
//!
//! Stationary: individual elements of A (CSC, column-major order) occupy
//! the multipliers. Streaming: each distinct k's B row (CSR) is multicast
//! to every multiplier holding an element of A's column k; each multiplier
//! emits a psum fiber `(row m, iteration k)` into the PSRAM. Merging: row
//! by row, the k-tagged fibers are consumed from the PSRAM and merged
//! through the tree; rows that will receive psums from later tiles ship a
//! partial fiber to DRAM and are finally merged when their last tile
//! completes — the off-chip psum traffic that characterizes Outer-Product
//! designs like SpArch.
//!
//! The streaming phase is fused multiplier-to-PSRAM: scaled fibers stream
//! from the borrowed B view straight into the PSRAM blocks via
//! `partial_write_scaled`, with no intermediate scaled buffer at all.

use super::{tiling, Engine};
use flexagon_sim::{bottleneck, Phase};
use flexagon_sparse::Fiber;
use std::collections::HashMap;

pub(super) fn run(e: &mut Engine<'_>) {
    let tiles = tiling::tile_cols(e.a, e.cfg.multipliers);
    let b = e.b;
    // How many tiles contribute psums to each output row.
    let mut tiles_left: HashMap<u32, u32> = HashMap::new();
    for tile in &tiles {
        for row in tile.rows_touched() {
            *tiles_left.entry(row).or_insert(0) += 1;
        }
    }
    // Partial row fibers shipped to DRAM between tiles.
    let mut pending: HashMap<u32, Vec<Fiber>> = HashMap::new();

    for tile in &tiles {
        e.stationary_phase(tile.slots_used());

        // Streaming phase: one multicast of B's row k per group.
        let mut streaming = 0u64;
        for g in &tile.groups {
            let len = b.fiber_len(g.k) as u64;
            if len == 0 {
                continue;
            }
            let start = e.b_elem_offset(g.k);
            e.cache.read_range(start, len, &mut e.dram);
            let fanout = g.targets.len() as u64;
            let products = len * fanout;
            e.dn.send_irregular(len, products);
            let mult = e.mn.multiply(products);
            for &(row, aval) in &g.targets {
                e.psram
                    .partial_write_scaled(row, g.k, b.fiber(g.k), aval, &mut e.dram);
            }
            // Cache scan, multipliers and PSRAM write ports run concurrently.
            streaming += bottleneck(&[e.dn_cycles(len), mult, e.merge_cycles(products)]);
        }
        e.advance_with_dram(Phase::Streaming, streaming);

        // Merging phase: proceed row by row (paper: "the merging phase
        // proceeds row by row").
        let mut merging = e.mrn.fill_latency();
        for row in tile.rows_touched() {
            let (fiber, cycles) = e.merge_row_fibers(row, Vec::new());
            merging += cycles;
            let left = tiles_left
                .get_mut(&row)
                .expect("row appears in its own tile count");
            *left -= 1;
            if *left == 0 {
                let parts = pending.remove(&row).unwrap_or_default();
                if parts.is_empty() {
                    e.emit_row(row, fiber);
                } else {
                    // Reload the DRAM-resident partial fibers and run the
                    // final cross-tile merge.
                    for p in &parts {
                        e.dram.read(p.len() as u64 * flexagon_sparse::ELEMENT_BYTES);
                    }
                    e.counters
                        .add("op.partial_fibers_reloaded", parts.len() as u64);
                    let mut extra = parts;
                    extra.push(fiber);
                    let (merged, cycles) = e.merge_row_fibers(row, extra);
                    merging += cycles;
                    e.emit_row(row, merged);
                }
            } else if !fiber.is_empty() {
                // More tiles will contribute: ship the partial fiber out.
                e.dram
                    .write(fiber.len() as u64 * flexagon_sparse::ELEMENT_BYTES);
                e.counters
                    .add("op.partial_fiber_elements_to_dram", fiber.len() as u64);
                pending.entry(row).or_default().push(fiber);
            }
        }
        e.advance_with_dram(Phase::Merging, merging);
    }
    debug_assert!(
        e.psram.is_empty(),
        "all psum fibers must be consumed by the merging phases"
    );
    debug_assert!(pending.is_empty(), "every pending row must be finalized");
}
