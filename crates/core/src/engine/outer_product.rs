//! The Outer-Product(M) phase loop (paper §3.2.2, Fig. 6).
//!
//! Stationary: individual elements of A (CSC, column-major order) occupy
//! the multipliers. Streaming: each distinct k's B row (CSR) is multicast
//! to every multiplier holding an element of A's column k; each multiplier
//! emits a psum fiber `(row m, iteration k)` into the PSRAM. Merging: row
//! by row, the k-tagged fibers are consumed from the PSRAM and merged
//! through the tree; rows that will receive psums from later tiles ship a
//! partial fiber to DRAM and are finally merged when their last tile
//! completes — the off-chip psum traffic that characterizes Outer-Product
//! designs like SpArch.
//!
//! The *hardware* model is unchanged: ghost PSRAM chains reproduce the
//! exact block allocation, spill traffic and consume traffic of the
//! k-tagged psum fibers, and the merge network charges the same pass
//! cycles and comparator counts. The *software* no longer materializes or
//! re-merges those fibers: each scaled B row scatters straight into a
//! tiered per-row [`RowAccum`](flexagon_sparse::RowAccum) in ascending-k
//! order — the merge tree's own tie-break order — so the drained fiber is
//! bit-identical to the k-way merge at a fraction of the cost. The
//! per-execute plan (tiles feeding each row, per-tile output spans) lives
//! in the flat band-row-indexed arrays of the [`EngineWorkspace`], reused
//! across executions.

use super::workspace::EngineWorkspace;
use super::{tiling, Engine};
use flexagon_sim::{bottleneck, Phase};
use flexagon_sparse::{Fiber, Value, ELEMENT_BYTES};

/// `elements` carries this band's pre-bucketed `(k, row, value)` triples
/// when the execution is multi-band (one bucketing pass at the execute
/// level replaces per-band full scans of A); `None` plans from the operand
/// directly — the identical plan, as the tiling tests pin.
pub(super) fn run(
    e: &mut Engine<'_>,
    ws: &mut EngineWorkspace,
    elements: Option<&[(u32, u32, Value)]>,
) {
    let band_rows = (e.band.end - e.band.start) as usize;
    let base = e.band.start;
    ws.reset_band_rows(band_rows);
    let EngineWorkspace {
        col_plan,
        pool,
        free,
        accum_of,
        stamp,
        tiles_left,
        span_lo: lo,
        span_hi: hi,
        span_nnz: nnz,
        pending,
        touched,
        ..
    } = ws;
    match elements {
        Some(els) => tiling::plan_cols_from_elements(els, e.cfg.multipliers, col_plan),
        None => tiling::plan_cols(e.a, e.cfg.multipliers, e.band.clone(), col_plan),
    }
    let b = e.b;

    // Flat tile-indexed plan, computed once per execute: how many tiles
    // contribute psums to each output row. A per-row tile stamp counts each
    // (tile, row) pair exactly once without hashing.
    for (ti, tile) in col_plan.tiles().enumerate() {
        for (_, targets) in tile.groups() {
            for &(row, _) in targets {
                let r = (row - base) as usize;
                if stamp[r] != ti as u32 {
                    stamp[r] = ti as u32;
                    tiles_left[r] += 1;
                }
            }
        }
    }
    for s in stamp.iter_mut() {
        *s = u32::MAX;
    }

    for (ti, tile) in col_plan.tiles().enumerate() {
        // Tile boundary: a fired token stops before the next tile streams.
        if e.is_cancelled() {
            return;
        }
        // Span pass: which rows this tile feeds, and the coordinate span and
        // element count of each row's incoming psums — the accumulator
        // tier-selection inputs.
        touched.clear();
        for (k, targets) in tile.groups() {
            let len = b.fiber_len(k) as u64;
            let (f_lo, f_hi) = if len > 0 {
                let coords = b.fiber(k).coords();
                (coords[0], coords[coords.len() - 1])
            } else {
                (0, 0)
            };
            for &(row, _) in targets {
                let r = (row - base) as usize;
                if stamp[r] != ti as u32 {
                    stamp[r] = ti as u32;
                    touched.push(row);
                    lo[r] = u32::MAX;
                    hi[r] = 0;
                    nnz[r] = 0;
                }
                if len > 0 {
                    lo[r] = lo[r].min(f_lo);
                    hi[r] = hi[r].max(f_hi);
                    nnz[r] += len;
                }
            }
        }
        touched.sort_unstable();
        for &row in touched.iter() {
            let r = (row - base) as usize;
            if nnz[r] == 0 {
                continue;
            }
            let idx = free.pop().unwrap_or_else(|| {
                pool.push(flexagon_sparse::RowAccum::new());
                (pool.len() - 1) as u32
            });
            pool[idx as usize].begin(lo[r], hi[r], nnz[r], &e.cfg.engine.accum);
            accum_of[r] = idx;
        }

        e.stationary_phase(tile.slots_used());

        // Streaming phase: one multicast of B's row k per group; every
        // multiplier's scaled fiber scatters into its row accumulator while
        // the ghost PSRAM models the psum buffering.
        let mut streaming = 0u64;
        for (k, targets) in tile.groups() {
            let len = b.fiber_len(k) as u64;
            if len == 0 {
                continue;
            }
            let start = e.b_elem_offset(k);
            e.cache.read_range(start, len, &mut e.dram);
            let fanout = targets.len() as u64;
            let products = len * fanout;
            e.dn.send_irregular(len, products);
            let mult = e.mn.multiply(products);
            let fiber = b.fiber(k);
            for &(row, aval) in targets {
                e.psram.ghost_write(row, k, len as usize, &mut e.dram);
                pool[accum_of[(row - base) as usize] as usize].scatter_scaled(fiber, aval);
            }
            // Cache scan, multipliers and PSRAM write ports run concurrently.
            streaming += bottleneck(&[e.dn_cycles(len), mult, e.merge_cycles(products)]);
        }
        e.advance_with_dram(Phase::Streaming, streaming);

        // Merging phase: proceed row by row (paper: "the merging phase
        // proceeds row by row"). Consuming the ghost chains charges the
        // PSRAM read and spill-reload traffic; the merged fiber itself
        // drains from the accumulator.
        let mut merging = e.mrn.fill_latency();
        for &row in touched.iter() {
            let r = (row - base) as usize;
            let mut inputs = 0u64;
            let mut nonempty = 0usize;
            for k in e.psram.fiber_tags_of_row(row) {
                let len = e.psram.ghost_consume(row, k, &mut e.dram);
                inputs += len;
                if len > 0 {
                    nonempty += 1;
                }
            }
            let fiber = match accum_of[r] {
                u32::MAX => Fiber::new(),
                idx => {
                    accum_of[r] = u32::MAX;
                    free.push(idx);
                    pool[idx as usize].drain()
                }
            };
            merging += e.charge_row_merge(nonempty, inputs, fiber.len() as u64);
            debug_assert!(tiles_left[r] > 0, "row appears in its own tile count");
            tiles_left[r] -= 1;
            if tiles_left[r] == 0 {
                let parts = std::mem::take(&mut pending[r]);
                if parts.is_empty() {
                    e.emit_row(row, fiber);
                } else {
                    // Reload the DRAM-resident partial fibers and run the
                    // final cross-tile merge.
                    for p in &parts {
                        e.dram.read(p.len() as u64 * ELEMENT_BYTES);
                    }
                    e.counters
                        .add("op.partial_fibers_reloaded", parts.len() as u64);
                    let mut extra = parts;
                    extra.push(fiber);
                    let (merged, cycles) = e.merge_row_fibers(row, extra);
                    merging += cycles;
                    e.emit_row(row, merged);
                }
            } else if !fiber.is_empty() {
                // More tiles will contribute: ship the partial fiber out.
                e.dram.write(fiber.len() as u64 * ELEMENT_BYTES);
                e.counters
                    .add("op.partial_fiber_elements_to_dram", fiber.len() as u64);
                pending[r].push(fiber);
            }
        }
        e.advance_with_dram(Phase::Merging, merging);
    }
    debug_assert!(
        e.psram.is_empty(),
        "all psum fibers must be consumed by the merging phases"
    );
    debug_assert!(
        pending.iter().all(Vec::is_empty),
        "every pending row must be finalized"
    );
}
