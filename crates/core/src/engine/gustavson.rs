//! The Gustavson's(M) phase loop (paper §3.2.3, Fig. 7).
//!
//! Stationary: row fibers of A (CSR) map onto clusters of multipliers.
//! Streaming: each multiplier's stationary element `A[m,k]` pulls B's row
//! `k` (CSR) through the STR cache — the leader-follower intersection whose
//! irregular reuse the cache is sized for. The cluster's scaled fibers
//! merge immediately in the MRN subtree ("we can merge the psums
//! immediately after their generation"), overlapping with multiplication —
//! GAMMA's signature. Rows that fit one cluster emit final fibers straight
//! to DRAM; longer rows buffer per-chunk fibers in the PSRAM and run a
//! short merging phase when their last chunk completes.
//!
//! The in-cluster merge is where the software time went: instead of
//! copying each B row into a scaled scratch fiber and replaying the
//! comparator tree, the cluster's psums scatter straight into a tiered
//! [`RowAccum`](flexagon_sparse::RowAccum) in stationary order (the merge
//! tree's tie-break order), and the MRN charges the identical pass model
//! against the drained length. Split rows collect their per-chunk fibers
//! in sorted-run accumulators checked out of the workspace pool across
//! tiles while ghost PSRAM chains model the chunk buffering; rows split
//! into more chunks than one tree pass could merge (beyond the MRN radix)
//! keep the fully materialized legacy path, so multi-pass merge accounting
//! stays exact.

use super::workspace::EngineWorkspace;
use super::{tiling, Engine};
use flexagon_sim::{bottleneck, Phase};
use flexagon_sparse::{Fiber, FiberView, RowAccum};

pub(super) fn run(e: &mut Engine<'_>, ws: &mut EngineWorkspace) {
    let band_rows = (e.band.end - e.band.start) as usize;
    let base = e.band.start;
    ws.reset_band_rows(band_rows);
    let EngineWorkspace {
        row_plan,
        pool,
        free,
        accum_of,
        cluster_acc,
        ..
    } = ws;
    tiling::plan_rows(e.a, e.cfg.multipliers, e.band.clone(), row_plan);
    let (a, b) = (e.a, e.b);
    let radix = e.mrn.max_radix() as u32;

    for tile in row_plan.tiles() {
        // Tile boundary: a fired token stops before the next tile streams.
        // The early return skips the end-of-run drain asserts below — the
        // band's workspace is discarded by `execute`, never recycled.
        if e.is_cancelled() {
            return;
        }
        e.stationary_phase(tiling::slots_used(tile));

        let mut delivered = 0u64;
        let mut products = 0u64;
        let mut merge_in = 0u64;
        let mut miss_lines = 0u64;
        // Completed rows, tagged with whether they took the accumulator
        // path (true) or the materialized legacy path (false).
        let mut rows_completed: Vec<(u32, bool)> = Vec::new();

        for cl in tile {
            let chunk = a.fiber(cl.row).slice(cl.start, cl.len);
            if cl.chunks_total <= radix {
                // Accumulator path. First pass: cache reads (same access
                // sequence the legacy gather performed) and the cluster's
                // output span — the tier-selection inputs.
                let mut c_lo = u32::MAX;
                let mut c_hi = 0u32;
                let mut c_nnz = 0u64;
                for el in chunk.iter() {
                    let len = b.fiber_len(el.coord) as u64;
                    if len == 0 {
                        continue;
                    }
                    let start = e.b_elem_offset(el.coord);
                    let access = e.cache.read_range(start, len, &mut e.dram);
                    miss_lines += access.misses;
                    delivered += len;
                    let coords = b.fiber(el.coord).coords();
                    c_lo = c_lo.min(coords[0]);
                    c_hi = c_hi.max(coords[coords.len() - 1]);
                    c_nnz += len;
                }
                // Second pass: scatter the scaled fibers in stationary
                // order — the order the MRN would tie-break on.
                let out = if c_nnz == 0 {
                    Fiber::new()
                } else {
                    cluster_acc.begin(c_lo, c_hi, c_nnz, &e.cfg.engine.accum);
                    for el in chunk.iter() {
                        if b.fiber_len(el.coord) > 0 {
                            cluster_acc.scatter_scaled(b.fiber(el.coord), el.value);
                        }
                    }
                    cluster_acc.drain()
                };
                products += c_nnz;
                e.mn.multiply(c_nnz);
                e.mrn.charge_merge(c_nnz, out.len() as u64);
                merge_in += c_nnz;
                if cl.is_whole_row() {
                    e.emit_row(cl.row, out);
                } else {
                    // Partial fiber: ghost-buffer under the chunk index as
                    // its tag, and keep the data as a sorted run.
                    e.psram
                        .ghost_write(cl.row, cl.chunk, out.len(), &mut e.dram);
                    if !out.is_empty() {
                        let r = (cl.row - base) as usize;
                        if accum_of[r] == u32::MAX {
                            let idx = free.pop().unwrap_or_else(|| {
                                pool.push(RowAccum::new());
                                (pool.len() - 1) as u32
                            });
                            pool[idx as usize].begin_runs(&e.cfg.engine.accum);
                            accum_of[r] = idx;
                        }
                        pool[accum_of[r] as usize].push_run(out);
                    }
                    if cl.is_last_chunk() {
                        rows_completed.push((cl.row, true));
                    }
                }
            } else {
                // Legacy materialized path for rows whose chunk count
                // exceeds one merge pass: scaled fibers stage in the
                // engine's reusable pool and the MRN merges views of them.
                let mut used = 0usize;
                for el in chunk.iter() {
                    let len = b.fiber_len(el.coord) as u64;
                    if len == 0 {
                        continue;
                    }
                    let start = e.b_elem_offset(el.coord);
                    let access = e.cache.read_range(start, len, &mut e.dram);
                    miss_lines += access.misses;
                    delivered += len;
                    if e.scaled_pool.len() == used {
                        e.scaled_pool.push(Fiber::new());
                    }
                    e.scaled_pool[used].scale_from(b.fiber(el.coord), el.value);
                    used += 1;
                }
                let cluster_products: u64 =
                    e.scaled_pool[..used].iter().map(|f| f.len() as u64).sum();
                products += cluster_products;
                e.mn.multiply(cluster_products);
                let views: Vec<FiberView<'_>> =
                    e.scaled_pool[..used].iter().map(Fiber::as_view).collect();
                let out = e.mrn.merge_fibers(&views);
                merge_in += cluster_products;
                e.psram.partial_write_fiber_view(
                    cl.row,
                    cl.chunk,
                    out.fiber.as_view(),
                    &mut e.dram,
                );
                if cl.is_last_chunk() {
                    rows_completed.push((cl.row, false));
                }
            }
        }
        e.dn.send_irregular(delivered, delivered);
        // Unlike the sequential streams of IP and OP, Gustavson's B-row
        // gathers are data-dependent (the stationary coordinate selects the
        // fiber), so cache misses serialize against consumption instead of
        // hiding behind it: each batch of outstanding misses exposes one
        // DRAM latency. This is the "irregular and unpredictable memory
        // access pattern" (§3.4) the STR cache is provisioned for, and what
        // degrades the GAMMA-like design when B outgrows the cache (Fig. 13).
        let dram_cfg = e.cfg.memory.dram;
        let gather_stall = miss_lines.div_ceil(dram_cfg.max_outstanding) * dram_cfg.latency_cycles;
        e.counters.add("gust.gather_stall_cycles", gather_stall);
        // Multiplication and in-cluster merging overlap: the tile is bound
        // by the slowest of delivery, multiply throughput and merge
        // bandwidth (GAMMA computes "the merging phase ... in parallel
        // within the multiplying phase").
        let streaming = bottleneck(&[
            e.dn_cycles(delivered),
            e.mult_cycles(products),
            e.merge_cycles(merge_in),
        ]) + gather_stall
            + e.mrn.fill_latency();
        e.advance_with_dram(Phase::Streaming, streaming);

        // Merging phase: only rows whose last chunk just finished.
        if !rows_completed.is_empty() {
            let mut merging = 0;
            for (row, via_accum) in rows_completed {
                let (fiber, cycles) = if via_accum {
                    // Consume the ghost chunk chains (PSRAM read and
                    // reload traffic), drain the collected runs, charge
                    // the single merge pass.
                    let mut inputs = 0u64;
                    let mut nonempty = 0usize;
                    for chunk in e.psram.fiber_tags_of_row(row) {
                        let len = e.psram.ghost_consume(row, chunk, &mut e.dram);
                        inputs += len;
                        if len > 0 {
                            nonempty += 1;
                        }
                    }
                    let r = (row - base) as usize;
                    let fiber = match accum_of[r] {
                        u32::MAX => Fiber::default(),
                        idx => {
                            accum_of[r] = u32::MAX;
                            free.push(idx);
                            pool[idx as usize].drain()
                        }
                    };
                    let cycles = e.charge_row_merge(nonempty, inputs, fiber.len() as u64);
                    (fiber, cycles)
                } else {
                    e.merge_row_fibers(row, Vec::new())
                };
                merging += cycles;
                e.counters.incr("gust.split_rows_merged");
                e.emit_row(row, fiber);
            }
            e.advance_with_dram(Phase::Merging, merging);
        }
    }
    debug_assert!(
        e.psram.is_empty(),
        "all chunk fibers must be merged when their row completes"
    );
    debug_assert!(
        accum_of.iter().all(|&idx| idx == u32::MAX),
        "every split row must drain at its last chunk"
    );
}
