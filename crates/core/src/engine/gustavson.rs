//! The Gustavson's(M) phase loop (paper §3.2.3, Fig. 7).
//!
//! Stationary: row fibers of A (CSR) map onto clusters of multipliers.
//! Streaming: each multiplier's stationary element `A[m,k]` pulls B's row
//! `k` (CSR) through the STR cache — the leader-follower intersection whose
//! irregular reuse the cache is sized for. The cluster's scaled fibers
//! merge immediately in the MRN subtree ("we can merge the psums
//! immediately after their generation"), overlapping with multiplication —
//! GAMMA's signature. Rows that fit one cluster emit final fibers straight
//! to DRAM; longer rows buffer per-chunk fibers in the PSRAM and run a
//! short merging phase when their last chunk completes.
//!
//! Scaled streaming fibers are staged in the engine's reusable pool: after
//! the first few clusters the streaming loop performs no allocations at
//! all — `scale_from` writes into retained buffers and the MRN merges
//! views of them.

use super::{tiling, Engine};
use flexagon_sim::{bottleneck, Phase};
use flexagon_sparse::{Fiber, FiberView};

pub(super) fn run(e: &mut Engine<'_>) {
    let tiles = tiling::tile_rows(e.a, e.cfg.multipliers);
    let (a, b) = (e.a, e.b);

    for tile in &tiles {
        e.stationary_phase(tile.slots_used());

        let mut delivered = 0u64;
        let mut products = 0u64;
        let mut merge_in = 0u64;
        let mut miss_lines = 0u64;
        let mut rows_completed: Vec<u32> = Vec::new();

        for cl in &tile.clusters {
            let chunk = a.fiber(cl.row).slice(cl.start, cl.len);
            let mut used = 0usize;
            for el in chunk.iter() {
                let len = b.fiber_len(el.coord) as u64;
                if len == 0 {
                    continue;
                }
                let start = e.b_elem_offset(el.coord);
                let access = e.cache.read_range(start, len, &mut e.dram);
                miss_lines += access.misses;
                delivered += len;
                if e.scaled_pool.len() == used {
                    e.scaled_pool.push(Fiber::new());
                }
                e.scaled_pool[used].scale_from(b.fiber(el.coord), el.value);
                used += 1;
            }
            let cluster_products: u64 = e.scaled_pool[..used].iter().map(|f| f.len() as u64).sum();
            products += cluster_products;
            e.mn.multiply(cluster_products);
            let views: Vec<FiberView<'_>> =
                e.scaled_pool[..used].iter().map(Fiber::as_view).collect();
            let out = e.mrn.merge_fibers(&views);
            merge_in += cluster_products;
            if cl.is_whole_row() {
                e.emit_row(cl.row, out.fiber);
            } else {
                // Partial fiber: buffer under the chunk index as its tag.
                e.psram.partial_write_fiber_view(
                    cl.row,
                    cl.chunk,
                    out.fiber.as_view(),
                    &mut e.dram,
                );
                if cl.is_last_chunk() {
                    rows_completed.push(cl.row);
                }
            }
        }
        e.dn.send_irregular(delivered, delivered);
        // Unlike the sequential streams of IP and OP, Gustavson's B-row
        // gathers are data-dependent (the stationary coordinate selects the
        // fiber), so cache misses serialize against consumption instead of
        // hiding behind it: each batch of outstanding misses exposes one
        // DRAM latency. This is the "irregular and unpredictable memory
        // access pattern" (§3.4) the STR cache is provisioned for, and what
        // degrades the GAMMA-like design when B outgrows the cache (Fig. 13).
        let dram_cfg = e.cfg.memory.dram;
        let gather_stall = miss_lines.div_ceil(dram_cfg.max_outstanding) * dram_cfg.latency_cycles;
        e.counters.add("gust.gather_stall_cycles", gather_stall);
        // Multiplication and in-cluster merging overlap: the tile is bound
        // by the slowest of delivery, multiply throughput and merge
        // bandwidth (GAMMA computes "the merging phase ... in parallel
        // within the multiplying phase").
        let streaming = bottleneck(&[
            e.dn_cycles(delivered),
            e.mult_cycles(products),
            e.merge_cycles(merge_in),
        ]) + gather_stall
            + e.mrn.fill_latency();
        e.advance_with_dram(Phase::Streaming, streaming);

        // Merging phase: only rows whose last chunk just finished.
        if !rows_completed.is_empty() {
            let mut merging = 0;
            for row in rows_completed {
                let (fiber, cycles) = e.merge_row_fibers(row, Vec::new());
                merging += cycles;
                e.counters.incr("gust.split_rows_merged");
                e.emit_row(row, fiber);
            }
            e.advance_with_dram(Phase::Merging, merging);
        }
    }
    debug_assert!(
        e.psram.is_empty(),
        "all chunk fibers must be merged when their row completes"
    );
}
