//! The Inner-Product(M) phase loop (paper §3.2.1, Fig. 5).
//!
//! Stationary: as many row fibers of A (CSR) as possible map onto the
//! multipliers, forming clusters that each compute dot products for one
//! output row. Streaming: every column fiber of B (CSC) is examined by the
//! controller, which sends only intersecting elements into the distribution
//! network ("the controller uses the row coordinate of each element in the
//! fiber of B to detect whether it intersects"); the MRN reduces each
//! cluster's products into a full sum. No partial sums ever reach the
//! PSRAM — rows longer than the array accumulate temporally in the
//! cluster's output register across consecutive tiles, which is why the
//! SIGMA-like bars of Fig. 14 show zero psum traffic while paying a full
//! re-stream of B per tile.
//!
//! The *hardware* re-streams B once per tile and that is what the cycle and
//! traffic accounting charges, identically in every path below. The
//! *software* does not have to. Two indexed intersection strategies replace
//! the per-tile re-scan of all of B:
//!
//! * `run_indexed` (taken when K is large relative to the array) walks a
//!   k-indexed copy of B — only the rows matching the tile's stationary
//!   coordinates are touched, the Gamma-style schedule — at
//!   `O(Σ_{k∈tile} nnz(B_row_k))` per tile instead of `O(nnz(B))`.
//! * `run_streaming` keeps the scan shape but lets each fiber pick its
//!   short side: scan the fiber against the tile's bit mask, or probe the
//!   fiber's tiered [`MatrixIndex`](flexagon_sparse::MatrixIndex) with the
//!   tile's sorted stationary coordinates through a skip-ahead
//!   [`Prober`](flexagon_sparse::Prober).
//!
//! The strategy choice and its precomputation (`B` re-majored by k, or the
//! tiered index) are hoisted to the execution level ([`super::IpShared`])
//! so every band of a sharded run shares one copy.
//!
//! Every path visits the matches of a given (cluster, streaming fiber) pair
//! in ascending k, so each accumulator register receives its additions in
//! the exact order of the original scan and execution reports stay
//! bit-identical across strategies. All scratch state lives in the
//! [`EngineWorkspace`], so a steady-state execution allocates nothing.

use super::workspace::EngineWorkspace;
use super::{tiling, Engine, IpShared};
use flexagon_sim::{bottleneck, Phase};
use flexagon_sparse::{CompressedMatrix, Element, Fiber, MatrixIndex, MatrixView, Value};
use std::collections::HashMap;

/// Cross-tile accumulators for rows split into multiple chunks.
type SplitAcc = HashMap<u32, HashMap<u32, Value>>;

pub(super) fn run(e: &mut Engine<'_>, ws: &mut EngineWorkspace, shared: &IpShared) {
    let k_dim = e.a.cols() as usize;
    let n_dim = e.b.major_dim() as usize;
    ws.reset_k(k_dim);
    if matches!(shared, IpShared::Indexed(_)) {
        ws.reset_grid(e.cfg.multipliers as usize, n_dim);
    }
    let EngineWorkspace {
        row_plan,
        k_entries,
        k_mask,
        touched_k,
        grid_acc,
        grid_hit,
        injected_n,
        delivered_n,
        cl_acc,
        cl_hit,
        hit_list,
        split_acc,
        ..
    } = ws;
    tiling::plan_rows(e.a, e.cfg.multipliers, e.band.clone(), row_plan);
    match shared {
        IpShared::Indexed(b_by_k) => run_indexed(
            e,
            row_plan,
            b_by_k,
            k_entries,
            touched_k,
            grid_acc,
            grid_hit,
            injected_n,
            delivered_n,
            split_acc,
        ),
        IpShared::Streaming(b_index) => run_streaming(
            e, row_plan, b_index, k_entries, k_mask, touched_k, cl_acc, cl_hit, hit_list, split_acc,
        ),
    }
    // A cancelled tile loop leaves nothing worth assembling: the band is
    // discarded wholesale by `execute`.
    if e.is_cancelled() {
        return;
    }

    // Assemble rows that accumulated across tiles. Their elements were held
    // in the cluster output registers, so only the final store is charged.
    let mut split_rows: Vec<u32> = split_acc.keys().copied().collect();
    split_rows.sort_unstable();
    let mut split_elems = 0u64;
    for row in split_rows {
        let entries = split_acc.remove(&row).expect("key from map");
        let fiber: Fiber = entries
            .into_iter()
            .map(|(n, v)| Element::new(n, v))
            .collect();
        split_elems += fiber.len() as u64;
        e.wbuf.write(fiber.len() as u64, &mut e.dram);
        let idx = e.band_idx(row);
        e.out_fibers[idx] = fiber;
    }
    if split_elems > 0 {
        e.counters.add("ip.split_row_elements", split_elems);
        let drain = e.merge_cycles(split_elems);
        e.advance_with_dram(Phase::Streaming, drain);
    }
}

/// Fills `k_entries` with the tile's stationary coordinates — `k` maps to
/// the `(cluster, stationary value)` pairs holding it — and `touched_k` with
/// the distinct ks in ascending order. Shared by both tile loops: their
/// accumulation inputs must be built identically for reports to stay
/// bit-identical across paths.
fn index_tile(
    a: MatrixView<'_>,
    tile: &[tiling::Cluster],
    k_entries: &mut [Vec<(u32, Value)>],
    touched_k: &mut Vec<u32>,
) {
    touched_k.clear();
    for (ci, cl) in tile.iter().enumerate() {
        for el in cl.chunk_of(a).iter() {
            let slot = &mut k_entries[el.coord as usize];
            if slot.is_empty() {
                touched_k.push(el.coord);
            }
            slot.push((ci as u32, el.value));
        }
    }
    // Ascending order is what the prober's skip-ahead cursor needs, and it
    // reproduces the accumulation order of a plain fiber scan.
    touched_k.sort_unstable();
}

/// Records `value` as cluster `cl`'s finished dot product for column `n`.
#[inline]
fn emit_dot(
    e: &mut Engine<'_>,
    cl: &tiling::Cluster,
    n: u32,
    value: Value,
    final_elems: &mut u64,
    split_acc: &mut SplitAcc,
) {
    if cl.is_whole_row() {
        let idx = e.band_idx(cl.row);
        e.out_fibers[idx].push(Element::new(n, value));
        *final_elems += 1;
    } else {
        *split_acc.entry(cl.row).or_default().entry(n).or_insert(0.0) += value;
    }
}

/// The k-indexed tile loop: probe B through its row index, touching only the
/// rows the tile holds stationary.
#[allow(clippy::too_many_arguments)]
fn run_indexed(
    e: &mut Engine<'_>,
    plan: &tiling::RowPlan,
    b_by_k: &CompressedMatrix,
    k_entries: &mut [Vec<(u32, Value)>],
    touched_k: &mut Vec<u32>,
    acc: &mut [Value],
    hit: &mut [u64],
    injected_n: &mut [u32],
    delivered_n: &mut [u64],
    split_acc: &mut SplitAcc,
) {
    let (a, b) = (e.a, e.b);
    let n_dim = b.major_dim() as usize;
    let n_words = n_dim.div_ceil(64);

    for tile in plan.tiles() {
        // Tile boundary: a fired token stops before the next tile streams.
        if e.is_cancelled() {
            return;
        }
        e.stationary_phase(tiling::slots_used(tile));

        index_tile(a, tile, k_entries, touched_k);

        // Intersection phase: only the stationary ks' rows of B are read.
        for &k in touched_k.iter() {
            let row = b_by_k.fiber(k);
            let entries = &k_entries[k as usize];
            for (&n, &bval) in row.coords().iter().zip(row.values()) {
                let n = n as usize;
                injected_n[n] += 1;
                delivered_n[n] += entries.len() as u64;
                for &(ci, aval) in entries {
                    let ci = ci as usize;
                    hit[ci * n_words + (n >> 6)] |= 1u64 << (n & 63);
                    acc[ci * n_dim + n] += aval * bval;
                }
            }
        }

        // Accounting + emission sweep in ascending n — the same per-fiber
        // sequence of cache reads, network charges and output pushes the
        // streaming scan produces.
        let mut streaming = 0u64;
        let mut injected_tile = 0u64;
        let mut delivered_tile = 0u64;
        let mut final_elems = 0u64;
        for n in 0..n_dim {
            let len = b.fiber_len(n as u32) as u64;
            if len == 0 {
                continue;
            }
            let start = e.b_elem_offset(n as u32);
            e.cache.read_range(start, len, &mut e.dram);
            let injected = u64::from(injected_n[n]);
            let intersections = delivered_n[n];
            injected_n[n] = 0;
            delivered_n[n] = 0;
            injected_tile += injected;
            delivered_tile += intersections;
            let mult = e.mn.multiply(intersections);
            e.mrn.reduce(intersections);
            streaming += bottleneck(&[e.dn_cycles(len), mult]);
            if injected > 0 {
                let (word, bit) = (n >> 6, 1u64 << (n & 63));
                for (ci, cl) in tile.iter().enumerate() {
                    let w = &mut hit[ci * n_words + word];
                    if *w & bit == 0 {
                        continue;
                    }
                    *w &= !bit;
                    let slot = ci * n_dim + n;
                    let value = acc[slot];
                    acc[slot] = 0.0;
                    emit_dot(e, cl, n as u32, value, &mut final_elems, split_acc);
                }
            }
        }
        e.dn.send_irregular(injected_tile, delivered_tile.max(injected_tile));
        streaming += e.mrn.fill_latency();
        e.wbuf.write(final_elems, &mut e.dram);
        e.advance_with_dram(Phase::Streaming, streaming);

        for &k in touched_k.iter() {
            k_entries[k as usize].clear();
        }
    }
}

/// The streaming tile loop: every fiber of B flows past each tile, and each
/// fiber is intersected from its cheaper side.
#[allow(clippy::too_many_arguments)]
fn run_streaming(
    e: &mut Engine<'_>,
    plan: &tiling::RowPlan,
    b_index: &MatrixIndex,
    k_entries: &mut [Vec<(u32, Value)>],
    k_mask: &mut [u64],
    touched_k: &mut Vec<u32>,
    acc: &mut Vec<Value>,
    hit: &mut Vec<bool>,
    hit_list: &mut Vec<u32>,
    split_acc: &mut SplitAcc,
) {
    let (a, b) = (e.a, e.b);
    let probe_gate_factor = e.cfg.engine.probe_gate_factor;

    for tile in plan.tiles() {
        // Tile boundary: a fired token stops before the next tile streams.
        if e.is_cancelled() {
            return;
        }
        e.stationary_phase(tiling::slots_used(tile));

        // Index this tile's stationary coordinates and set the scan mask.
        index_tile(a, tile, k_entries, touched_k);
        for &k in touched_k.iter() {
            k_mask[(k >> 6) as usize] |= 1u64 << (k & 63);
        }
        let (tile_lo, tile_hi) = match (touched_k.first(), touched_k.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (1, 0), // empty tile: probes find nothing either way
        };

        // Streaming phase: the whole of B flows past this tile once.
        let mut streaming = 0u64;
        acc.clear();
        acc.resize(tile.len(), 0.0);
        hit.clear();
        hit.resize(tile.len(), false);
        let mut injected_tile = 0u64;
        let mut delivered_tile = 0u64;
        let mut final_elems = 0u64;
        for n in 0..b.major_dim() {
            let len = b.fiber_len(n) as u64;
            if len == 0 {
                continue;
            }
            let start = e.b_elem_offset(n);
            e.cache.read_range(start, len, &mut e.dram);
            let mut intersections = 0u64;
            let mut injected = 0u64;
            let fiber = b.fiber(n);
            let (coords, vals) = (fiber.coords(), fiber.values());
            let overlaps = coords[coords.len() - 1] >= tile_lo && coords[0] <= tile_hi;
            let probe_wins = touched_k.len() * probe_gate_factor <= coords.len();
            if !overlaps {
                // Disjoint coordinate ranges: nothing can intersect. The
                // fiber still streams past (charged below), but no scan or
                // probe work is spent on it.
            } else if probe_wins {
                // The tile's stationary list is much the shorter side: probe
                // the fiber's index with it instead of re-scanning the fiber.
                let mut prober = b_index.fiber(n).prober(fiber);
                for &c in touched_k.iter() {
                    let Some((_, bval)) = prober.probe(c) else {
                        continue;
                    };
                    let entries = &k_entries[c as usize];
                    injected += 1;
                    intersections += entries.len() as u64;
                    for &(ci, aval) in entries {
                        let ci = ci as usize;
                        if !hit[ci] {
                            hit[ci] = true;
                            hit_list.push(ci as u32);
                        }
                        acc[ci] += aval * bval;
                    }
                }
            } else {
                // Scan the fiber and test membership against the tile mask.
                for (i, &c) in coords.iter().enumerate() {
                    if k_mask[(c >> 6) as usize] & (1u64 << (c & 63)) == 0 {
                        continue;
                    }
                    let entries = &k_entries[c as usize];
                    injected += 1;
                    intersections += entries.len() as u64;
                    for &(ci, aval) in entries {
                        let ci = ci as usize;
                        if !hit[ci] {
                            hit[ci] = true;
                            hit_list.push(ci as u32);
                        }
                        acc[ci] += aval * vals[i];
                    }
                }
            }
            injected_tile += injected;
            delivered_tile += intersections;
            let mult = e.mn.multiply(intersections);
            e.mrn.reduce(intersections);
            // Controller scans the fiber from the cache at DN rate; the
            // multipliers and the reduction tree run concurrently.
            streaming += bottleneck(&[e.dn_cycles(len), mult]);
            // Emit completed dot products for this column.
            for &ci in hit_list.iter() {
                let cl = &tile[ci as usize];
                let value = acc[ci as usize];
                emit_dot(e, cl, n, value, &mut final_elems, split_acc);
                acc[ci as usize] = 0.0;
                hit[ci as usize] = false;
            }
            hit_list.clear();
        }
        e.dn.send_irregular(injected_tile, delivered_tile.max(injected_tile));
        streaming += e.mrn.fill_latency();
        e.wbuf.write(final_elems, &mut e.dram);
        e.advance_with_dram(Phase::Streaming, streaming);

        for &k in touched_k.iter() {
            k_entries[k as usize].clear();
            k_mask[(k >> 6) as usize] = 0;
        }
    }
}
