//! The Inner-Product(M) phase loop (paper §3.2.1, Fig. 5).
//!
//! Stationary: as many row fibers of A (CSR) as possible map onto the
//! multipliers, forming clusters that each compute dot products for one
//! output row. Streaming: every column fiber of B (CSC) is examined by the
//! controller, which sends only intersecting elements into the distribution
//! network ("the controller uses the row coordinate of each element in the
//! fiber of B to detect whether it intersects"); the MRN reduces each
//! cluster's products into a full sum. No partial sums ever reach the
//! PSRAM — rows longer than the array accumulate temporally in the
//! cluster's output register across consecutive tiles, which is why the
//! SIGMA-like bars of Fig. 14 show zero psum traffic while paying a full
//! re-stream of B per tile.

use super::{tiling, Engine};
use flexagon_sim::{bottleneck, Phase};
use flexagon_sparse::{Element, Fiber, Value};
use std::collections::HashMap;

pub(super) fn run(e: &mut Engine<'_>) {
    let tiles = tiling::tile_rows(e.a, e.cfg.multipliers);
    let (a, b) = (e.a, e.b);
    let k_dim = a.cols() as usize;
    // Reusable k -> [(cluster, stationary value)] index for the current tile.
    let mut k_entries: Vec<Vec<(u32, Value)>> = vec![Vec::new(); k_dim];
    // One-bit-per-k membership mask for the streaming scan: the controller's
    // intersection test touches one cache line per 512 k values instead of
    // chasing a `Vec` header per element, which is where the re-stream of B
    // spends its time.
    let mut k_mask: Vec<u64> = vec![0; k_dim.div_ceil(64)];
    // Cross-tile accumulators for rows split into multiple chunks.
    let mut split_acc: HashMap<u32, HashMap<u32, Value>> = HashMap::new();

    for tile in &tiles {
        e.stationary_phase(tile.slots_used());

        // Index this tile's stationary coordinates.
        let mut touched_k: Vec<u32> = Vec::new();
        for (ci, cl) in tile.clusters.iter().enumerate() {
            let chunk = a.fiber(cl.row).slice(cl.start, cl.len);
            for el in chunk.iter() {
                let slot = &mut k_entries[el.coord as usize];
                if slot.is_empty() {
                    touched_k.push(el.coord);
                    k_mask[(el.coord >> 6) as usize] |= 1u64 << (el.coord & 63);
                }
                slot.push((ci as u32, el.value));
            }
        }

        // Streaming phase: the whole of B flows past this tile once.
        let mut streaming = 0u64;
        let mut acc: Vec<Value> = vec![0.0; tile.clusters.len()];
        let mut hit: Vec<bool> = vec![false; tile.clusters.len()];
        let mut hit_list: Vec<u32> = Vec::new();
        let mut injected_tile = 0u64;
        let mut delivered_tile = 0u64;
        let mut final_elems = 0u64;
        for n in 0..b.major_dim() {
            let len = b.fiber_len(n) as u64;
            if len == 0 {
                continue;
            }
            let start = e.b_elem_offset(n);
            e.cache.read_range(start, len, &mut e.dram);
            let mut intersections = 0u64;
            let mut injected = 0u64;
            let fiber = b.fiber(n);
            let (coords, vals) = (fiber.coords(), fiber.values());
            for (i, &c) in coords.iter().enumerate() {
                if k_mask[(c >> 6) as usize] & (1u64 << (c & 63)) == 0 {
                    continue;
                }
                let entries = &k_entries[c as usize];
                injected += 1;
                intersections += entries.len() as u64;
                for &(ci, aval) in entries {
                    let ci = ci as usize;
                    if !hit[ci] {
                        hit[ci] = true;
                        hit_list.push(ci as u32);
                    }
                    acc[ci] += aval * vals[i];
                }
            }
            injected_tile += injected;
            delivered_tile += intersections;
            let mult = e.mn.multiply(intersections);
            e.mrn.reduce(intersections);
            // Controller scans the fiber from the cache at DN rate; the
            // multipliers and the reduction tree run concurrently.
            streaming += bottleneck(&[e.dn_cycles(len), mult]);
            // Emit completed dot products for this column.
            for &ci in &hit_list {
                let cl = &tile.clusters[ci as usize];
                let value = acc[ci as usize];
                if cl.is_whole_row() {
                    e.out_fibers[cl.row as usize].push(Element::new(n, value));
                    final_elems += 1;
                } else {
                    *split_acc.entry(cl.row).or_default().entry(n).or_insert(0.0) += value;
                }
                acc[ci as usize] = 0.0;
                hit[ci as usize] = false;
            }
            hit_list.clear();
        }
        e.dn.send_irregular(injected_tile, delivered_tile.max(injected_tile));
        streaming += e.mrn.fill_latency();
        e.wbuf.write(final_elems, &mut e.dram);
        e.advance_with_dram(Phase::Streaming, streaming);

        for k in touched_k {
            k_entries[k as usize].clear();
            k_mask[(k >> 6) as usize] = 0;
        }
    }

    // Assemble rows that accumulated across tiles. Their elements were held
    // in the cluster output registers, so only the final store is charged.
    let mut split_rows: Vec<u32> = split_acc.keys().copied().collect();
    split_rows.sort_unstable();
    let mut split_elems = 0u64;
    for row in split_rows {
        let entries = split_acc.remove(&row).expect("key from map");
        let fiber: Fiber = entries
            .into_iter()
            .map(|(n, v)| Element::new(n, v))
            .collect();
        split_elems += fiber.len() as u64;
        e.wbuf.write(fiber.len() as u64, &mut e.dram);
        e.out_fibers[row as usize] = fiber;
    }
    if split_elems > 0 {
        e.counters.add("ip.split_row_elements", split_elems);
        let drain = e.merge_cycles(split_elems);
        e.advance_with_dram(Phase::Streaming, drain);
    }
}
