//! The execution engine: one hardware substrate, six dataflows.
//!
//! [`execute`] orients any of the six dataflows onto the M-stationary form
//! of its class (paper §3.2: "the IP(N), OP(N) and Gust(N) dataflows could
//! be executed in the same manner by exchanging matrices A and B"), runs the
//! class-specific phase loop against the simulated memory structures and
//! networks, and assembles the functional output together with the
//! execution report.
//!
//! The engine is clone-free: operands enter as [`MatrixView`]s, so a
//! format-matching run borrows the caller's data untouched and the
//! N-stationary duality is a zero-copy relabeling. Only an explicit format
//! conversion (the "EC" cost of Table 4) materializes a new matrix, and it
//! lives on `execute`'s stack just long enough to be viewed.

mod gustavson;
mod inner_product;
mod outer_product;
pub(crate) mod tiling;

use crate::{
    AcceleratorConfig, CoreError, Dataflow, DataflowClass, ExecutionReport, Result, Stationarity,
    TrafficReport,
};
use flexagon_mem::{Dram, Psram, StaFifo, StrCache, WriteBuffer};
use flexagon_noc::{
    DistributionNetwork, DnConfig, MergerReductionNetwork, MnConfig, MrnConfig, MultiplierNetwork,
};
use flexagon_sim::{bottleneck, cycles_for, Bandwidth, CounterSet, Cycle, Phase, PhaseClock};
use flexagon_sparse::{
    stats::SpGemmWork, CompressedMatrix, Fiber, FormatError, MajorOrder, MatrixView, RowAccum,
};

/// Runs `a x b` under `dataflow` on the given configuration, returning the
/// output matrix (in the dataflow's natural format) and the report.
pub(crate) fn execute(
    cfg: &AcceleratorConfig,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    dataflow: Dataflow,
) -> Result<(CompressedMatrix, ExecutionReport)> {
    cfg.assert_valid();
    if a.cols() != b.rows() {
        return Err(CoreError::Format(FormatError::DimensionMismatch {
            left_cols: a.cols(),
            right_rows: b.rows(),
        }));
    }
    // Bring operands into the dataflow's Table 3 formats, counting explicit
    // conversions (the "EC" cost Flexagon's inter-layer mechanism avoids).
    // A format-matching operand is borrowed, never copied.
    let mut explicit_conversions = 0u32;
    let a_conv;
    let a_view = if a.order() == dataflow.a_format() {
        a.view()
    } else {
        explicit_conversions += 1;
        a_conv = a.converted(dataflow.a_format());
        a_conv.view()
    };
    let b_conv;
    let b_view = if b.order() == dataflow.b_format() {
        b.view()
    } else {
        explicit_conversions += 1;
        b_conv = b.converted(dataflow.b_format());
        b_conv.view()
    };
    // Orient to M-stationary: an N-stationary run of C = A x B is the
    // M-stationary run of Cᵀ = Bᵀ x Aᵀ, and transposition is a free
    // reinterpretation of the borrowed views.
    let (a_eff, b_eff) = match dataflow.stationarity() {
        Stationarity::M => (a_view, b_view),
        Stationarity::N => (
            b_view.reinterpret_transposed(),
            a_view.reinterpret_transposed(),
        ),
    };
    let work = SpGemmWork::of_views(a_eff, b_eff);
    let mut engine = Engine::new(cfg, a_eff, b_eff);
    match dataflow.class() {
        DataflowClass::InnerProduct => inner_product::run(&mut engine),
        DataflowClass::OuterProduct => outer_product::run(&mut engine),
        DataflowClass::Gustavson => gustavson::run(&mut engine),
    }
    let (c_m, report) = engine.finish(dataflow, work, explicit_conversions)?;
    let c = match dataflow.stationarity() {
        Stationarity::M => c_m,
        Stationarity::N => c_m.reinterpret_transposed(),
    };
    debug_assert_eq!(c.order(), dataflow.c_format());
    Ok((c, report))
}

/// Execution context: configuration, operand views (already M-stationary
/// oriented), the simulated hardware, and accumulating results.
pub(crate) struct Engine<'a> {
    pub cfg: &'a AcceleratorConfig,
    /// Stationary operand (CSR for IP/Gust, CSC for OP), borrowed.
    pub a: MatrixView<'a>,
    /// Streaming operand (CSC for IP, CSR for OP/Gust), borrowed.
    pub b: MatrixView<'a>,
    pub dram: Dram,
    pub fifo: StaFifo,
    pub cache: StrCache,
    pub psram: Psram,
    pub wbuf: WriteBuffer,
    pub dn: DistributionNetwork,
    pub mn: MultiplierNetwork,
    pub mrn: MergerReductionNetwork,
    pub phases: PhaseClock,
    pub counters: CounterSet,
    /// Output fibers per row of C (M-stationary orientation).
    pub out_fibers: Vec<Fiber>,
    /// Reusable scaled-fiber pool for the streaming phases: entries keep
    /// their allocations across clusters and tiles.
    pub scaled_pool: Vec<Fiber>,
    /// Reusable accumulator backing the merge passes of
    /// [`Engine::merge_row_fibers`].
    pub merge_acc: RowAccum,
    pub tiles_run: u64,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("a", &(self.a.rows(), self.a.cols()))
            .field("b", &(self.b.rows(), self.b.cols()))
            .field("tiles_run", &self.tiles_run)
            .finish_non_exhaustive()
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(cfg: &'a AcceleratorConfig, a: MatrixView<'a>, b: MatrixView<'a>) -> Self {
        let rows = a.rows();
        Self {
            cfg,
            a,
            b,
            dram: Dram::new(cfg.memory.dram),
            fifo: StaFifo::new(cfg.memory.fifo),
            cache: StrCache::new(cfg.memory.cache),
            psram: Psram::new(cfg.memory.psram),
            wbuf: WriteBuffer::new(),
            dn: DistributionNetwork::new(DnConfig {
                width: cfg.multipliers,
                bandwidth: Bandwidth::per_cycle(cfg.dn_bandwidth),
            }),
            mn: MultiplierNetwork::new(MnConfig {
                multipliers: cfg.multipliers,
            }),
            mrn: MergerReductionNetwork::new(MrnConfig {
                leaves: cfg.multipliers,
                bandwidth: Bandwidth::per_cycle(cfg.merge_bandwidth),
            }),
            phases: PhaseClock::new(),
            counters: CounterSet::new(),
            out_fibers: vec![Fiber::new(); rows as usize],
            scaled_pool: Vec::new(),
            merge_acc: RowAccum::new(),
            tiles_run: 0,
        }
    }

    /// Element offset of streaming fiber `major` within B's data vector —
    /// the virtual address space the STR cache operates on.
    pub(crate) fn b_elem_offset(&self, major: u32) -> u64 {
        self.b.ptr()[major as usize] as u64
    }

    /// Runs the stationary phase for one tile: `n` elements stream from
    /// DRAM through the STA FIFO and are unicast to their multipliers.
    pub(crate) fn stationary_phase(&mut self, n: u64) {
        self.tiles_run += 1;
        if n == 0 {
            return;
        }
        self.fifo.stream(n, &mut self.dram);
        let inject = self.dn.send_irregular(n, n);
        self.mn.load_stationary(n);
        let dram_busy = self.dram.take_busy_cycles();
        self.phases
            .advance(Phase::Stationary, bottleneck(&[inject, dram_busy]));
    }

    /// Folds accumulated DRAM occupancy into `compute` cycles for `phase`:
    /// memory either hides behind compute or becomes the bottleneck.
    pub(crate) fn advance_with_dram(&mut self, phase: Phase, compute: Cycle) {
        let dram_busy = self.dram.take_busy_cycles();
        self.phases
            .advance(phase, bottleneck(&[compute, dram_busy]));
    }

    /// Merges every psum fiber currently buffered for `row` (plus
    /// `extra` in-flight fibers) down to a single fiber, running as many
    /// MRN passes as the tree radix requires. Intermediate pass results are
    /// buffered in the PSRAM (charged as psum traffic). Returns the merged
    /// fiber and the cycles spent.
    ///
    /// Each pass runs through a tiered [`RowAccum`] instead of the
    /// comparator-tree replay: scattering the batch in queue order folds
    /// every coordinate's values in the merge's own source order, so the
    /// result — including the nested fold across passes — is bit-identical
    /// to `mrn.merge_fibers` while the MRN charges the same pass model.
    pub(crate) fn merge_row_fibers(&mut self, row: u32, extra: Vec<Fiber>) -> (Fiber, Cycle) {
        let tags = self.psram.fiber_tags_of_row(row);
        let mut queue: std::collections::VecDeque<Fiber> = tags
            .into_iter()
            .map(|k| self.psram.consume_fiber(row, k, &mut self.dram))
            .chain(extra)
            .filter(|f| !f.is_empty())
            .collect();
        match queue.len() {
            0 => return (Fiber::new(), 0),
            1 => return (queue.pop_front().expect("len checked"), 0),
            _ => {}
        }
        let radix = self.mrn.max_radix();
        let mut cycles = 0;
        let mut acc = std::mem::take(&mut self.merge_acc);
        loop {
            let take = radix.min(queue.len());
            let batch: Vec<Fiber> = queue.drain(..take).collect();
            let total: u64 = batch.iter().map(|f| f.len() as u64).sum();
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            for f in &batch {
                lo = lo.min(f.coords()[0]);
                hi = hi.max(f.coords()[f.len() - 1]);
            }
            acc.begin(lo, hi, total, &self.cfg.engine.accum);
            for f in &batch {
                acc.scatter(f.as_view());
            }
            let out = acc.drain();
            cycles += self.mrn.charge_merge(total, out.len() as u64);
            self.counters.incr("mrn.merge_passes");
            if queue.is_empty() {
                self.merge_acc = acc;
                return (out, cycles);
            }
            // Intermediate result waits in the PSRAM for the next pass.
            self.psram.charge_intermediate_roundtrip(out.len() as u64);
            queue.push_back(out);
        }
    }

    /// Charges the timing and counter model of one row-merge exactly as
    /// [`Engine::merge_row_fibers`] would for `nonempty` non-empty psum
    /// fibers totalling `inputs` elements that merge down to `out_len`
    /// distinct coordinates — used by the accumulator paths, which already
    /// hold the merged fiber and never fan more than one MRN pass
    /// (`nonempty` is bounded by the tree radix).
    ///
    /// Zero or one input fiber passes through untouched (no tree pass, no
    /// comparisons); two or more charge a single merge pass.
    pub(crate) fn charge_row_merge(&mut self, nonempty: usize, inputs: u64, out_len: u64) -> Cycle {
        debug_assert!(nonempty <= self.mrn.max_radix(), "single-pass bound");
        if nonempty < 2 {
            return 0;
        }
        self.counters.incr("mrn.merge_passes");
        self.mrn.charge_merge(inputs, out_len)
    }

    /// Emits a final output fiber for `row` through the write buffer.
    pub(crate) fn emit_row(&mut self, row: u32, fiber: Fiber) {
        self.wbuf.write(fiber.len() as u64, &mut self.dram);
        self.out_fibers[row as usize] = fiber;
    }

    /// Assembles the output matrix and the execution report.
    pub(crate) fn finish(
        mut self,
        dataflow: Dataflow,
        work: SpGemmWork,
        explicit_conversions: u32,
    ) -> Result<(CompressedMatrix, ExecutionReport)> {
        let rows = self.a.rows();
        let cols = self.b.cols();
        let fibers = std::mem::take(&mut self.out_fibers);
        let c = CompressedMatrix::from_fibers(rows, cols, MajorOrder::Row, fibers)?;
        let (uni, multi, broad) = self.dn.cast_counts();
        self.counters.add("dn.unicasts", uni);
        self.counters.add("dn.multicasts", multi);
        self.counters.add("dn.broadcasts", broad);
        self.counters
            .add("dn.injected", self.dn.injected_elements());
        self.counters
            .add("dn.delivered", self.dn.delivered_elements());
        self.counters.add("mrn.additions", self.mrn.additions());
        self.counters.add("mrn.comparisons", self.mrn.comparisons());
        self.counters.add("mn.forwards", self.mn.forwards());
        self.counters.add(
            "psram.spilled_elements",
            self.psram.usage().spilled_elements,
        );
        self.counters
            .add("wbuf.elements", self.wbuf.written_elements());
        let report = ExecutionReport {
            dataflow,
            total_cycles: self.phases.total(),
            phases: self.phases,
            traffic: TrafficReport {
                sta_onchip_bytes: self.fifo.onchip_bytes(),
                str_onchip_bytes: self.cache.onchip_bytes(),
                psum_onchip_bytes: self.psram.onchip_bytes(),
                str_fill_bytes: self.cache.fill_bytes(),
                dram_read_bytes: self.dram.read_bytes(),
                dram_write_bytes: self.dram.written_bytes(),
            },
            cache: self.cache.stats(),
            psram: self.psram.usage(),
            work,
            tiles: self.tiles_run,
            multiplications: self.mn.multiplications(),
            explicit_conversions,
            counters: self.counters,
        };
        Ok((c, report))
    }

    /// Shorthand for `cycles_for` against the distribution bandwidth.
    pub(crate) fn dn_cycles(&self, elements: u64) -> Cycle {
        cycles_for(elements, self.cfg.dn_bandwidth)
    }

    /// Shorthand for `cycles_for` against the merge bandwidth.
    pub(crate) fn merge_cycles(&self, elements: u64) -> Cycle {
        cycles_for(elements, self.cfg.merge_bandwidth)
    }

    /// Shorthand for `cycles_for` against the multiplier count.
    pub(crate) fn mult_cycles(&self, products: u64) -> Cycle {
        cycles_for(products, self.cfg.multipliers as u64)
    }
}
