//! The execution engine: one hardware substrate, six dataflows.
//!
//! [`execute`] orients any of the six dataflows onto the M-stationary form
//! of its class (paper §3.2: "the IP(N), OP(N) and Gust(N) dataflows could
//! be executed in the same manner by exchanging matrices A and B"), runs the
//! class-specific phase loop against the simulated memory structures and
//! networks, and assembles the functional output together with the
//! execution report.
//!
//! The engine is clone-free: operands enter as [`MatrixView`]s, so a
//! format-matching run borrows the caller's data untouched and the
//! N-stationary duality is a zero-copy relabeling. Only an explicit format
//! conversion (the "EC" cost of Table 4) materializes a new matrix, and it
//! lives on `execute`'s stack just long enough to be viewed.
//!
//! # Sharded execution
//!
//! When [`EngineConfig::shard_grain_nnz`] is set, the layer is decomposed
//! into *bands* of output rows (the stationary dimension after the
//! M-stationary orientation): Inner-Product and Gustavson bands re-tile
//! their row range, Outer-Product bands tile the row-filtered stationary
//! elements. Each band is a complete, independent sub-execution — its own
//! tile plan, STR cache, PSRAM, DRAM channel and networks — producing its
//! rows of the output plus a [`BandOutcome`] of totals, and the outcomes
//! reduce additively in band order into the final report.
//!
//! Determinism is by construction, not by luck: the band partition is a
//! pure function of the operand structure and the configured grain, each
//! band's execution is a pure function of `(operands, config, band)`, and
//! the reduction runs in fixed band order. The worker count
//! ([`EngineConfig::shard_workers`]) only schedules bands onto threads, so
//! reports and output matrices are byte-identical at *any* worker count.
//! With the grain at its default of `0` there is a single band spanning
//! every row and the engine is the classic sequential one, bit for bit.

mod gustavson;
mod inner_product;
mod outer_product;
pub(crate) mod tiling;
pub(crate) mod workspace;

use crate::{
    AcceleratorConfig, CancelToken, CoreError, Dataflow, DataflowClass, ExecutionReport, Result,
    Stationarity, TrafficReport,
};
use flexagon_mem::{Dram, Psram, PsramUsage, StaFifo, StrCache, WriteBuffer};
use flexagon_noc::{
    DistributionNetwork, DnConfig, MergerReductionNetwork, MnConfig, MrnConfig, MultiplierNetwork,
};
use flexagon_sim::{
    bottleneck, cycles_for, Bandwidth, CounterSet, Cycle, Phase, PhaseClock, Ratio,
};
use flexagon_sparse::{
    stats::SpGemmWork, CompressedMatrix, Fiber, FormatError, MajorOrder, MatrixIndex, MatrixView,
    RowAccum, Value,
};
use rayon::prelude::*;
use std::ops::Range;
use workspace::{EngineWorkspace, WorkspaceGuard, WorkspacePool};

/// Precomputed per-execution state shared read-only by every band of an
/// Inner-Product run: the streaming operand's k-major copy (k-indexed tile
/// loop) or its tiered coordinate index (streaming scan). Computed once at
/// the execution level — the dispatch gate depends only on global shape,
/// so every band takes the same path.
enum IpShared {
    /// `B` converted to k-major rows for the k-indexed tile loop.
    Indexed(CompressedMatrix),
    /// Tiered per-fiber index over `B` for the probing streaming scan.
    Streaming(MatrixIndex),
}

/// Runs `a x b` under `dataflow` on the given configuration, returning the
/// output matrix (in the dataflow's natural format) and the report.
///
/// `pool` supplies reusable execution workspaces; `None` falls back to a
/// throwaway workspace per band. `cancel` is polled cooperatively at
/// band, tile and merge-pass boundaries: once it fires the run unwinds
/// with [`CoreError::DeadlineExceeded`] and no partial result escapes.
/// An unarmed token is result-transparent — outputs and reports are
/// byte-identical to a run without it.
pub(crate) fn execute(
    cfg: &AcceleratorConfig,
    pool: Option<&WorkspacePool>,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    dataflow: Dataflow,
    cancel: &CancelToken,
) -> Result<(CompressedMatrix, ExecutionReport)> {
    cfg.assert_valid();
    cancel.check()?;
    // Apply the SIMD policy before any kernel runs. The toggle is
    // process-global (kernels are bit-identical either way, so a concurrent
    // execution under a different policy changes speed, never results), and
    // `FLEXAGON_SIMD=off` in the environment wins over this knob.
    simd::set_scalar_only(matches!(cfg.engine.simd, crate::config::SimdMode::Scalar));
    // Format staging: re-encode the operands through the configured fiber
    // storage format and decode them back before execution. For lossless
    // formats the decode reproduces the operand bit for bit, so outputs
    // and reports are byte-identical to the SoA run — the format tier is
    // result-transparent the same way SIMD and sharding are. The config
    // field is authoritative here: the `FLEXAGON_FORMAT` env override is
    // resolved one level up, in `Accelerator::execute`, where it rewrites
    // the *default* (`FormatChoice::Config`) only — a request that pins a
    // format explicitly must get exactly that format, env or not.
    let fmt = cfg.engine.format;
    let staged;
    let (a, b) = if fmt == flexagon_sparse::FiberFormat::Soa {
        (a, b)
    } else {
        staged = (
            flexagon_sparse::FormattedMatrix::encode(a, fmt).decode(),
            flexagon_sparse::FormattedMatrix::encode(b, fmt).decode(),
        );
        (&staged.0, &staged.1)
    };
    if a.cols() != b.rows() {
        return Err(CoreError::Format(FormatError::DimensionMismatch {
            left_cols: a.cols(),
            right_rows: b.rows(),
        }));
    }
    // Bring operands into the dataflow's Table 3 formats, counting explicit
    // conversions (the "EC" cost Flexagon's inter-layer mechanism avoids).
    // A format-matching operand is borrowed, never copied.
    let mut explicit_conversions = 0u32;
    let a_conv;
    let a_view = if a.order() == dataflow.a_format() {
        a.view()
    } else {
        explicit_conversions += 1;
        a_conv = a.converted(dataflow.a_format());
        a_conv.view()
    };
    let b_conv;
    let b_view = if b.order() == dataflow.b_format() {
        b.view()
    } else {
        explicit_conversions += 1;
        b_conv = b.converted(dataflow.b_format());
        b_conv.view()
    };
    // Orient to M-stationary: an N-stationary run of C = A x B is the
    // M-stationary run of Cᵀ = Bᵀ x Aᵀ, and transposition is a free
    // reinterpretation of the borrowed views.
    let (a_eff, b_eff) = match dataflow.stationarity() {
        Stationarity::M => (a_view, b_view),
        Stationarity::N => (
            b_view.reinterpret_transposed(),
            a_view.reinterpret_transposed(),
        ),
    };
    let work = SpGemmWork::of_views(a_eff, b_eff);
    let class = dataflow.class();
    let bands = shard_bands(a_eff, cfg.engine.shard_grain_nnz);
    let shared = match class {
        DataflowClass::InnerProduct => Some(ip_shared(cfg, a_eff, b_eff)),
        _ => None,
    };
    // Multi-band Outer-Product planning: one bucketing pass hands every
    // band its elements in walk order, keeping total planning linear in
    // nnz(A) instead of O(bands x nnz(A)) full rescans.
    let op_buckets: Option<Vec<Vec<(u32, u32, Value)>>> =
        if class == DataflowClass::OuterProduct && bands.len() > 1 {
            Some(bucket_op_elements(a_eff, &bands))
        } else {
            None
        };
    let run_band = |bi: usize| -> Result<BandOutcome> {
        // Band boundary: a fired token stops before any further band
        // starts (concurrent bands observe the shared latch together).
        cancel.check()?;
        let band = bands[bi].clone();
        let mut guard = match pool {
            Some(p) => p.acquire(),
            None => WorkspaceGuard::detached(),
        };
        let ws = &mut *guard;
        let mut engine = Engine::new(cfg, a_eff, b_eff, band, ws, cancel);
        match class {
            DataflowClass::InnerProduct => {
                inner_product::run(&mut engine, ws, shared.as_ref().expect("precomputed"))
            }
            DataflowClass::OuterProduct => outer_product::run(
                &mut engine,
                ws,
                op_buckets.as_ref().map(|b| b[bi].as_slice()),
            ),
            DataflowClass::Gustavson => gustavson::run(&mut engine, ws),
        }
        if cancel.is_cancelled() {
            // The phase loop bailed mid-run (or the deadline passed at the
            // finish line): the band's fibers are incomplete and the
            // workspace's drain invariants don't hold, so the arena is
            // discarded rather than recycled.
            drop(engine);
            guard.discard();
            return Err(CoreError::DeadlineExceeded);
        }
        Ok(engine.into_outcome(ws))
    };
    let outcomes: Vec<BandOutcome> = if bands.len() <= 1 || cfg.engine.shard_workers <= 1 {
        (0..bands.len())
            .map(run_band)
            .collect::<Result<Vec<BandOutcome>>>()?
    } else {
        let indices: Vec<usize> = (0..bands.len()).collect();
        indices
            .par_iter()
            .map(|&bi| run_band(bi))
            .max_threads(cfg.engine.shard_workers)
            .collect::<Vec<Result<BandOutcome>>>()
            .into_iter()
            .collect::<Result<Vec<BandOutcome>>>()?
    };
    let (c_m, report) = assemble(
        dataflow,
        work,
        explicit_conversions,
        a_eff.rows(),
        b_eff.cols(),
        outcomes,
    )?;
    let c = match dataflow.stationarity() {
        Stationarity::M => c_m,
        Stationarity::N => c_m.reinterpret_transposed(),
    };
    debug_assert_eq!(c.order(), dataflow.c_format());
    Ok((c, report))
}

/// Chooses and precomputes the Inner-Product strategy state. The dispatch
/// thresholds live on `EngineConfig` (ROADMAP item (b)): the k-indexed path
/// wins when K dwarfs the array and its dense `clusters x N` accumulator
/// grid stays affordable.
fn ip_shared(cfg: &AcceleratorConfig, a: MatrixView<'_>, b: MatrixView<'_>) -> IpShared {
    let k_dim = a.cols() as usize;
    let n_dim = b.major_dim() as usize;
    let slots = cfg.multipliers as usize;
    let indexed = k_dim >= cfg.engine.indexed_min_k_ratio * slots
        && slots.saturating_mul(n_dim) <= cfg.engine.indexed_max_acc_elements
        && b.nnz() > 0;
    if indexed {
        // B's elements grouped by k. A CSC fiber scan visits each k in
        // ascending order; so does a walk of ascending stationary ks over
        // this copy, which is what keeps sums bit-identical across paths.
        IpShared::Indexed(b.converted(MajorOrder::Row))
    } else {
        IpShared::Streaming(MatrixIndex::build(b))
    }
}

/// Buckets the column-major stationary operand's `(k, row, value)`
/// elements by output-row band, preserving the global walk order within
/// each bucket — the input [`tiling::plan_cols_from_elements`] expects.
fn bucket_op_elements(a_csc: MatrixView<'_>, bands: &[Range<u32>]) -> Vec<Vec<(u32, u32, Value)>> {
    let mut band_of = vec![0u32; a_csc.rows() as usize];
    for (i, band) in bands.iter().enumerate() {
        for r in band.clone() {
            band_of[r as usize] = i as u32;
        }
    }
    let mut buckets: Vec<Vec<(u32, u32, Value)>> = vec![Vec::new(); bands.len()];
    for k in 0..a_csc.major_dim() {
        let fiber = a_csc.fiber(k);
        for (&row, &value) in fiber.coords().iter().zip(fiber.values()) {
            buckets[band_of[row as usize] as usize].push((k, row, value));
        }
    }
    buckets
}

/// Partitions the stationary operand's rows into bands of roughly
/// `grain_nnz` nonzeros each (cut at row boundaries). `grain_nnz == 0`
/// yields the single full-width band.
///
/// The partition depends only on the operand structure and the grain —
/// never on the worker count — so the decomposition, and with it every
/// band's execution, is fixed before any thread is spawned.
fn shard_bands(a: MatrixView<'_>, grain_nnz: usize) -> Vec<Range<u32>> {
    let rows = a.rows();
    let mut bands = Vec::new();
    let enabled = grain_nnz > 0 && rows > 0 && a.nnz() > 0;
    if enabled {
        // Per-output-row nonzero counts of the stationary operand: direct
        // from the pointer array in row-major, one counting pass in
        // column-major.
        let counts: Vec<u32> = if a.order() == MajorOrder::Col {
            let mut c = vec![0u32; rows as usize];
            for &r in a.coords() {
                c[r as usize] += 1;
            }
            c
        } else {
            Vec::new()
        };
        let row_nnz = |row: u32| -> u64 {
            match a.order() {
                MajorOrder::Row => a.fiber_len(row) as u64,
                MajorOrder::Col => counts[row as usize] as u64,
            }
        };
        let mut start = 0u32;
        let mut acc = 0u64;
        for row in 0..rows {
            acc += row_nnz(row);
            if acc >= grain_nnz as u64 {
                bands.push(start..row + 1);
                start = row + 1;
                acc = 0;
            }
        }
        if start < rows {
            bands.push(start..rows);
        }
    }
    if bands.is_empty() {
        // Sharding disabled (or nothing to shard): one full-width band,
        // the classic sequential execution.
        bands.push(0..rows);
    }
    bands
}

/// One band's complete results: its rows of the output (band-local order)
/// plus every additive total of the report. Reduced in band order by
/// [`assemble`].
#[derive(Debug)]
pub(crate) struct BandOutcome {
    fibers: Vec<Fiber>,
    phases: PhaseClock,
    counters: CounterSet,
    traffic: TrafficReport,
    cache: Ratio,
    psram: PsramUsage,
    tiles: u64,
    multiplications: u64,
}

/// Reduces band outcomes (in band order) into the output matrix and the
/// execution report. Every reduction is additive except the PSRAM
/// high-water mark, which takes the maximum — exactly what a sequential
/// execution of the bands through one PSRAM would record.
fn assemble(
    dataflow: Dataflow,
    work: SpGemmWork,
    explicit_conversions: u32,
    rows: u32,
    cols: u32,
    outcomes: Vec<BandOutcome>,
) -> Result<(CompressedMatrix, ExecutionReport)> {
    let mut fibers: Vec<Fiber> = Vec::with_capacity(rows as usize);
    let mut phases = PhaseClock::new();
    let mut counters = CounterSet::new();
    let mut traffic = TrafficReport::default();
    let mut cache = Ratio::new();
    let mut psram = PsramUsage::default();
    let mut tiles = 0u64;
    let mut multiplications = 0u64;
    for mut o in outcomes {
        fibers.append(&mut o.fibers);
        phases.merge(o.phases);
        counters.merge(&o.counters);
        traffic.sta_onchip_bytes += o.traffic.sta_onchip_bytes;
        traffic.str_onchip_bytes += o.traffic.str_onchip_bytes;
        traffic.psum_onchip_bytes += o.traffic.psum_onchip_bytes;
        traffic.str_fill_bytes += o.traffic.str_fill_bytes;
        traffic.dram_read_bytes += o.traffic.dram_read_bytes;
        traffic.dram_write_bytes += o.traffic.dram_write_bytes;
        cache.merge(o.cache);
        psram.live_blocks += o.psram.live_blocks;
        psram.high_water_blocks = psram.high_water_blocks.max(o.psram.high_water_blocks);
        psram.spilled_elements += o.psram.spilled_elements;
        tiles += o.tiles;
        multiplications += o.multiplications;
    }
    debug_assert_eq!(fibers.len(), rows as usize, "bands must cover every row");
    let c = CompressedMatrix::from_fibers(rows, cols, MajorOrder::Row, fibers)?;
    let report = ExecutionReport {
        dataflow,
        total_cycles: phases.total(),
        phases,
        traffic,
        cache,
        psram,
        work,
        tiles,
        multiplications,
        explicit_conversions,
        counters,
    };
    Ok((c, report))
}

/// Execution context for one band: configuration, operand views (already
/// M-stationary oriented), the band's simulated hardware, and accumulating
/// results.
pub(crate) struct Engine<'a> {
    pub cfg: &'a AcceleratorConfig,
    /// Stationary operand (CSR for IP/Gust, CSC for OP), borrowed.
    pub a: MatrixView<'a>,
    /// Streaming operand (CSC for IP, CSR for OP/Gust), borrowed.
    pub b: MatrixView<'a>,
    /// The output-row band this engine owns (global row coordinates).
    pub band: Range<u32>,
    pub dram: Dram,
    pub fifo: StaFifo,
    pub cache: StrCache,
    pub psram: Psram,
    pub wbuf: WriteBuffer,
    pub dn: DistributionNetwork,
    pub mn: MultiplierNetwork,
    pub mrn: MergerReductionNetwork,
    pub phases: PhaseClock,
    pub counters: CounterSet,
    /// Output fibers per band row (`out_fibers[row - band.start]`).
    pub out_fibers: Vec<Fiber>,
    /// Reusable scaled-fiber pool for the streaming phases, borrowed from
    /// the workspace for the duration of the band.
    pub scaled_pool: Vec<Fiber>,
    /// Reusable accumulator backing the merge passes of
    /// [`Engine::merge_row_fibers`], borrowed from the workspace.
    pub merge_acc: RowAccum,
    pub tiles_run: u64,
    /// Shared cancellation handle, polled at tile and merge-pass
    /// boundaries. Unarmed on every run without a deadline.
    pub cancel: &'a CancelToken,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("a", &(self.a.rows(), self.a.cols()))
            .field("b", &(self.b.rows(), self.b.cols()))
            .field("band", &self.band)
            .field("tiles_run", &self.tiles_run)
            .finish_non_exhaustive()
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        cfg: &'a AcceleratorConfig,
        a: MatrixView<'a>,
        b: MatrixView<'a>,
        band: Range<u32>,
        ws: &mut EngineWorkspace,
        cancel: &'a CancelToken,
    ) -> Self {
        let band_rows = (band.end - band.start) as usize;
        Self {
            cfg,
            a,
            b,
            band,
            dram: Dram::new(cfg.memory.dram),
            fifo: StaFifo::new(cfg.memory.fifo),
            cache: StrCache::new(cfg.memory.cache),
            psram: Psram::new(cfg.memory.psram),
            wbuf: WriteBuffer::new(),
            dn: DistributionNetwork::new(DnConfig {
                width: cfg.multipliers,
                bandwidth: Bandwidth::per_cycle(cfg.dn_bandwidth),
            }),
            mn: MultiplierNetwork::new(MnConfig {
                multipliers: cfg.multipliers,
            }),
            mrn: MergerReductionNetwork::new(MrnConfig {
                leaves: cfg.multipliers,
                bandwidth: Bandwidth::per_cycle(cfg.merge_bandwidth),
            }),
            phases: PhaseClock::new(),
            counters: CounterSet::new(),
            out_fibers: vec![Fiber::new(); band_rows],
            scaled_pool: std::mem::take(&mut ws.scaled_pool),
            merge_acc: std::mem::take(&mut ws.merge_acc),
            tiles_run: 0,
            cancel,
        }
    }

    /// Cooperative cancellation poll for the phase loops. `false` forever
    /// on an unarmed token; once `true`, the loop should return — the
    /// band's outcome is discarded by `execute`.
    #[inline]
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Element offset of streaming fiber `major` within B's data vector —
    /// the virtual address space the STR cache operates on.
    pub(crate) fn b_elem_offset(&self, major: u32) -> u64 {
        self.b.ptr()[major as usize] as u64
    }

    /// Band-local index of global output row `row`.
    #[inline]
    pub(crate) fn band_idx(&self, row: u32) -> usize {
        debug_assert!(self.band.contains(&row), "row outside this engine's band");
        (row - self.band.start) as usize
    }

    /// Runs the stationary phase for one tile: `n` elements stream from
    /// DRAM through the STA FIFO and are unicast to their multipliers.
    pub(crate) fn stationary_phase(&mut self, n: u64) {
        self.tiles_run += 1;
        if n == 0 {
            return;
        }
        self.fifo.stream(n, &mut self.dram);
        let inject = self.dn.send_irregular(n, n);
        self.mn.load_stationary(n);
        let dram_busy = self.dram.take_busy_cycles();
        self.phases
            .advance(Phase::Stationary, bottleneck(&[inject, dram_busy]));
    }

    /// Folds accumulated DRAM occupancy into `compute` cycles for `phase`:
    /// memory either hides behind compute or becomes the bottleneck.
    pub(crate) fn advance_with_dram(&mut self, phase: Phase, compute: Cycle) {
        let dram_busy = self.dram.take_busy_cycles();
        self.phases
            .advance(phase, bottleneck(&[compute, dram_busy]));
    }

    /// Merges every psum fiber currently buffered for `row` (plus
    /// `extra` in-flight fibers) down to a single fiber, running as many
    /// MRN passes as the tree radix requires. Intermediate pass results are
    /// buffered in the PSRAM (charged as psum traffic). Returns the merged
    /// fiber and the cycles spent.
    ///
    /// Each pass runs through a tiered [`RowAccum`] instead of the
    /// comparator-tree replay: scattering the batch in queue order folds
    /// every coordinate's values in the merge's own source order, so the
    /// result — including the nested fold across passes — is bit-identical
    /// to `mrn.merge_fibers` while the MRN charges the same pass model.
    pub(crate) fn merge_row_fibers(&mut self, row: u32, extra: Vec<Fiber>) -> (Fiber, Cycle) {
        let tags = self.psram.fiber_tags_of_row(row);
        let mut queue: std::collections::VecDeque<Fiber> = tags
            .into_iter()
            .map(|k| self.psram.consume_fiber(row, k, &mut self.dram))
            .chain(extra)
            .filter(|f| !f.is_empty())
            .collect();
        match queue.len() {
            0 => return (Fiber::new(), 0),
            1 => return (queue.pop_front().expect("len checked"), 0),
            _ => {}
        }
        let radix = self.mrn.max_radix();
        let mut cycles = 0;
        let mut acc = std::mem::take(&mut self.merge_acc);
        loop {
            let take = radix.min(queue.len());
            let batch: Vec<Fiber> = queue.drain(..take).collect();
            let total: u64 = batch.iter().map(|f| f.len() as u64).sum();
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            for f in &batch {
                lo = lo.min(f.coords()[0]);
                hi = hi.max(f.coords()[f.len() - 1]);
            }
            acc.begin(lo, hi, total, &self.cfg.engine.accum);
            for f in &batch {
                acc.scatter(f.as_view());
            }
            let out = acc.drain();
            cycles += self.mrn.charge_merge(total, out.len() as u64);
            self.counters.incr("mrn.merge_passes");
            if queue.is_empty() {
                self.merge_acc = acc;
                return (out, cycles);
            }
            // Merge-pass boundary: a fired token abandons the remaining
            // passes. The partial fiber flows back to a caller that bails
            // at its next tile check, and the band is then discarded.
            if self.cancel.is_cancelled() {
                self.merge_acc = acc;
                return (out, cycles);
            }
            // Intermediate result waits in the PSRAM for the next pass.
            self.psram.charge_intermediate_roundtrip(out.len() as u64);
            queue.push_back(out);
        }
    }

    /// Charges the timing and counter model of one row-merge exactly as
    /// [`Engine::merge_row_fibers`] would for `nonempty` non-empty psum
    /// fibers totalling `inputs` elements that merge down to `out_len`
    /// distinct coordinates — used by the accumulator paths, which already
    /// hold the merged fiber and never fan more than one MRN pass
    /// (`nonempty` is bounded by the tree radix).
    ///
    /// Zero or one input fiber passes through untouched (no tree pass, no
    /// comparisons); two or more charge a single merge pass.
    pub(crate) fn charge_row_merge(&mut self, nonempty: usize, inputs: u64, out_len: u64) -> Cycle {
        debug_assert!(nonempty <= self.mrn.max_radix(), "single-pass bound");
        if nonempty < 2 {
            return 0;
        }
        self.counters.incr("mrn.merge_passes");
        self.mrn.charge_merge(inputs, out_len)
    }

    /// Emits a final output fiber for `row` through the write buffer.
    pub(crate) fn emit_row(&mut self, row: u32, fiber: Fiber) {
        self.wbuf.write(fiber.len() as u64, &mut self.dram);
        let idx = self.band_idx(row);
        self.out_fibers[idx] = fiber;
    }

    /// Tears the band down into its outcome, returning the borrowed
    /// workspace buffers.
    pub(crate) fn into_outcome(mut self, ws: &mut EngineWorkspace) -> BandOutcome {
        ws.scaled_pool = std::mem::take(&mut self.scaled_pool);
        ws.merge_acc = std::mem::take(&mut self.merge_acc);
        let fibers = std::mem::take(&mut self.out_fibers);
        let (uni, multi, broad) = self.dn.cast_counts();
        self.counters.add("dn.unicasts", uni);
        self.counters.add("dn.multicasts", multi);
        self.counters.add("dn.broadcasts", broad);
        self.counters
            .add("dn.injected", self.dn.injected_elements());
        self.counters
            .add("dn.delivered", self.dn.delivered_elements());
        self.counters.add("mrn.additions", self.mrn.additions());
        self.counters.add("mrn.comparisons", self.mrn.comparisons());
        self.counters.add("mn.forwards", self.mn.forwards());
        self.counters.add(
            "psram.spilled_elements",
            self.psram.usage().spilled_elements,
        );
        self.counters
            .add("wbuf.elements", self.wbuf.written_elements());
        BandOutcome {
            fibers,
            phases: self.phases,
            counters: self.counters,
            traffic: TrafficReport {
                sta_onchip_bytes: self.fifo.onchip_bytes(),
                str_onchip_bytes: self.cache.onchip_bytes(),
                psum_onchip_bytes: self.psram.onchip_bytes(),
                str_fill_bytes: self.cache.fill_bytes(),
                dram_read_bytes: self.dram.read_bytes(),
                dram_write_bytes: self.dram.written_bytes(),
            },
            cache: self.cache.stats(),
            psram: self.psram.usage(),
            tiles: self.tiles_run,
            multiplications: self.mn.multiplications(),
        }
    }

    /// Shorthand for `cycles_for` against the distribution bandwidth.
    pub(crate) fn dn_cycles(&self, elements: u64) -> Cycle {
        cycles_for(elements, self.cfg.dn_bandwidth)
    }

    /// Shorthand for `cycles_for` against the merge bandwidth.
    pub(crate) fn merge_cycles(&self, elements: u64) -> Cycle {
        cycles_for(elements, self.cfg.merge_bandwidth)
    }

    /// Shorthand for `cycles_for` against the multiplier count.
    pub(crate) fn mult_cycles(&self, products: u64) -> Cycle {
        cycles_for(products, self.cfg.multipliers as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::gen;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mats(seed: u64) -> (CompressedMatrix, CompressedMatrix) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (
            gen::random(40, 48, 0.25, MajorOrder::Row, &mut rng),
            gen::random(48, 36, 0.2, MajorOrder::Row, &mut rng),
        )
    }

    #[test]
    fn shard_bands_disabled_is_single_full_band() {
        let (a, _) = mats(1);
        assert_eq!(shard_bands(a.view(), 0), vec![0..40]);
    }

    #[test]
    fn shard_bands_partition_covers_rows_in_order() {
        let (a, _) = mats(2);
        for grain in [1usize, 7, 64, 1 << 20] {
            let bands = shard_bands(a.view(), grain);
            assert_eq!(bands.first().unwrap().start, 0);
            assert_eq!(bands.last().unwrap().end, 40);
            for w in bands.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn shard_bands_csc_counts_rows_not_columns() {
        let (a, _) = mats(3);
        let a_csc = a.converted(MajorOrder::Col);
        // Same stationary row partition whichever major order carries it.
        assert_eq!(shard_bands(a.view(), 50), shard_bands(a_csc.view(), 50));
    }

    #[test]
    fn shard_bands_grain_one_isolates_nonempty_rows() {
        let (a, _) = mats(4);
        let bands = shard_bands(a.view(), 1);
        for band in &bands {
            // Grain 1 cuts after every row with at least one element.
            let nnz: usize = (band.start..band.end).map(|r| a.view().fiber_len(r)).sum();
            assert!(nnz > 0 || band.end == a.rows());
        }
    }

    #[test]
    fn worker_count_never_changes_reports() {
        let (a, b) = mats(5);
        let run_all = |grain: usize, workers: usize| -> String {
            let mut cfg = AcceleratorConfig::tiny();
            cfg.engine = cfg.engine.sharded(grain, workers);
            Dataflow::ALL
                .iter()
                .map(|&df| {
                    let (c, report) =
                        execute(&cfg, None, &a, &b, df, &CancelToken::never()).expect("run");
                    format!(
                        "{}{}",
                        serde_json::to_string(&report).unwrap(),
                        serde_json::to_string(&c).unwrap()
                    )
                })
                .collect::<Vec<String>>()
                .join("|")
        };
        for grain in [0usize, 40, 200] {
            let reference = run_all(grain, 1);
            for workers in [2usize, 4, 7] {
                assert_eq!(
                    reference,
                    run_all(grain, workers),
                    "grain {grain} workers {workers}"
                );
            }
        }
    }

    #[test]
    fn sharded_single_band_matches_unsharded() {
        // A grain larger than nnz(A) yields one band; its report must be
        // byte-identical to the grain-0 classic path.
        let (a, b) = mats(6);
        let cfg0 = AcceleratorConfig::tiny();
        let mut cfg1 = AcceleratorConfig::tiny();
        cfg1.engine = cfg1.engine.sharded(1 << 30, 4);
        for df in Dataflow::ALL {
            let (c0, r0) = execute(&cfg0, None, &a, &b, df, &CancelToken::never()).expect("run");
            let (c1, r1) = execute(&cfg1, None, &a, &b, df, &CancelToken::never()).expect("run");
            assert_eq!(c0, c1);
            assert_eq!(
                serde_json::to_string(&r0).unwrap(),
                serde_json::to_string(&r1).unwrap()
            );
        }
    }

    #[test]
    fn cancelled_token_stops_every_dataflow() {
        let (a, b) = mats(8);
        let cancelled = CancelToken::manual();
        cancelled.cancel();
        let cfg = AcceleratorConfig::tiny();
        for df in Dataflow::ALL {
            let err = execute(&cfg, None, &a, &b, df, &cancelled).unwrap_err();
            assert!(matches!(err, CoreError::DeadlineExceeded), "{df}");
        }
        // Sharded multi-band path bails too, and a pool never receives a
        // dirty workspace from a cancelled run.
        let pool = WorkspacePool::new();
        let mut sharded = AcceleratorConfig::tiny();
        sharded.engine = sharded.engine.sharded(20, 3);
        for df in Dataflow::ALL {
            let err = execute(&sharded, Some(&pool), &a, &b, df, &cancelled).unwrap_err();
            assert!(matches!(err, CoreError::DeadlineExceeded), "{df} sharded");
        }
        // The same pool still serves clean runs afterwards.
        for df in Dataflow::ALL {
            let (c, _) = execute(&sharded, Some(&pool), &a, &b, df, &CancelToken::never())
                .expect("pool unaffected by cancelled runs");
            let (c_ref, _) = execute(&sharded, None, &a, &b, df, &CancelToken::never()).unwrap();
            assert_eq!(c, c_ref, "{df}");
        }
    }

    #[test]
    fn unarmed_and_far_deadline_tokens_are_result_transparent() {
        use std::time::{Duration, Instant};
        let (a, b) = mats(9);
        let mut cfg = AcceleratorConfig::tiny();
        cfg.engine = cfg.engine.sharded(25, 2);
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        for df in Dataflow::ALL {
            let (c0, r0) = execute(&cfg, None, &a, &b, df, &CancelToken::never()).unwrap();
            let (c1, r1) = execute(&cfg, None, &a, &b, df, &far).unwrap();
            assert_eq!(c0, c1, "{df}");
            assert_eq!(
                serde_json::to_string(&r0).unwrap(),
                serde_json::to_string(&r1).unwrap(),
                "{df}"
            );
        }
    }

    #[test]
    fn workspace_reuse_is_invisible() {
        // Running the same case twice through one pool must be bit-identical
        // (a dirty workspace must never leak into results), across all
        // dataflows and a sharded config.
        let (a, b) = mats(7);
        let pool = WorkspacePool::new();
        let mut cfg = AcceleratorConfig::tiny();
        cfg.engine = cfg.engine.sharded(30, 2);
        for df in Dataflow::ALL {
            let (c0, r0) =
                execute(&cfg, Some(&pool), &a, &b, df, &CancelToken::never()).expect("run");
            let (c1, r1) =
                execute(&cfg, Some(&pool), &a, &b, df, &CancelToken::never()).expect("run");
            assert_eq!(c0, c1, "{df}");
            assert_eq!(
                serde_json::to_string(&r0).unwrap(),
                serde_json::to_string(&r1).unwrap(),
                "{df}"
            );
        }
        assert!(pool.idle() >= 1, "workspaces returned to the pool");
    }
}
