//! Stationary-tile planning.
//!
//! A tile is one filling of the multiplier array (the stationary phase of
//! Fig. 3b). For row-stationary dataflows (IP, Gust) a tile packs row
//! fibers (split into chunks when longer than the array); for the
//! element-stationary Outer Product it packs individual elements walked in
//! column-major order, grouped by their `k` so one B-row multicast serves
//! the whole group.

use flexagon_sparse::{FiberView, MatrixView, Value};

/// A chunk of a stationary row fiber mapped onto consecutive multipliers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Cluster {
    /// Output row this cluster computes.
    pub row: u32,
    /// Chunk index within the row (0-based).
    pub chunk: u32,
    /// Total chunks the row was split into.
    pub chunks_total: u32,
    /// Offset of the chunk within the row's fiber.
    pub start: usize,
    /// Number of elements (multiplier slots) in the chunk.
    pub len: usize,
}

impl Cluster {
    /// Whether this row fits entirely in one cluster.
    pub fn is_whole_row(&self) -> bool {
        self.chunks_total == 1
    }

    /// Whether this is the row's final chunk.
    pub fn is_last_chunk(&self) -> bool {
        self.chunk + 1 == self.chunks_total
    }

    /// The chunk of the stationary fiber this cluster holds, as a zero-copy
    /// view into `a` (the matrix the tiles were planned from).
    pub fn chunk_of<'a>(&self, a: MatrixView<'a>) -> FiberView<'a> {
        a.fiber(self.row).slice(self.start, self.len)
    }
}

/// One stationary tile of row clusters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RowTile {
    /// Clusters mapped in this tile, in row order.
    pub clusters: Vec<Cluster>,
}

impl RowTile {
    /// Multiplier slots occupied.
    pub fn slots_used(&self) -> u64 {
        self.clusters.iter().map(|c| c.len as u64).sum()
    }
}

/// Packs the rows of a row-major stationary matrix into tiles of at most
/// `slots` multipliers, splitting rows longer than `slots` into chunks.
///
/// Chunks of one row are emitted in order and never share a tile with a
/// later chunk of the same row (a full-width chunk fills a tile by itself).
/// Empty rows occupy no slots.
pub(crate) fn tile_rows(a: MatrixView<'_>, slots: u32) -> Vec<RowTile> {
    let slots = slots as usize;
    let mut tiles = Vec::new();
    let mut current = RowTile::default();
    let mut used = 0usize;
    for row in 0..a.major_dim() {
        let len = a.fiber_len(row);
        if len == 0 {
            continue;
        }
        let chunks_total = len.div_ceil(slots) as u32;
        let mut start = 0usize;
        let mut chunk = 0u32;
        while start < len {
            let take = (len - start).min(slots);
            if used + take > slots {
                tiles.push(std::mem::take(&mut current));
                used = 0;
            }
            current.clusters.push(Cluster {
                row,
                chunk,
                chunks_total,
                start,
                len: take,
            });
            used += take;
            start += take;
            chunk += 1;
            if used == slots {
                tiles.push(std::mem::take(&mut current));
                used = 0;
            }
        }
    }
    if !current.clusters.is_empty() {
        tiles.push(current);
    }
    tiles
}

/// Stationary elements of one `k` (column of A) within an Outer-Product
/// tile; the k's B row is multicast to all of them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct KGroup {
    /// Shared k coordinate (column of A / row of B).
    pub k: u32,
    /// `(output row, stationary A value)` per occupied slot.
    pub targets: Vec<(u32, Value)>,
}

/// One stationary tile of Outer-Product element groups.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ColTile {
    /// Groups in ascending-k order.
    pub groups: Vec<KGroup>,
}

impl ColTile {
    /// Multiplier slots occupied.
    pub fn slots_used(&self) -> u64 {
        self.groups.iter().map(|g| g.targets.len() as u64).sum()
    }

    /// Output rows receiving psums from this tile (sorted, deduplicated).
    ///
    /// The Outer-Product loop now derives this from its flat per-row tile
    /// stamps (one pass, no per-tile allocation); this form remains the
    /// specification the stamps are tested against.
    #[cfg(test)]
    pub fn rows_touched(&self) -> Vec<u32> {
        let mut rows: Vec<u32> = self
            .groups
            .iter()
            .flat_map(|g| g.targets.iter().map(|&(row, _)| row))
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }
}

/// Packs the elements of a column-major stationary matrix into tiles of at
/// most `slots` elements, walking columns in order (the Outer-Product
/// stationary order). A column spanning a tile boundary is split across
/// tiles.
pub(crate) fn tile_cols(a_csc: MatrixView<'_>, slots: u32) -> Vec<ColTile> {
    let slots = slots as usize;
    let mut tiles = Vec::new();
    let mut current = ColTile::default();
    let mut used = 0usize;
    for k in 0..a_csc.major_dim() {
        for e in a_csc.fiber(k).iter() {
            if used == slots {
                tiles.push(std::mem::take(&mut current));
                used = 0;
            }
            match current.groups.last_mut() {
                Some(g) if g.k == k => g.targets.push((e.coord, e.value)),
                _ => current.groups.push(KGroup {
                    k,
                    targets: vec![(e.coord, e.value)],
                }),
            }
            used += 1;
        }
    }
    if !current.groups.is_empty() {
        tiles.push(current);
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::{gen, CompressedMatrix, MajorOrder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn csr(m: u32, k: u32, d: f64, seed: u64) -> CompressedMatrix {
        gen::random(
            m,
            k,
            d,
            MajorOrder::Row,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn tile_rows_covers_all_elements_once() {
        let a = csr(20, 30, 0.3, 1);
        let tiles = tile_rows(a.view(), 8);
        let mut covered = 0usize;
        for t in &tiles {
            assert!(t.slots_used() <= 8);
            covered += t.slots_used() as usize;
        }
        assert_eq!(covered, a.nnz());
    }

    #[test]
    fn tile_rows_splits_long_rows() {
        // One dense row of 20 elements, 8 slots: chunks 8/8/4.
        let a = csr(1, 20, 1.0, 2);
        let tiles = tile_rows(a.view(), 8);
        assert_eq!(tiles.len(), 3);
        let chunks: Vec<(u32, usize)> = tiles
            .iter()
            .flat_map(|t| t.clusters.iter().map(|c| (c.chunk, c.len)))
            .collect();
        assert_eq!(chunks, vec![(0, 8), (1, 8), (2, 4)]);
        for t in &tiles {
            for c in &t.clusters {
                assert_eq!(c.chunks_total, 3);
            }
        }
        assert!(tiles[2].clusters[0].is_last_chunk());
        assert!(!tiles[0].clusters[0].is_last_chunk());
    }

    #[test]
    fn tile_rows_skips_empty_rows() {
        let a = CompressedMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 1, 1.0)], MajorOrder::Row)
            .unwrap();
        let tiles = tile_rows(a.view(), 8);
        assert_eq!(tiles.len(), 1);
        let rows: Vec<u32> = tiles[0].clusters.iter().map(|c| c.row).collect();
        assert_eq!(rows, vec![0, 3]);
    }

    #[test]
    fn tile_rows_empty_matrix_no_tiles() {
        let a = CompressedMatrix::zero(5, 5, MajorOrder::Row);
        assert!(tile_rows(a.view(), 8).is_empty());
    }

    #[test]
    fn whole_row_flag() {
        let a = csr(3, 4, 1.0, 3); // rows of 4 nnz, 8 slots
        let tiles = tile_rows(a.view(), 8);
        for t in &tiles {
            for c in &t.clusters {
                assert!(c.is_whole_row());
            }
        }
    }

    #[test]
    fn tile_cols_covers_all_elements_once() {
        let a = csr(20, 30, 0.3, 4).converted(MajorOrder::Col);
        let tiles = tile_cols(a.view(), 8);
        let covered: u64 = tiles.iter().map(|t| t.slots_used()).sum();
        assert_eq!(covered, a.nnz() as u64);
        for t in &tiles {
            assert!(t.slots_used() <= 8);
        }
    }

    #[test]
    fn tile_cols_groups_share_k() {
        let a = csr(10, 3, 1.0, 5).converted(MajorOrder::Col); // 3 cols x 10 nnz
        let tiles = tile_cols(a.view(), 8);
        // Column 0 (10 elements) spans tiles 0 and 1.
        assert_eq!(tiles[0].groups.len(), 1);
        assert_eq!(tiles[0].groups[0].k, 0);
        assert_eq!(tiles[0].groups[0].targets.len(), 8);
        assert_eq!(tiles[1].groups[0].k, 0);
        assert_eq!(tiles[1].groups[0].targets.len(), 2);
    }

    #[test]
    fn tile_cols_ks_ascend_within_tile() {
        let a = csr(6, 20, 0.4, 6).converted(MajorOrder::Col);
        for t in tile_cols(a.view(), 16) {
            let ks: Vec<u32> = t.groups.iter().map(|g| g.k).collect();
            let mut sorted = ks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(ks, sorted);
        }
    }

    #[test]
    fn rows_touched_is_sorted_unique() {
        let a = csr(6, 6, 0.8, 7).converted(MajorOrder::Col);
        for t in tile_cols(a.view(), 12) {
            let rows = t.rows_touched();
            let mut sorted = rows.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(rows, sorted);
        }
    }
}
