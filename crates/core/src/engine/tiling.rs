//! Stationary-tile planning.
//!
//! A tile is one filling of the multiplier array (the stationary phase of
//! Fig. 3b). For row-stationary dataflows (IP, Gust) a tile packs row
//! fibers (split into chunks when longer than the array); for the
//! element-stationary Outer Product it packs individual elements walked in
//! column-major order, grouped by their `k` so one B-row multicast serves
//! the whole group.
//!
//! Plans are *flat*: clusters, groups and targets live in contiguous
//! vectors with tile boundaries recorded as prefix ends. That keeps a plan
//! fully reusable — an [`EngineWorkspace`](super::workspace::EngineWorkspace)
//! holds one of each and replanning touches no allocator in the steady
//! state — and makes tile iteration a slice walk.
//!
//! Every planner takes the *band* of output rows it plans for (the shard
//! unit of the parallel engine). Planning `0..rows` reproduces the
//! unsharded plan exactly; a narrower band plans the row-submatrix alone,
//! which is what keeps each shard's execution — and therefore its
//! accounting — a pure function of `(operands, config, band)`,
//! independent of how many worker threads run the bands.

use flexagon_sparse::{FiberView, MatrixView, Value};
use std::ops::Range;

/// A chunk of a stationary row fiber mapped onto consecutive multipliers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Cluster {
    /// Output row this cluster computes.
    pub row: u32,
    /// Chunk index within the row (0-based).
    pub chunk: u32,
    /// Total chunks the row was split into.
    pub chunks_total: u32,
    /// Offset of the chunk within the row's fiber.
    pub start: usize,
    /// Number of elements (multiplier slots) in the chunk.
    pub len: usize,
}

impl Cluster {
    /// Whether this row fits entirely in one cluster.
    pub fn is_whole_row(&self) -> bool {
        self.chunks_total == 1
    }

    /// Whether this is the row's final chunk.
    pub fn is_last_chunk(&self) -> bool {
        self.chunk + 1 == self.chunks_total
    }

    /// The chunk of the stationary fiber this cluster holds, as a zero-copy
    /// view into `a` (the matrix the tiles were planned from).
    pub fn chunk_of<'a>(&self, a: MatrixView<'a>) -> FiberView<'a> {
        a.fiber(self.row).slice(self.start, self.len)
    }
}

/// Multiplier slots occupied by a tile of row clusters.
pub(crate) fn slots_used(tile: &[Cluster]) -> u64 {
    tile.iter().map(|c| c.len as u64).sum()
}

/// Flat row-stationary tile plan: all clusters in tile order, with each
/// tile's end offset into `clusters`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RowPlan {
    clusters: Vec<Cluster>,
    tile_ends: Vec<u32>,
}

impl RowPlan {
    /// Iterates over the tiles as cluster slices.
    pub fn tiles(&self) -> impl Iterator<Item = &[Cluster]> {
        let mut start = 0usize;
        self.tile_ends.iter().map(move |&end| {
            let tile = &self.clusters[start..end as usize];
            start = end as usize;
            tile
        })
    }

    /// Number of tiles planned.
    #[cfg(test)]
    pub fn num_tiles(&self) -> usize {
        self.tile_ends.len()
    }
}

/// Packs the rows `band` of a row-major stationary matrix into tiles of at
/// most `slots` multipliers, splitting rows longer than `slots` into
/// chunks, writing the plan into `out` (cleared first; buffers reused).
///
/// Chunks of one row are emitted in order and never share a tile with a
/// later chunk of the same row (a full-width chunk fills a tile by itself).
/// Empty rows occupy no slots.
pub(crate) fn plan_rows(a: MatrixView<'_>, slots: u32, band: Range<u32>, out: &mut RowPlan) {
    let slots = slots as usize;
    out.clusters.clear();
    out.tile_ends.clear();
    let mut tile_start = 0usize;
    let mut used = 0usize;
    for row in band {
        let len = a.fiber_len(row);
        if len == 0 {
            continue;
        }
        let chunks_total = len.div_ceil(slots) as u32;
        let mut start = 0usize;
        let mut chunk = 0u32;
        while start < len {
            let take = (len - start).min(slots);
            if used + take > slots {
                out.tile_ends.push(out.clusters.len() as u32);
                tile_start = out.clusters.len();
                used = 0;
            }
            out.clusters.push(Cluster {
                row,
                chunk,
                chunks_total,
                start,
                len: take,
            });
            used += take;
            start += take;
            chunk += 1;
            if used == slots {
                out.tile_ends.push(out.clusters.len() as u32);
                tile_start = out.clusters.len();
                used = 0;
            }
        }
    }
    if out.clusters.len() > tile_start {
        out.tile_ends.push(out.clusters.len() as u32);
    }
}

/// One Outer-Product tile as a borrowed slice of the flat plan.
#[derive(Debug, Clone)]
pub(crate) struct ColTileRef<'p> {
    plan: &'p ColPlan,
    groups: Range<usize>,
}

impl<'p> ColTileRef<'p> {
    /// Iterates over the tile's `(k, targets)` groups in ascending-k order.
    pub fn groups(&self) -> impl Iterator<Item = (u32, &'p [(u32, Value)])> {
        let plan = self.plan;
        self.groups.clone().map(move |g| {
            let start = if g == 0 {
                0
            } else {
                plan.group_ends[g - 1] as usize
            };
            let end = plan.group_ends[g] as usize;
            (plan.group_ks[g], &plan.targets[start..end])
        })
    }

    /// Multiplier slots occupied.
    pub fn slots_used(&self) -> u64 {
        self.groups().map(|(_, t)| t.len() as u64).sum()
    }
}

/// Flat column-stationary (Outer-Product) tile plan: all `(row, value)`
/// targets in walk order, grouped by `k`, with group and tile boundaries
/// as prefix ends.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ColPlan {
    /// `(output row, stationary A value)` per occupied slot, in walk order.
    targets: Vec<(u32, Value)>,
    /// Shared k coordinate of each group.
    group_ks: Vec<u32>,
    /// Prefix end of each group within `targets`.
    group_ends: Vec<u32>,
    /// Prefix end of each tile within the group arrays.
    tile_ends: Vec<u32>,
}

impl ColPlan {
    /// Iterates over the tiles.
    pub fn tiles(&self) -> impl Iterator<Item = ColTileRef<'_>> {
        let mut start = 0usize;
        self.tile_ends.iter().map(move |&end| {
            let tile = ColTileRef {
                plan: self,
                groups: start..end as usize,
            };
            start = end as usize;
            tile
        })
    }
}

/// Packs a stream of `(k, row, value)` stationary elements — already in
/// column-major walk order — into tiles of at most `slots` elements,
/// writing the plan into `out` (cleared first; buffers reused). A column
/// spanning a tile boundary is split across tiles.
fn pack_cols(elements: impl Iterator<Item = (u32, u32, Value)>, slots: u32, out: &mut ColPlan) {
    let slots = slots as usize;
    out.targets.clear();
    out.group_ks.clear();
    out.group_ends.clear();
    out.tile_ends.clear();
    let mut tile_start = 0usize;
    let mut used = 0usize;
    for (k, row, value) in elements {
        if used == slots {
            out.tile_ends.push(out.group_ks.len() as u32);
            tile_start = out.group_ks.len();
            used = 0;
        }
        let open = out.group_ks.len() > tile_start && *out.group_ks.last().expect("nonempty") == k;
        if open {
            *out.group_ends.last_mut().expect("open group") += 1;
        } else {
            out.group_ks.push(k);
            out.group_ends.push(out.targets.len() as u32 + 1);
        }
        out.targets.push((row, value));
        used += 1;
    }
    if out.group_ks.len() > tile_start {
        out.tile_ends.push(out.group_ks.len() as u32);
    }
}

/// Packs the elements of a column-major stationary matrix whose row
/// coordinate falls in `band` into tiles of at most `slots` elements,
/// walking columns in order (the Outer-Product stationary order).
///
/// Filtering by `band` is exactly planning the row-submatrix `A[band, :]`:
/// the walk order of the surviving elements is unchanged, so `0..rows`
/// reproduces the unsharded plan. This full-scan form costs `O(nnz(A))`
/// per call regardless of band width — multi-band executions pre-bucket
/// the elements once and use [`plan_cols_from_elements`] per band instead,
/// keeping total planning linear in `nnz(A)`.
pub(crate) fn plan_cols(a_csc: MatrixView<'_>, slots: u32, band: Range<u32>, out: &mut ColPlan) {
    let elements = (0..a_csc.major_dim()).flat_map(|k| {
        let fiber = a_csc.fiber(k);
        fiber
            .coords()
            .iter()
            .zip(fiber.values())
            .map(move |(&row, &value)| (k, row, value))
    });
    pack_cols(
        elements.filter(|&(_, row, _)| band.contains(&row)),
        slots,
        out,
    );
}

/// [`plan_cols`] over a pre-bucketed element list: `elements` must be this
/// band's `(k, row, value)` triples in the global column-major walk order,
/// as produced by one bucketing pass over the whole operand. Produces the
/// identical plan to `plan_cols` over the band at linear total cost.
pub(crate) fn plan_cols_from_elements(
    elements: &[(u32, u32, Value)],
    slots: u32,
    out: &mut ColPlan,
) {
    pack_cols(elements.iter().copied(), slots, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::{gen, CompressedMatrix, MajorOrder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn csr(m: u32, k: u32, d: f64, seed: u64) -> CompressedMatrix {
        gen::random(
            m,
            k,
            d,
            MajorOrder::Row,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
    }

    fn rows_of(a: MatrixView<'_>, slots: u32) -> RowPlan {
        let mut plan = RowPlan::default();
        plan_rows(a, slots, 0..a.major_dim(), &mut plan);
        plan
    }

    fn cols_of(a: MatrixView<'_>, slots: u32) -> ColPlan {
        let mut plan = ColPlan::default();
        plan_cols(a, slots, 0..a.minor_dim(), &mut plan);
        plan
    }

    #[test]
    fn plan_rows_covers_all_elements_once() {
        let a = csr(20, 30, 0.3, 1);
        let plan = rows_of(a.view(), 8);
        let mut covered = 0usize;
        for t in plan.tiles() {
            assert!(slots_used(t) <= 8);
            covered += slots_used(t) as usize;
        }
        assert_eq!(covered, a.nnz());
    }

    #[test]
    fn plan_rows_splits_long_rows() {
        // One dense row of 20 elements, 8 slots: chunks 8/8/4.
        let a = csr(1, 20, 1.0, 2);
        let plan = rows_of(a.view(), 8);
        assert_eq!(plan.num_tiles(), 3);
        let chunks: Vec<(u32, usize)> = plan
            .tiles()
            .flat_map(|t| t.iter().map(|c| (c.chunk, c.len)))
            .collect();
        assert_eq!(chunks, vec![(0, 8), (1, 8), (2, 4)]);
        let tiles: Vec<&[Cluster]> = plan.tiles().collect();
        for t in &tiles {
            for c in t.iter() {
                assert_eq!(c.chunks_total, 3);
            }
        }
        assert!(tiles[2][0].is_last_chunk());
        assert!(!tiles[0][0].is_last_chunk());
    }

    #[test]
    fn plan_rows_skips_empty_rows() {
        let a = CompressedMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 1, 1.0)], MajorOrder::Row)
            .unwrap();
        let plan = rows_of(a.view(), 8);
        assert_eq!(plan.num_tiles(), 1);
        let rows: Vec<u32> = plan.tiles().next().unwrap().iter().map(|c| c.row).collect();
        assert_eq!(rows, vec![0, 3]);
    }

    #[test]
    fn plan_rows_empty_matrix_no_tiles() {
        let a = CompressedMatrix::zero(5, 5, MajorOrder::Row);
        assert_eq!(rows_of(a.view(), 8).num_tiles(), 0);
    }

    #[test]
    fn whole_row_flag() {
        let a = csr(3, 4, 1.0, 3); // rows of 4 nnz, 8 slots
        let plan = rows_of(a.view(), 8);
        for t in plan.tiles() {
            for c in t.iter() {
                assert!(c.is_whole_row());
            }
        }
    }

    #[test]
    fn banded_row_plans_concatenate_to_row_coverage() {
        // Bands partition the rows; each band's plan covers exactly its
        // rows' elements, and reusing the same RowPlan buffer across bands
        // (the workspace pattern) leaves no stale state behind.
        let a = csr(24, 30, 0.4, 8);
        let mut plan = RowPlan::default();
        let mut covered = 0usize;
        for band in [0u32..9, 9..10, 10..24] {
            plan_rows(a.view(), 8, band.clone(), &mut plan);
            for t in plan.tiles() {
                for c in t.iter() {
                    assert!(band.contains(&c.row));
                    covered += c.len;
                }
            }
        }
        assert_eq!(covered, a.nnz());
    }

    #[test]
    fn full_band_row_plan_matches_fresh_plan() {
        let a = csr(16, 16, 0.5, 9);
        let fresh = rows_of(a.view(), 4);
        let mut reused = rows_of(csr(40, 40, 0.9, 10).view(), 8); // dirty it
        plan_rows(a.view(), 4, 0..16, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn plan_cols_covers_all_elements_once() {
        let a = csr(20, 30, 0.3, 4).converted(MajorOrder::Col);
        let plan = cols_of(a.view(), 8);
        let covered: u64 = plan.tiles().map(|t| t.slots_used()).sum();
        assert_eq!(covered, a.nnz() as u64);
        for t in plan.tiles() {
            assert!(t.slots_used() <= 8);
        }
    }

    #[test]
    fn plan_cols_groups_share_k() {
        let a = csr(10, 3, 1.0, 5).converted(MajorOrder::Col); // 3 cols x 10 nnz
        let plan = cols_of(a.view(), 8);
        // Column 0 (10 elements) spans tiles 0 and 1.
        let tiles: Vec<ColTileRef<'_>> = plan.tiles().collect();
        let t0: Vec<(u32, usize)> = tiles[0].groups().map(|(k, t)| (k, t.len())).collect();
        assert_eq!(t0, vec![(0, 8)]);
        let t1_first = tiles[1].groups().next().unwrap();
        assert_eq!(t1_first.0, 0);
        assert_eq!(t1_first.1.len(), 2);
    }

    #[test]
    fn plan_cols_ks_ascend_within_tile() {
        let a = csr(6, 20, 0.4, 6).converted(MajorOrder::Col);
        for t in cols_of(a.view(), 16).tiles() {
            let ks: Vec<u32> = t.groups().map(|(k, _)| k).collect();
            let mut sorted = ks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(ks, sorted);
        }
    }

    #[test]
    fn banded_col_plan_filters_rows_preserving_walk_order() {
        let a = csr(12, 12, 0.6, 7).converted(MajorOrder::Col);
        let mut plan = ColPlan::default();
        plan_cols(a.view(), 8, 3..9, &mut plan);
        let mut covered = 0u64;
        for t in plan.tiles() {
            for (_, targets) in t.groups() {
                for &(row, _) in targets {
                    assert!((3..9).contains(&row));
                }
                covered += targets.len() as u64;
            }
        }
        let expected = a
            .view()
            .coords()
            .iter()
            .filter(|&&r| (3..9).contains(&r))
            .count() as u64;
        assert_eq!(covered, expected);
    }

    #[test]
    fn bucketed_col_plan_matches_band_scan_plan() {
        // The multi-band fast path (one bucketing pass + per-band
        // plan_cols_from_elements) must produce exactly the plan the
        // filtering scan produces for every band.
        let a = csr(18, 14, 0.45, 13).converted(MajorOrder::Col);
        for band in [0u32..5, 5..6, 6..18, 0..18] {
            let mut scanned = ColPlan::default();
            plan_cols(a.view(), 8, band.clone(), &mut scanned);
            let elements: Vec<(u32, u32, Value)> = (0..a.view().major_dim())
                .flat_map(|k| {
                    let f = a.view().fiber(k);
                    f.coords()
                        .iter()
                        .zip(f.values())
                        .map(move |(&row, &value)| (k, row, value))
                        .collect::<Vec<_>>()
                })
                .filter(|&(_, row, _)| band.contains(&row))
                .collect();
            let mut bucketed = ColPlan::default();
            plan_cols_from_elements(&elements, 8, &mut bucketed);
            assert_eq!(scanned, bucketed, "band {band:?}");
        }
    }

    #[test]
    fn full_band_col_plan_matches_fresh_plan() {
        let a = csr(14, 10, 0.5, 11).converted(MajorOrder::Col);
        let fresh = cols_of(a.view(), 8);
        let mut reused = cols_of(csr(30, 30, 0.8, 12).converted(MajorOrder::Col).view(), 4);
        plan_cols(a.view(), 8, 0..14, &mut reused);
        assert_eq!(fresh, reused);
    }
}
