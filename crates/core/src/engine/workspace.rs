//! Reusable execution workspaces.
//!
//! Every `execute` call needs a pile of scratch state — tile plans, per-row
//! accumulator pools, stamp/span vectors, k-entry tables, scaled-fiber
//! pools — that used to be allocated fresh per call (`vec![...; rows]`
//! eight times over in the Outer-Product loop alone). Sweep-style workloads
//! (the oracle's six-dataflow fan-out, `mapper_calibrate`'s 526 cases)
//! re-pay that allocation churn for every single simulation.
//!
//! [`EngineWorkspace`] is the arena that survives across executions: all
//! scratch buffers keep their allocations, and each run only resizes and
//! re-stamps what it touches. Workspaces never influence results — every
//! buffer is either fully reset on entry (stamps, assignment tables) or
//! maintained clean by the loops that use it (accumulator grids, presence
//! masks), which the debug assertions in [`EngineWorkspace::debug_assert_clean`]
//! pin down.
//!
//! [`WorkspacePool`] makes reuse safe under parallelism: each accelerator
//! owns a pool, every concurrent execution (layer-parallel runs, intra-layer
//! shards) checks a workspace out for the duration of one band and returns
//! it on drop. In the steady state the pool holds as many workspaces as the
//! peak concurrency and `execute` performs no scratch allocation at all.

use super::tiling::{ColPlan, RowPlan};
use flexagon_sparse::{Fiber, RowAccum, Value};
use std::collections::HashMap;
use std::sync::Mutex;

/// Scratch arena for one in-flight execution band.
///
/// Fields are grouped by the dataflow class that uses them; the shared
/// fields at the top serve every class. All buffers keep their allocations
/// across uses.
#[derive(Debug, Default)]
pub(crate) struct EngineWorkspace {
    // --- shared -----------------------------------------------------------
    /// Row-stationary tile plan (IP, Gustavson).
    pub row_plan: RowPlan,
    /// Column-stationary tile plan (Outer Product).
    pub col_plan: ColPlan,
    /// Scaled-fiber staging pool (Gustavson's legacy wide-row path).
    pub scaled_pool: Vec<Fiber>,
    /// Accumulator backing the engine's multi-pass row merges.
    pub merge_acc: RowAccum,
    /// Per-row accumulator pool (Outer Product scatter targets, Gustavson
    /// split-row run collectors).
    pub pool: Vec<RowAccum>,
    /// Free indices into `pool`.
    pub free: Vec<u32>,
    /// Band-row -> `pool` index, `u32::MAX` when unassigned.
    pub accum_of: Vec<u32>,

    // --- Outer Product ----------------------------------------------------
    /// Per-band-row tile stamp (deduplicates `(tile, row)` pairs).
    pub stamp: Vec<u32>,
    /// Tiles still owing psums to each band row.
    pub tiles_left: Vec<u32>,
    /// Incoming-psum span low bound per band row.
    pub span_lo: Vec<u32>,
    /// Incoming-psum span high bound per band row.
    pub span_hi: Vec<u32>,
    /// Incoming-psum element count per band row.
    pub span_nnz: Vec<u64>,
    /// DRAM-resident partial fibers per band row.
    pub pending: Vec<Vec<Fiber>>,
    /// Rows touched by the current tile.
    pub touched: Vec<u32>,

    // --- Gustavson --------------------------------------------------------
    /// The in-flight cluster's accumulator.
    pub cluster_acc: RowAccum,

    // --- Inner Product ----------------------------------------------------
    /// k -> `(cluster, stationary value)` entries for the current tile.
    /// Entries are cleared by the tile that filled them.
    pub k_entries: Vec<Vec<(u32, Value)>>,
    /// One-bit-per-k membership mask, cleared by the tile that set it.
    pub k_mask: Vec<u64>,
    /// Distinct stationary ks of the current tile, ascending.
    pub touched_k: Vec<u32>,
    /// Dense `clusters x N` accumulator grid (k-indexed path). Zeroed by
    /// the emission sweep.
    pub grid_acc: Vec<Value>,
    /// Hit bits over `grid_acc`, likewise swept clean.
    pub grid_hit: Vec<u64>,
    /// Per-column injected-element tallies, reset by the accounting sweep.
    pub injected_n: Vec<u32>,
    /// Per-column delivered-element tallies, reset by the accounting sweep.
    pub delivered_n: Vec<u64>,
    /// Per-cluster dot accumulator (streaming path), zeroed per emission.
    pub cl_acc: Vec<Value>,
    /// Per-cluster hit flags (streaming path), cleared per emission.
    pub cl_hit: Vec<bool>,
    /// Clusters hit by the current streaming fiber.
    pub hit_list: Vec<u32>,
    /// Cross-tile accumulators for rows split into multiple chunks.
    pub split_acc: HashMap<u32, HashMap<u32, Value>>,
}

impl EngineWorkspace {
    /// Sizes and resets the band-row-indexed scratch for a band of `rows`
    /// output rows. Stamps and assignment tables are re-initialized (their
    /// values from a previous execution would alias the new tile indices);
    /// the span vectors are re-derived per tile and need no reset.
    pub fn reset_band_rows(&mut self, rows: usize) {
        self.stamp.clear();
        self.stamp.resize(rows, u32::MAX);
        self.tiles_left.clear();
        self.tiles_left.resize(rows, 0);
        self.accum_of.clear();
        self.accum_of.resize(rows, u32::MAX);
        if self.span_lo.len() < rows {
            self.span_lo.resize(rows, 0);
            self.span_hi.resize(rows, 0);
            self.span_nnz.resize(rows, 0);
        }
        if self.pending.len() < rows {
            self.pending.resize_with(rows, Vec::new);
        }
        debug_assert!(
            self.pending.iter().all(Vec::is_empty),
            "pending partial fibers must drain by the end of each run"
        );
        debug_assert!(
            self.free.len() == self.pool.len(),
            "every pooled accumulator must be free between runs"
        );
    }

    /// Sizes the Inner-Product k-indexed scratch (`k_entries`, `k_mask`)
    /// for a K dimension of `k_dim`.
    pub fn reset_k(&mut self, k_dim: usize) {
        if self.k_entries.len() < k_dim {
            self.k_entries.resize_with(k_dim, Vec::new);
        }
        let words = k_dim.div_ceil(64);
        if self.k_mask.len() < words {
            self.k_mask.resize(words, 0);
        }
        debug_assert!(
            self.k_entries.iter().all(Vec::is_empty),
            "k entries must be cleared by the tile that filled them"
        );
        debug_assert!(
            self.k_mask.iter().all(|&w| w == 0),
            "k mask must be cleared by the tile that set it"
        );
    }

    /// Sizes the Inner-Product dense accumulator grid for `slots` clusters
    /// by `n_dim` output columns, plus the per-column tallies.
    pub fn reset_grid(&mut self, slots: usize, n_dim: usize) {
        let cells = slots * n_dim;
        if self.grid_acc.len() < cells {
            self.grid_acc.resize(cells, 0.0);
        }
        let words = slots * n_dim.div_ceil(64);
        if self.grid_hit.len() < words {
            self.grid_hit.resize(words, 0);
        }
        if self.injected_n.len() < n_dim {
            self.injected_n.resize(n_dim, 0);
            self.delivered_n.resize(n_dim, 0);
        }
        self.debug_assert_clean();
    }

    /// Debug check that the sweep-maintained buffers really are clean —
    /// the invariant that makes reuse invisible to results.
    pub fn debug_assert_clean(&self) {
        debug_assert!(
            self.grid_hit.iter().all(|&w| w == 0),
            "grid hit bits must be swept clean"
        );
        debug_assert!(
            self.grid_acc.iter().all(|&v| v == 0.0),
            "grid accumulator must be swept clean"
        );
        debug_assert!(
            self.injected_n.iter().all(|&v| v == 0) && self.delivered_n.iter().all(|&v| v == 0),
            "per-column tallies must be reset by the accounting sweep"
        );
    }
}

/// A checkout pool of execution workspaces (the engine's reusable scratch
/// arenas) owned by an accelerator.
///
/// Cloning an accelerator clones its configuration but not its pool
/// contents — workspaces are a pure cache and a fresh pool is always
/// equivalent.
#[derive(Default)]
pub struct WorkspacePool {
    slots: Mutex<Vec<EngineWorkspace>>,
}

impl WorkspacePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a workspace out, creating one if the pool is empty. The
    /// workspace returns to the pool when the guard drops.
    pub(crate) fn acquire(&self) -> WorkspaceGuard<'_> {
        let ws = self
            .slots
            .lock()
            .expect("workspace pool lock")
            .pop()
            .unwrap_or_default();
        WorkspaceGuard {
            ws: Some(ws),
            pool: Some(self),
        }
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.slots.lock().expect("workspace pool lock").len()
    }
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("idle", &self.idle())
            .finish()
    }
}

impl Clone for WorkspacePool {
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// Owning handle to a checked-out [`EngineWorkspace`].
#[derive(Debug)]
pub(crate) struct WorkspaceGuard<'p> {
    ws: Option<EngineWorkspace>,
    pool: Option<&'p WorkspacePool>,
}

impl WorkspaceGuard<'_> {
    /// A guard with a fresh workspace and no backing pool (dropped, not
    /// recycled) — the fallback when the caller owns no pool.
    pub fn detached() -> Self {
        Self {
            ws: Some(EngineWorkspace::default()),
            pool: None,
        }
    }

    /// Detaches the workspace from its pool so it drops instead of being
    /// recycled. A band that bails out mid-run (cooperative cancellation)
    /// leaves sweep-maintained buffers dirty — pending fibers undrained,
    /// accumulators checked out — and discarding the arena is cheaper and
    /// safer than unwinding every loop's cleanup by hand.
    pub fn discard(&mut self) {
        self.pool = None;
    }
}

impl std::ops::Deref for WorkspaceGuard<'_> {
    type Target = EngineWorkspace;
    fn deref(&self) -> &EngineWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for WorkspaceGuard<'_> {
    fn deref_mut(&mut self) -> &mut EngineWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for WorkspaceGuard<'_> {
    fn drop(&mut self) {
        if let (Some(ws), Some(pool)) = (self.ws.take(), self.pool) {
            pool.slots.lock().expect("workspace pool lock").push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_workspaces() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut g = pool.acquire();
            g.touched.push(7);
            let _g2 = pool.acquire(); // concurrent checkout gets its own
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        let g = pool.acquire();
        assert_eq!(pool.idle(), 1);
        drop(g);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn discarded_guard_never_returns_to_pool() {
        let pool = WorkspacePool::new();
        {
            let mut g = pool.acquire();
            g.pending.push(vec![Fiber::new()]); // dirty, as after a bail-out
            g.discard();
        }
        assert_eq!(pool.idle(), 0, "discarded workspaces drop");
        drop(pool.acquire());
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn detached_guard_drops_silently() {
        let mut g = WorkspaceGuard::detached();
        g.reset_band_rows(4);
        assert_eq!(g.stamp.len(), 4);
        drop(g);
    }

    #[test]
    fn reset_band_rows_restamps() {
        let mut ws = EngineWorkspace::default();
        ws.reset_band_rows(3);
        ws.stamp[1] = 0;
        ws.tiles_left[2] = 9;
        ws.accum_of[0] = 5;
        ws.reset_band_rows(3);
        assert!(ws.stamp.iter().all(|&s| s == u32::MAX));
        assert!(ws.tiles_left.iter().all(|&t| t == 0));
        assert!(ws.accum_of.iter().all(|&a| a == u32::MAX));
    }

    #[test]
    fn clone_of_pool_is_fresh() {
        let pool = WorkspacePool::new();
        drop(pool.acquire());
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.clone().idle(), 0);
    }
}
