//! Error type for accelerator operations.

use crate::Dataflow;
use flexagon_sparse::{FormatError, ValidationError};

/// Errors produced while configuring or running an accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A sparse-format defect (dimensions, ordering, bounds).
    Format(FormatError),
    /// An operand failed untrusted-input validation before reaching the
    /// engine (the `try_run*` entry points).
    Validation(ValidationError),
    /// The accelerator does not support the requested dataflow — e.g. the
    /// SIGMA-like baseline asked to run Gustavson's.
    UnsupportedDataflow {
        /// Name of the accelerator that rejected the request.
        accelerator: String,
        /// The requested dataflow.
        dataflow: Dataflow,
    },
    /// The request's [`crate::CancelToken`] fired before execution
    /// finished: the deadline passed (or the token was cancelled) and the
    /// engine stopped at the next band/tile/merge-pass boundary. No
    /// partial result is returned.
    DeadlineExceeded,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Format(e) => write!(f, "{e}"),
            Self::Validation(e) => write!(f, "invalid operand: {e}"),
            Self::UnsupportedDataflow {
                accelerator,
                dataflow,
            } => {
                write!(f, "accelerator {accelerator} does not support {dataflow}")
            }
            Self::DeadlineExceeded => {
                write!(f, "execution cancelled: deadline exceeded")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Format(e) => Some(e),
            Self::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for CoreError {
    fn from(e: FormatError) -> Self {
        Self::Format(e)
    }
}

impl From<ValidationError> for CoreError {
    fn from(e: ValidationError) -> Self {
        Self::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::UnsupportedDataflow {
            accelerator: "SIGMA-like".into(),
            dataflow: Dataflow::GustavsonM,
        };
        assert!(format!("{e}").contains("SIGMA-like"));
        assert!(e.source().is_none());

        let f: CoreError = FormatError::DimensionMismatch {
            left_cols: 2,
            right_rows: 3,
        }
        .into();
        assert!(f.source().is_some());

        let d = CoreError::DeadlineExceeded;
        assert!(format!("{d}").contains("deadline"));
        assert!(d.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
