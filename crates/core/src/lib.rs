//! The Flexagon accelerator engine and its baselines.
//!
//! This crate implements the paper's primary contribution: a single hardware
//! substrate that executes all six SpMSpM dataflows (Inner Product, Outer
//! Product and Gustavson's, each in M- and N-stationary variants), plus the
//! three fixed-dataflow baseline accelerators it is evaluated against and
//! the CPU reference.
//!
//! * [`Dataflow`] — the six dataflows and their Table 3 taxonomy.
//! * [`transitions`] — the inter-layer format-compatibility rules (Table 4).
//! * [`AcceleratorConfig`] — the Table 5 configuration.
//! * [`Accelerator`] — common interface; implemented by [`Flexagon`],
//!   [`SigmaLike`], [`SparchLike`], [`GammaLike`] and [`CpuMkl`].
//! * [`ExecutionReport`] — cycles, phase split, on-/off-chip traffic, cache
//!   and PSRAM statistics for one SpMSpM execution.
//! * [`mapper`] — per-layer `(dataflow, format)` selection:
//!   [`MappingStrategy`] (oracle sweep, calibrated heuristic, or pinned
//!   dataflow) with the fitted [`MapperCalibration`] cost-model
//!   corrections, plus [`FormatChoice`]/[`FormatSelection`] for the
//!   storage-format axis.
//! * [`Accelerator::execute`] — the unified entry point: one
//!   [`ExecutionRequest`] carries strategy, format, validation and an
//!   optional [`CancelToken`] deadline (the former
//!   `run`/`run_strategy`/`try_run`/`try_run_strategy` grid remains as
//!   thin deprecated wrappers).
//! * [`CancelToken`] — cooperative cancellation, polled at band/tile/
//!   merge-pass boundaries; unarmed tokens are result-transparent, armed
//!   ones surface [`CoreError::DeadlineExceeded`].
//!
//! Every run is functionally exact: the returned output matrix is produced
//! by actually executing the dataflow (stationary/streaming/merging phases
//! against the simulated memory structures) and can be validated against
//! the dense reference.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accel;
mod cancel;
mod config;
mod cpu;
mod dataflow;
mod engine;
mod error;
pub mod mapper;
mod report;
pub mod transitions;

pub use accel::{
    Accelerator, Execution, ExecutionRequest, Flexagon, GammaLike, RunOutput, SigmaLike, SparchLike,
};
pub use cancel::CancelToken;
pub use config::{AcceleratorConfig, EngineConfig, SimdMode};
pub use cpu::{CpuConfig, CpuMkl};
pub use dataflow::{Dataflow, DataflowClass, Stationarity};
pub use engine::workspace::WorkspacePool;
pub use error::CoreError;
pub use mapper::{
    ClassCalibration, FormatChoice, FormatSelection, MapperCalibration, MappingStrategy,
};
pub use report::{ExecutionReport, TrafficReport};

/// Convenience result alias for accelerator operations.
pub type Result<T> = std::result::Result<T, CoreError>;
