//! Execution reports: the measurements every figure of the paper is built
//! from.

use crate::Dataflow;
use flexagon_mem::PsramUsage;
use flexagon_sim::{CounterSet, Cycle, PhaseClock, Ratio};
use flexagon_sparse::stats::SpGemmWork;
use serde::Serialize;

/// Traffic through the memory hierarchy during one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TrafficReport {
    /// Bytes read out of the STA FIFO by the datapath (Fig. 14, blue).
    pub sta_onchip_bytes: u64,
    /// Bytes delivered from the STR cache to the datapath (Fig. 14, orange).
    pub str_onchip_bytes: u64,
    /// Psum bytes moved to/from the PSRAM (Fig. 14, green).
    pub psum_onchip_bytes: u64,
    /// Bytes filled into the STR cache from DRAM (Fig. 16's metric).
    pub str_fill_bytes: u64,
    /// Total DRAM read bytes (all structures).
    pub dram_read_bytes: u64,
    /// Total DRAM write bytes (psum spills, partial fibers and final
    /// outputs).
    pub dram_write_bytes: u64,
}

impl TrafficReport {
    /// Total on-chip L1-to-datapath traffic (the stacked bars of Fig. 14).
    pub fn onchip_total(&self) -> u64 {
        self.sta_onchip_bytes + self.str_onchip_bytes + self.psum_onchip_bytes
    }

    /// Total off-chip traffic.
    pub fn offchip_total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Everything measured during one SpMSpM execution.
///
/// Produced by [`crate::Accelerator::run`]; aggregated across layers by the
/// benchmark harness for the end-to-end figures.
#[derive(Debug, Clone, Serialize)]
pub struct ExecutionReport {
    /// The dataflow that was executed.
    pub dataflow: Dataflow,
    /// Total execution cycles.
    pub total_cycles: Cycle,
    /// Cycle attribution per phase (Fig. 13's Mult/Merg split).
    pub phases: PhaseClock,
    /// Memory traffic breakdown.
    pub traffic: TrafficReport,
    /// STR cache hit/miss statistics (Fig. 15).
    pub cache: Ratio,
    /// PSRAM occupancy and spill statistics.
    pub psram: PsramUsage,
    /// Work profile of the operation (products, nnz).
    pub work: SpGemmWork,
    /// Number of stationary tiles (passes) executed.
    pub tiles: u64,
    /// Effectual scalar multiplications performed by the MN.
    pub multiplications: u64,
    /// Whether an operand had to be explicitly converted to the dataflow's
    /// required format before execution (the "EC" of Table 4).
    pub explicit_conversions: u32,
    /// Assorted low-level counters (network casts, merge passes, ...).
    pub counters: CounterSet,
}

impl ExecutionReport {
    /// On-chip traffic total in bytes.
    pub fn onchip_bytes(&self) -> u64 {
        self.traffic.onchip_total()
    }

    /// Off-chip traffic total in bytes.
    pub fn offchip_bytes(&self) -> u64 {
        self.traffic.offchip_total()
    }

    /// Speed-up of this run relative to `other` (`other.cycles / my
    /// cycles`); >1 means this run is faster.
    pub fn speedup_over(&self, other: &ExecutionReport) -> f64 {
        if self.total_cycles == 0 {
            return if other.total_cycles == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        other.total_cycles as f64 / self.total_cycles as f64
    }

    /// Merges another layer's report into this aggregate (cycles and
    /// traffic add; ratios merge; the dataflow field keeps the first run's
    /// value).
    pub fn accumulate(&mut self, other: &ExecutionReport) {
        self.total_cycles += other.total_cycles;
        self.phases.merge(other.phases);
        self.traffic.sta_onchip_bytes += other.traffic.sta_onchip_bytes;
        self.traffic.str_onchip_bytes += other.traffic.str_onchip_bytes;
        self.traffic.psum_onchip_bytes += other.traffic.psum_onchip_bytes;
        self.traffic.str_fill_bytes += other.traffic.str_fill_bytes;
        self.traffic.dram_read_bytes += other.traffic.dram_read_bytes;
        self.traffic.dram_write_bytes += other.traffic.dram_write_bytes;
        self.cache.merge(other.cache);
        self.work.products += other.work.products;
        self.work.nnz_a += other.work.nnz_a;
        self.work.nnz_b += other.work.nnz_b;
        self.work.effectual_k += other.work.effectual_k;
        self.tiles += other.tiles;
        self.multiplications += other.multiplications;
        self.explicit_conversions += other.explicit_conversions;
        self.counters.merge(&other.counters);
        self.psram.spilled_elements += other.psram.spilled_elements;
        self.psram.high_water_blocks = self
            .psram
            .high_water_blocks
            .max(other.psram.high_water_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(cycles: Cycle) -> ExecutionReport {
        ExecutionReport {
            dataflow: Dataflow::GustavsonM,
            total_cycles: cycles,
            phases: PhaseClock::new(),
            traffic: TrafficReport::default(),
            cache: Ratio::new(),
            psram: PsramUsage::default(),
            work: SpGemmWork {
                products: 0,
                nnz_a: 0,
                nnz_b: 0,
                effectual_k: 0,
            },
            tiles: 0,
            multiplications: 0,
            explicit_conversions: 0,
            counters: CounterSet::new(),
        }
    }

    #[test]
    fn traffic_totals() {
        let t = TrafficReport {
            sta_onchip_bytes: 1,
            str_onchip_bytes: 2,
            psum_onchip_bytes: 3,
            str_fill_bytes: 4,
            dram_read_bytes: 5,
            dram_write_bytes: 6,
        };
        assert_eq!(t.onchip_total(), 6);
        assert_eq!(t.offchip_total(), 11);
    }

    #[test]
    fn speedup_direction() {
        let fast = blank(100);
        let slow = blank(400);
        assert_eq!(fast.speedup_over(&slow), 4.0);
        assert_eq!(slow.speedup_over(&fast), 0.25);
    }

    #[test]
    fn speedup_zero_cycles_edge() {
        let zero = blank(0);
        let some = blank(10);
        assert_eq!(zero.speedup_over(&some), f64::INFINITY);
        assert_eq!(zero.speedup_over(&blank(0)), 1.0);
    }

    #[test]
    fn accumulate_adds_everything() {
        let mut a = blank(10);
        a.traffic.dram_read_bytes = 5;
        a.tiles = 1;
        let mut b = blank(20);
        b.traffic.dram_read_bytes = 7;
        b.tiles = 2;
        b.multiplications = 9;
        a.accumulate(&b);
        assert_eq!(a.total_cycles, 30);
        assert_eq!(a.traffic.dram_read_bytes, 12);
        assert_eq!(a.tiles, 3);
        assert_eq!(a.multiplications, 9);
    }
}
