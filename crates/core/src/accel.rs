//! The accelerators: Flexagon and the three fixed-dataflow baselines.
//!
//! Following the paper's methodology (§4), the four accelerators share the
//! same Table 5 parameters — "we only change the memory controllers to
//! deliver the data in the proper order according to its dataflow" — so the
//! baselines are the same engine pinned to one dataflow class, with the
//! PSRAM sized per Table 8 (none for SIGMA-like, half for GAMMA-like).

use crate::{
    engine, mapper, AcceleratorConfig, CoreError, Dataflow, ExecutionReport, MappingStrategy,
    Result, WorkspacePool,
};
use flexagon_sparse::{validate_matrix, CompressedMatrix, ValidationConfig};

/// Result of one accelerator execution: the functional output matrix and
/// the measured report.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The output matrix C, in the dataflow's natural format (Table 3).
    pub c: CompressedMatrix,
    /// Cycles, traffic and statistics for the run.
    pub report: ExecutionReport,
}

/// Common interface of all simulated accelerators.
pub trait Accelerator {
    /// Human-readable name used in reports ("Flexagon", "SIGMA-like", ...).
    fn name(&self) -> &str;

    /// The architectural configuration.
    fn config(&self) -> &AcceleratorConfig;

    /// The dataflows this accelerator can execute.
    fn supported_dataflows(&self) -> &[Dataflow];

    /// The accelerator's reusable execution-workspace pool, if it keeps
    /// one. Pooled workspaces eliminate per-execute scratch allocation;
    /// they never affect results.
    fn workspaces(&self) -> Option<&WorkspacePool> {
        None
    }

    /// Runs `a x b` under `dataflow`.
    ///
    /// Operands may arrive in either major order; if an operand is not in
    /// the format Table 3 requires, it is explicitly converted and the
    /// conversion is recorded in the report (`explicit_conversions`) — the
    /// cost Flexagon's inter-layer transitions avoid.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedDataflow`] if the dataflow is not in
    /// [`Accelerator::supported_dataflows`]; [`CoreError::Format`] on
    /// dimension mismatch.
    fn run(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        dataflow: Dataflow,
    ) -> Result<RunOutput> {
        if !self.supported_dataflows().contains(&dataflow) {
            return Err(CoreError::UnsupportedDataflow {
                accelerator: self.name().to_owned(),
                dataflow,
            });
        }
        let (c, report) = engine::execute(self.config(), self.workspaces(), a, b, dataflow)?;
        Ok(RunOutput { c, report })
    }

    /// Runs `a x b` with the dataflow chosen by `strategy`, returning the
    /// selection together with its output.
    ///
    /// * [`MappingStrategy::Oracle`] sweeps every supported dataflow and
    ///   keeps the fastest — the paper's evaluation methodology, at
    ///   `supported_dataflows().len()` times the simulation cost.
    /// * [`MappingStrategy::Heuristic`] picks the supported dataflow with
    ///   the lowest calibrated cost estimate and runs it once.
    /// * [`MappingStrategy::Fixed`] runs the given dataflow directly; the
    ///   result is identical to calling [`Accelerator::run`] with it.
    ///
    /// # Errors
    ///
    /// Propagates execution errors; [`CoreError::UnsupportedDataflow`] when
    /// a `Fixed` dataflow is not supported.
    fn run_strategy(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        strategy: MappingStrategy,
    ) -> Result<(Dataflow, RunOutput)> {
        match strategy {
            MappingStrategy::Oracle => mapper::oracle(self, a, b),
            MappingStrategy::Heuristic => {
                let df = mapper::heuristic_among(self.config(), a, b, self.supported_dataflows());
                Ok((df, self.run(a, b, df)?))
            }
            MappingStrategy::Fixed(df) => Ok((df, self.run(a, b, df)?)),
        }
    }

    /// Like [`Accelerator::run`], but validates both operands under
    /// `validation` before they reach the engine — the entry point for
    /// operands whose bytes arrived from outside the process (the serve
    /// daemon, file loaders). With [`ValidationConfig::permissive`] the
    /// extra cost is a structural scan; with
    /// [`ValidationConfig::untrusted`] resource bombs and non-finite
    /// values are rejected too.
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] when an operand fails validation, plus
    /// everything [`Accelerator::run`] can return.
    fn try_run(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        dataflow: Dataflow,
        validation: &ValidationConfig,
    ) -> Result<RunOutput> {
        validate_matrix(a, validation).map_err(CoreError::Validation)?;
        validate_matrix(b, validation).map_err(CoreError::Validation)?;
        self.run(a, b, dataflow)
    }

    /// Like [`Accelerator::run_strategy`], but validates both operands
    /// under `validation` first (see [`Accelerator::try_run`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] when an operand fails validation, plus
    /// everything [`Accelerator::run_strategy`] can return.
    fn try_run_strategy(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        strategy: MappingStrategy,
        validation: &ValidationConfig,
    ) -> Result<(Dataflow, RunOutput)> {
        validate_matrix(a, validation).map_err(CoreError::Validation)?;
        validate_matrix(b, validation).map_err(CoreError::Validation)?;
        self.run_strategy(a, b, strategy)
    }

    /// Runs every supported dataflow and returns the fastest result.
    ///
    /// This is the oracle selection the paper uses to drive Flexagon's
    /// per-layer configuration (equivalent to
    /// [`Accelerator::run_strategy`] with [`MappingStrategy::Oracle`],
    /// without reporting the winning dataflow).
    ///
    /// # Errors
    ///
    /// Propagates the first execution error encountered.
    fn run_best(&self, a: &CompressedMatrix, b: &CompressedMatrix) -> Result<RunOutput> {
        let mut best: Option<RunOutput> = None;
        for &df in self.supported_dataflows() {
            let out = self.run(a, b, df)?;
            let better = match &best {
                None => true,
                Some(b) => out.report.total_cycles < b.report.total_cycles,
            };
            if better {
                best = Some(out);
            }
        }
        best.ok_or_else(|| CoreError::UnsupportedDataflow {
            accelerator: self.name().to_owned(),
            dataflow: Dataflow::InnerProductM,
        })
    }
}

macro_rules! fixed_accelerator {
    (
        $(#[$doc:meta])*
        $name:ident, $display:expr, $dataflows:expr, $memory:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            cfg: AcceleratorConfig,
            /// Reusable execution workspaces (cloning yields a fresh pool —
            /// pooled scratch is a pure cache).
            workspaces: WorkspacePool,
        }

        impl $name {
            /// Creates the accelerator from a base configuration; the
            /// memory hierarchy is adjusted to this design's sizing.
            pub fn new(mut cfg: AcceleratorConfig) -> Self {
                cfg.memory = $memory(cfg.memory);
                Self {
                    cfg,
                    workspaces: WorkspacePool::new(),
                }
            }

            /// Creates the accelerator with the paper's Table 5 parameters.
            pub fn with_defaults() -> Self {
                Self::new(AcceleratorConfig::table5())
            }
        }

        impl Accelerator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn config(&self) -> &AcceleratorConfig {
                &self.cfg
            }

            fn supported_dataflows(&self) -> &[Dataflow] {
                &$dataflows
            }

            fn workspaces(&self) -> Option<&WorkspacePool> {
                Some(&self.workspaces)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::with_defaults()
            }
        }
    };
}

fixed_accelerator!(
    /// The Flexagon accelerator: all six dataflows on one substrate, with
    /// the unified MRN and the full 256 KiB PSRAM.
    Flexagon,
    "Flexagon",
    Dataflow::ALL,
    |m| m
);

fixed_accelerator!(
    /// The SIGMA-like Inner-Product baseline: FAN reduction network, no
    /// merging capability, no PSRAM use.
    SigmaLike,
    "SIGMA-like",
    [Dataflow::InnerProductM, Dataflow::InnerProductN],
    |m: flexagon_mem::MemoryConfig| {
        let _ = m;
        flexagon_mem::MemoryConfig::table5_no_psram()
    }
);

fixed_accelerator!(
    /// The SpArch-like Outer-Product baseline: merger tree plus a full
    /// 256 KiB PSRAM for its worst-case psum volume.
    SparchLike,
    "Sparch-like",
    [Dataflow::OuterProductM, Dataflow::OuterProductN],
    |m| m
);

fixed_accelerator!(
    /// The GAMMA-like Gustavson baseline: merger tree, fiber-reuse cache,
    /// and a half-sized (128 KiB) PSRAM per Table 8.
    GammaLike,
    "GAMMA-like",
    [Dataflow::GustavsonM, Dataflow::GustavsonN],
    |mut m: flexagon_mem::MemoryConfig| {
        m.psram.capacity_bytes /= 2;
        m
    }
);

impl Flexagon {
    /// Runs `a x b` with the dataflow chosen by the heuristic mapper
    /// (no oracle sweep); shorthand for [`Accelerator::run_strategy`]
    /// with [`MappingStrategy::Heuristic`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_mapped(&self, a: &CompressedMatrix, b: &CompressedMatrix) -> Result<RunOutput> {
        self.run_strategy(a, b, MappingStrategy::Heuristic)
            .map(|(_, out)| out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataflowClass;

    #[test]
    fn supported_dataflows_match_table1() {
        assert_eq!(Flexagon::with_defaults().supported_dataflows().len(), 6);
        for d in SigmaLike::with_defaults().supported_dataflows() {
            assert_eq!(d.class(), DataflowClass::InnerProduct);
        }
        for d in SparchLike::with_defaults().supported_dataflows() {
            assert_eq!(d.class(), DataflowClass::OuterProduct);
        }
        for d in GammaLike::with_defaults().supported_dataflows() {
            assert_eq!(d.class(), DataflowClass::Gustavson);
        }
    }

    #[test]
    fn gamma_like_has_half_psram() {
        let g = GammaLike::with_defaults();
        let f = Flexagon::with_defaults();
        assert_eq!(
            g.config().memory.psram.capacity_bytes * 2,
            f.config().memory.psram.capacity_bytes
        );
    }

    #[test]
    fn baselines_reject_foreign_dataflows() {
        let sigma = SigmaLike::with_defaults();
        let a = CompressedMatrix::zero(2, 2, flexagon_sparse::MajorOrder::Row);
        let b = CompressedMatrix::zero(2, 2, flexagon_sparse::MajorOrder::Row);
        let err = sigma.run(&a, &b, Dataflow::GustavsonM).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedDataflow { .. }));
    }

    #[test]
    fn fixed_strategy_matches_direct_run() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let a =
            flexagon_sparse::gen::random(24, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(24, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        for df in Dataflow::ALL {
            let (chosen, out) = f.run_strategy(&a, &b, MappingStrategy::Fixed(df)).unwrap();
            let direct = f.run(&a, &b, df).unwrap();
            assert_eq!(chosen, df);
            assert_eq!(out.c, direct.c);
            assert_eq!(out.report.total_cycles, direct.report.total_cycles);
        }
    }

    #[test]
    fn oracle_strategy_matches_run_best() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let a =
            flexagon_sparse::gen::random(24, 32, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(32, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        let (df, out) = f.run_strategy(&a, &b, MappingStrategy::Oracle).unwrap();
        let best = f.run_best(&a, &b).unwrap();
        assert_eq!(out.report.total_cycles, best.report.total_cycles);
        assert_eq!(df, out.report.dataflow);
    }

    #[test]
    fn heuristic_strategy_picks_a_supported_dataflow() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let a =
            flexagon_sparse::gen::random(24, 24, 0.4, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(24, 24, 0.4, flexagon_sparse::MajorOrder::Row, &mut rng);
        let sigma = SigmaLike::with_defaults();
        let (df, out) = sigma
            .run_strategy(&a, &b, MappingStrategy::Heuristic)
            .unwrap();
        assert!(sigma.supported_dataflows().contains(&df));
        assert_eq!(out.report.dataflow, df);
    }

    #[test]
    fn try_run_rejects_invalid_operands_and_matches_run_on_valid() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(14);
        let a =
            flexagon_sparse::gen::random(16, 16, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(16, 16, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        let cfg = flexagon_sparse::ValidationConfig::untrusted();
        let out = f.try_run(&a, &b, Dataflow::GustavsonM, &cfg).unwrap();
        assert_eq!(out.c, f.run(&a, &b, Dataflow::GustavsonM).unwrap().c);

        // An Inf operand passes `run` but is refused at the try_ boundary.
        let poisoned = CompressedMatrix::from_triplets(
            16,
            16,
            &[(0, 0, f32::INFINITY)],
            flexagon_sparse::MajorOrder::Row,
        )
        .unwrap();
        let err = f
            .try_run(&a, &poisoned, Dataflow::GustavsonM, &cfg)
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
        let err = f
            .try_run_strategy(&poisoned, &b, MappingStrategy::Heuristic, &cfg)
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Flexagon::with_defaults().name(), "Flexagon");
        assert_eq!(SigmaLike::with_defaults().name(), "SIGMA-like");
        assert_eq!(SparchLike::with_defaults().name(), "Sparch-like");
        assert_eq!(GammaLike::with_defaults().name(), "GAMMA-like");
    }
}
