//! The accelerators: Flexagon and the three fixed-dataflow baselines.
//!
//! Following the paper's methodology (§4), the four accelerators share the
//! same Table 5 parameters — "we only change the memory controllers to
//! deliver the data in the proper order according to its dataflow" — so the
//! baselines are the same engine pinned to one dataflow class, with the
//! PSRAM sized per Table 8 (none for SIGMA-like, half for GAMMA-like).

use crate::{
    engine, mapper, AcceleratorConfig, CancelToken, CoreError, Dataflow, ExecutionReport,
    FormatChoice, MappingStrategy, Result, WorkspacePool,
};
use flexagon_sparse::{validate_matrix, CompressedMatrix, FiberFormat, ValidationConfig};

/// Result of one accelerator execution: the functional output matrix and
/// the measured report.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The output matrix C, in the dataflow's natural format (Table 3).
    pub c: CompressedMatrix,
    /// Cycles, traffic and statistics for the run.
    pub report: ExecutionReport,
}

/// One execution, fully specified: operands plus the strategy, format and
/// validation knobs that used to be spread across the
/// `run`/`run_strategy`/`try_run`/`try_run_strategy` method grid.
///
/// Built builder-style from [`ExecutionRequest::new`] — every knob
/// defaults to the common case (heuristic dataflow, config-default
/// format, no validation), so the simplest call reads
/// `accel.execute(ExecutionRequest::new(&a, &b).dataflow(df))`.
#[derive(Debug, Clone)]
pub struct ExecutionRequest<'m> {
    /// The stationary operand A.
    pub a: &'m CompressedMatrix,
    /// The streaming operand B.
    pub b: &'m CompressedMatrix,
    /// How the dataflow is chosen ([`MappingStrategy::Heuristic`] by
    /// default).
    pub strategy: MappingStrategy,
    /// How the fiber storage format is chosen ([`FormatChoice::Config`]
    /// by default — the accelerator's configured format).
    pub format: FormatChoice,
    /// Operand validation to run before execution (`None` skips it — the
    /// policy for operands this process built itself).
    pub validation: Option<ValidationConfig>,
    /// Cooperative cancellation handle, polled at band/tile/merge-pass
    /// boundaries. The default unarmed token never fires and is
    /// result-transparent; an armed token surfaces
    /// [`CoreError::DeadlineExceeded`] once it fires.
    pub cancel: CancelToken,
}

impl<'m> ExecutionRequest<'m> {
    /// A request for `a x b` with every knob at its default: heuristic
    /// dataflow selection, the config-default format, no validation.
    pub fn new(a: &'m CompressedMatrix, b: &'m CompressedMatrix) -> Self {
        Self {
            a,
            b,
            strategy: MappingStrategy::Heuristic,
            format: FormatChoice::Config,
            validation: None,
            cancel: CancelToken::never(),
        }
    }

    /// Sets the mapping strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Pins the dataflow (shorthand for
    /// `strategy(MappingStrategy::Fixed(dataflow))`).
    #[must_use]
    pub fn dataflow(mut self, dataflow: Dataflow) -> Self {
        self.strategy = MappingStrategy::Fixed(dataflow);
        self
    }

    /// Pins the fiber storage format (shorthand for
    /// `format_choice(FormatChoice::Fixed(format))`).
    #[must_use]
    pub fn format(mut self, format: FiberFormat) -> Self {
        self.format = FormatChoice::Fixed(format);
        self
    }

    /// Sets how the storage format is chosen.
    #[must_use]
    pub fn format_choice(mut self, choice: FormatChoice) -> Self {
        self.format = choice;
        self
    }

    /// Validates both operands under `validation` before execution — the
    /// boundary for operands whose bytes arrived from outside the process.
    #[must_use]
    pub fn validated(mut self, validation: ValidationConfig) -> Self {
        self.validation = Some(validation);
        self
    }

    /// Attaches a cancellation token. Clones of the token share the same
    /// latch, so the caller keeps one handle and can fire it (or let its
    /// deadline pass) while the execution is in flight.
    #[must_use]
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Arms an end-to-end deadline `budget` from now (shorthand for
    /// `cancel_token(CancelToken::after(budget))`).
    #[must_use]
    pub fn deadline_in(self, budget: std::time::Duration) -> Self {
        self.cancel_token(CancelToken::after(budget))
    }
}

/// Result of [`Accelerator::execute`]: the selections the request left
/// open, resolved, plus the run output.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The dataflow that ran (the strategy's choice).
    pub dataflow: Dataflow,
    /// The fiber storage format the engine staged operands through.
    pub format: FiberFormat,
    /// The output matrix and execution report.
    pub output: RunOutput,
}

/// Common interface of all simulated accelerators.
pub trait Accelerator {
    /// Human-readable name used in reports ("Flexagon", "SIGMA-like", ...).
    fn name(&self) -> &str;

    /// The architectural configuration.
    fn config(&self) -> &AcceleratorConfig;

    /// The dataflows this accelerator can execute.
    fn supported_dataflows(&self) -> &[Dataflow];

    /// The accelerator's reusable execution-workspace pool, if it keeps
    /// one. Pooled workspaces eliminate per-execute scratch allocation;
    /// they never affect results.
    fn workspaces(&self) -> Option<&WorkspacePool> {
        None
    }

    /// The unified execution entry point: runs one SpMSpM operation as a
    /// fully-specified [`ExecutionRequest`].
    ///
    /// The request carries in one struct what used to be a 2x2 method grid
    /// (`run`/`run_strategy` x plain/`try_`), plus the format knob the
    /// grid would have doubled again:
    ///
    /// * **Validation** runs first when requested
    ///   ([`ExecutionRequest::validated`]) — the boundary for operands
    ///   whose bytes arrived from outside the process.
    /// * **Format** resolves next: [`FormatChoice::Config`] takes the
    ///   configured [`crate::EngineConfig::format`], [`FormatChoice::Auto`]
    ///   asks [`mapper::heuristic_format`] (lossless formats only), and
    ///   [`FormatChoice::Fixed`] pins a token. Lossless formats are
    ///   result-transparent — outputs and reports are byte-identical to
    ///   the SoA baseline.
    /// * **Strategy** dispatches last: [`MappingStrategy::Fixed`] runs
    ///   the pinned dataflow, [`MappingStrategy::Heuristic`] picks by
    ///   calibrated cost estimate and runs once, and
    ///   [`MappingStrategy::Oracle`] sweeps every supported dataflow and
    ///   keeps the fastest (the paper's evaluation methodology, at
    ///   `supported_dataflows().len()` times the simulation cost).
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] when a requested validation fails;
    /// [`CoreError::UnsupportedDataflow`] when a `Fixed` dataflow is not
    /// in [`Accelerator::supported_dataflows`]; [`CoreError::Format`] on
    /// dimension mismatch; [`CoreError::DeadlineExceeded`] when the
    /// request's [`CancelToken`] fires mid-execution; plus any engine
    /// error.
    fn execute(&self, req: ExecutionRequest<'_>) -> Result<Execution> {
        if let Some(validation) = &req.validation {
            validate_matrix(req.a, validation).map_err(CoreError::Validation)?;
            validate_matrix(req.b, validation).map_err(CoreError::Validation)?;
        }
        // `FLEXAGON_FORMAT` (lossless tokens only) rewrites the *default*
        // choice — the CI knob that routes every unpinned run through one
        // lossless tier suite-wide. An explicit `Auto`/`Fixed` on the
        // request is program intent and always wins over the environment.
        let format = match req.format {
            FormatChoice::Config => flexagon_sparse::format::env_format_override()
                .unwrap_or(self.config().engine.format),
            FormatChoice::Auto => mapper::heuristic_format(req.a),
            FormatChoice::Fixed(f) => f,
        };
        let cfg_owned;
        let cfg = if self.config().engine.format == format {
            self.config()
        } else {
            let mut c = *self.config();
            c.engine.format = format;
            cfg_owned = c;
            &cfg_owned
        };
        let run_one = |df: Dataflow| -> Result<RunOutput> {
            if !self.supported_dataflows().contains(&df) {
                return Err(CoreError::UnsupportedDataflow {
                    accelerator: self.name().to_owned(),
                    dataflow: df,
                });
            }
            let (c, report) =
                engine::execute(cfg, self.workspaces(), req.a, req.b, df, &req.cancel)?;
            Ok(RunOutput { c, report })
        };
        let (dataflow, output) = match req.strategy {
            MappingStrategy::Fixed(df) => (df, run_one(df)?),
            MappingStrategy::Heuristic => {
                let df = mapper::heuristic_among(cfg, req.a, req.b, self.supported_dataflows());
                (df, run_one(df)?)
            }
            MappingStrategy::Oracle => {
                let mut best: Option<(Dataflow, RunOutput)> = None;
                for &df in self.supported_dataflows() {
                    let out = run_one(df)?;
                    let better = match &best {
                        None => true,
                        Some((_, prev)) => out.report.total_cycles < prev.report.total_cycles,
                    };
                    if better {
                        best = Some((df, out));
                    }
                }
                best.ok_or_else(|| CoreError::UnsupportedDataflow {
                    accelerator: self.name().to_owned(),
                    dataflow: Dataflow::InnerProductM,
                })?
            }
        };
        Ok(Execution {
            dataflow,
            format,
            output,
        })
    }

    /// Runs `a x b` under `dataflow`.
    ///
    /// Thin wrapper over [`Accelerator::execute`]; prefer
    /// `execute(ExecutionRequest::new(a, b).dataflow(dataflow))`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedDataflow`] if the dataflow is not in
    /// [`Accelerator::supported_dataflows`]; [`CoreError::Format`] on
    /// dimension mismatch.
    #[deprecated(note = "use `execute(ExecutionRequest::new(a, b).dataflow(dataflow))`")]
    fn run(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        dataflow: Dataflow,
    ) -> Result<RunOutput> {
        self.execute(ExecutionRequest::new(a, b).dataflow(dataflow))
            .map(|ex| ex.output)
    }

    /// Runs `a x b` with the dataflow chosen by `strategy`, returning the
    /// selection together with its output.
    ///
    /// Thin wrapper over [`Accelerator::execute`]; prefer
    /// `execute(ExecutionRequest::new(a, b).strategy(strategy))`.
    ///
    /// # Errors
    ///
    /// Propagates execution errors; [`CoreError::UnsupportedDataflow`] when
    /// a `Fixed` dataflow is not supported.
    #[deprecated(note = "use `execute(ExecutionRequest::new(a, b).strategy(strategy))`")]
    fn run_strategy(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        strategy: MappingStrategy,
    ) -> Result<(Dataflow, RunOutput)> {
        self.execute(ExecutionRequest::new(a, b).strategy(strategy))
            .map(|ex| (ex.dataflow, ex.output))
    }

    /// Like `run`, but validates both operands under `validation` first.
    ///
    /// Thin wrapper over [`Accelerator::execute`]; prefer
    /// `execute(ExecutionRequest::new(a, b).dataflow(dataflow).validated(*validation))`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] when an operand fails validation, plus
    /// everything the fixed-dataflow execution can return.
    #[deprecated(
        note = "use `execute(ExecutionRequest::new(a, b).dataflow(dataflow).validated(validation))`"
    )]
    fn try_run(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        dataflow: Dataflow,
        validation: &ValidationConfig,
    ) -> Result<RunOutput> {
        self.execute(
            ExecutionRequest::new(a, b)
                .dataflow(dataflow)
                .validated(*validation),
        )
        .map(|ex| ex.output)
    }

    /// Like `run_strategy`, but validates both operands under `validation`
    /// first.
    ///
    /// Thin wrapper over [`Accelerator::execute`]; prefer
    /// `execute(ExecutionRequest::new(a, b).strategy(strategy).validated(*validation))`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] when an operand fails validation, plus
    /// everything the strategy execution can return.
    #[deprecated(
        note = "use `execute(ExecutionRequest::new(a, b).strategy(strategy).validated(validation))`"
    )]
    fn try_run_strategy(
        &self,
        a: &CompressedMatrix,
        b: &CompressedMatrix,
        strategy: MappingStrategy,
        validation: &ValidationConfig,
    ) -> Result<(Dataflow, RunOutput)> {
        self.execute(
            ExecutionRequest::new(a, b)
                .strategy(strategy)
                .validated(*validation),
        )
        .map(|ex| (ex.dataflow, ex.output))
    }

    /// Runs every supported dataflow and returns the fastest result.
    ///
    /// This is the oracle selection the paper uses to drive Flexagon's
    /// per-layer configuration (equivalent to [`Accelerator::execute`]
    /// with [`MappingStrategy::Oracle`], without reporting the winning
    /// dataflow).
    ///
    /// # Errors
    ///
    /// Propagates the first execution error encountered.
    fn run_best(&self, a: &CompressedMatrix, b: &CompressedMatrix) -> Result<RunOutput> {
        self.execute(ExecutionRequest::new(a, b).strategy(MappingStrategy::Oracle))
            .map(|ex| ex.output)
    }
}

macro_rules! fixed_accelerator {
    (
        $(#[$doc:meta])*
        $name:ident, $display:expr, $dataflows:expr, $memory:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            cfg: AcceleratorConfig,
            /// Reusable execution workspaces (cloning yields a fresh pool —
            /// pooled scratch is a pure cache).
            workspaces: WorkspacePool,
        }

        impl $name {
            /// Creates the accelerator from a base configuration; the
            /// memory hierarchy is adjusted to this design's sizing.
            pub fn new(mut cfg: AcceleratorConfig) -> Self {
                cfg.memory = $memory(cfg.memory);
                Self {
                    cfg,
                    workspaces: WorkspacePool::new(),
                }
            }

            /// Creates the accelerator with the paper's Table 5 parameters.
            pub fn with_defaults() -> Self {
                Self::new(AcceleratorConfig::table5())
            }
        }

        impl Accelerator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn config(&self) -> &AcceleratorConfig {
                &self.cfg
            }

            fn supported_dataflows(&self) -> &[Dataflow] {
                &$dataflows
            }

            fn workspaces(&self) -> Option<&WorkspacePool> {
                Some(&self.workspaces)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::with_defaults()
            }
        }
    };
}

fixed_accelerator!(
    /// The Flexagon accelerator: all six dataflows on one substrate, with
    /// the unified MRN and the full 256 KiB PSRAM.
    Flexagon,
    "Flexagon",
    Dataflow::ALL,
    |m| m
);

fixed_accelerator!(
    /// The SIGMA-like Inner-Product baseline: FAN reduction network, no
    /// merging capability, no PSRAM use.
    SigmaLike,
    "SIGMA-like",
    [Dataflow::InnerProductM, Dataflow::InnerProductN],
    |m: flexagon_mem::MemoryConfig| {
        let _ = m;
        flexagon_mem::MemoryConfig::table5_no_psram()
    }
);

fixed_accelerator!(
    /// The SpArch-like Outer-Product baseline: merger tree plus a full
    /// 256 KiB PSRAM for its worst-case psum volume.
    SparchLike,
    "Sparch-like",
    [Dataflow::OuterProductM, Dataflow::OuterProductN],
    |m| m
);

fixed_accelerator!(
    /// The GAMMA-like Gustavson baseline: merger tree, fiber-reuse cache,
    /// and a half-sized (128 KiB) PSRAM per Table 8.
    GammaLike,
    "GAMMA-like",
    [Dataflow::GustavsonM, Dataflow::GustavsonN],
    |mut m: flexagon_mem::MemoryConfig| {
        m.psram.capacity_bytes /= 2;
        m
    }
);

impl Flexagon {
    /// Runs `a x b` with the dataflow chosen by the heuristic mapper
    /// (no oracle sweep); shorthand for [`Accelerator::execute`] with
    /// [`MappingStrategy::Heuristic`] (the request default).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_mapped(&self, a: &CompressedMatrix, b: &CompressedMatrix) -> Result<RunOutput> {
        self.execute(ExecutionRequest::new(a, b))
            .map(|ex| ex.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataflowClass;

    #[test]
    fn supported_dataflows_match_table1() {
        assert_eq!(Flexagon::with_defaults().supported_dataflows().len(), 6);
        for d in SigmaLike::with_defaults().supported_dataflows() {
            assert_eq!(d.class(), DataflowClass::InnerProduct);
        }
        for d in SparchLike::with_defaults().supported_dataflows() {
            assert_eq!(d.class(), DataflowClass::OuterProduct);
        }
        for d in GammaLike::with_defaults().supported_dataflows() {
            assert_eq!(d.class(), DataflowClass::Gustavson);
        }
    }

    #[test]
    fn gamma_like_has_half_psram() {
        let g = GammaLike::with_defaults();
        let f = Flexagon::with_defaults();
        assert_eq!(
            g.config().memory.psram.capacity_bytes * 2,
            f.config().memory.psram.capacity_bytes
        );
    }

    #[test]
    #[allow(deprecated)] // wrapper coverage: the deprecated grid must stay correct
    fn baselines_reject_foreign_dataflows() {
        let sigma = SigmaLike::with_defaults();
        let a = CompressedMatrix::zero(2, 2, flexagon_sparse::MajorOrder::Row);
        let b = CompressedMatrix::zero(2, 2, flexagon_sparse::MajorOrder::Row);
        let err = sigma.run(&a, &b, Dataflow::GustavsonM).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedDataflow { .. }));
    }

    #[test]
    #[allow(deprecated)] // wrapper coverage: the deprecated grid must stay correct
    fn fixed_strategy_matches_direct_run() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let a =
            flexagon_sparse::gen::random(24, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(24, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        for df in Dataflow::ALL {
            let (chosen, out) = f.run_strategy(&a, &b, MappingStrategy::Fixed(df)).unwrap();
            let direct = f.run(&a, &b, df).unwrap();
            assert_eq!(chosen, df);
            assert_eq!(out.c, direct.c);
            assert_eq!(out.report.total_cycles, direct.report.total_cycles);
        }
    }

    #[test]
    #[allow(deprecated)] // wrapper coverage: the deprecated grid must stay correct
    fn oracle_strategy_matches_run_best() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let a =
            flexagon_sparse::gen::random(24, 32, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(32, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        let (df, out) = f.run_strategy(&a, &b, MappingStrategy::Oracle).unwrap();
        let best = f.run_best(&a, &b).unwrap();
        assert_eq!(out.report.total_cycles, best.report.total_cycles);
        assert_eq!(df, out.report.dataflow);
    }

    #[test]
    #[allow(deprecated)] // wrapper coverage: the deprecated grid must stay correct
    fn heuristic_strategy_picks_a_supported_dataflow() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let a =
            flexagon_sparse::gen::random(24, 24, 0.4, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(24, 24, 0.4, flexagon_sparse::MajorOrder::Row, &mut rng);
        let sigma = SigmaLike::with_defaults();
        let (df, out) = sigma
            .run_strategy(&a, &b, MappingStrategy::Heuristic)
            .unwrap();
        assert!(sigma.supported_dataflows().contains(&df));
        assert_eq!(out.report.dataflow, df);
    }

    #[test]
    #[allow(deprecated)] // wrapper coverage: the deprecated grid must stay correct
    fn try_run_rejects_invalid_operands_and_matches_run_on_valid() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(14);
        let a =
            flexagon_sparse::gen::random(16, 16, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(16, 16, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        let cfg = flexagon_sparse::ValidationConfig::untrusted();
        let out = f.try_run(&a, &b, Dataflow::GustavsonM, &cfg).unwrap();
        assert_eq!(out.c, f.run(&a, &b, Dataflow::GustavsonM).unwrap().c);

        // An Inf operand passes `run` but is refused at the try_ boundary.
        let poisoned = CompressedMatrix::from_triplets(
            16,
            16,
            &[(0, 0, f32::INFINITY)],
            flexagon_sparse::MajorOrder::Row,
        )
        .unwrap();
        let err = f
            .try_run(&a, &poisoned, Dataflow::GustavsonM, &cfg)
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
        let err = f
            .try_run_strategy(&poisoned, &b, MappingStrategy::Heuristic, &cfg)
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
    }

    #[test]
    fn execute_lossless_formats_are_result_transparent() {
        use flexagon_sparse::FiberFormat;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let a =
            flexagon_sparse::gen::random(32, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(24, 32, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        for df in [Dataflow::InnerProductM, Dataflow::GustavsonN] {
            // The baseline pins SoA explicitly so the differential holds
            // even when `FLEXAGON_FORMAT` redirects the config default.
            let base = f
                .execute(
                    ExecutionRequest::new(&a, &b)
                        .dataflow(df)
                        .format(FiberFormat::Soa),
                )
                .unwrap();
            assert_eq!(base.format, FiberFormat::Soa);
            for fmt in [FiberFormat::Bcsr4, FiberFormat::Bcsr8, FiberFormat::Ell] {
                let ex = f
                    .execute(ExecutionRequest::new(&a, &b).dataflow(df).format(fmt))
                    .unwrap();
                assert_eq!(ex.format, fmt);
                assert_eq!(ex.dataflow, df);
                assert_eq!(ex.output.c, base.output.c, "{fmt} output");
                assert_eq!(
                    format!("{:?}", ex.output.report),
                    format!("{:?}", base.output.report),
                    "{fmt} report"
                );
            }
        }
    }

    #[test]
    fn unarmed_cancellation_is_result_transparent() {
        // The tentpole invariant: threading the cancellation layer through
        // every dataflow must not change a single byte of output or report
        // when no deadline is armed — goldens stay identical.
        use rand::SeedableRng;
        use std::time::{Duration, Instant};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let a =
            flexagon_sparse::gen::random(32, 28, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(28, 32, 0.25, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        for df in Dataflow::ALL {
            let base = f
                .execute(ExecutionRequest::new(&a, &b).dataflow(df))
                .unwrap();
            // Explicit unarmed token and a far-future armed one: both must
            // reproduce the default run bit for bit.
            let tokens = [
                CancelToken::never(),
                CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600)),
            ];
            for token in tokens {
                let ex = f
                    .execute(
                        ExecutionRequest::new(&a, &b)
                            .dataflow(df)
                            .cancel_token(token),
                    )
                    .unwrap();
                assert_eq!(ex.output.c, base.output.c, "{df} output");
                assert_eq!(
                    format!("{:?}", ex.output.report),
                    format!("{:?}", base.output.report),
                    "{df} report"
                );
            }
        }
    }

    #[test]
    fn fired_token_surfaces_deadline_exceeded() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(24);
        let a =
            flexagon_sparse::gen::random(24, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let b =
            flexagon_sparse::gen::random(24, 24, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        let fired = CancelToken::manual();
        fired.cancel();
        for strategy in [
            MappingStrategy::Heuristic,
            MappingStrategy::Oracle,
            MappingStrategy::Fixed(Dataflow::OuterProductN),
        ] {
            let err = f
                .execute(
                    ExecutionRequest::new(&a, &b)
                        .strategy(strategy)
                        .cancel_token(fired.clone()),
                )
                .unwrap_err();
            assert!(matches!(err, CoreError::DeadlineExceeded), "{strategy:?}");
        }
        // An already-expired deadline behaves the same.
        let err = f
            .execute(ExecutionRequest::new(&a, &b).deadline_in(std::time::Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, CoreError::DeadlineExceeded));
    }

    #[test]
    fn execute_auto_format_picks_lossless_only() {
        use crate::FormatChoice;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(22);
        // Dense-clustered A: the auto heuristic should leave SoA, and must
        // never pick the lossy format on its own.
        let a = flexagon_sparse::gen::block_sparse(
            64,
            64,
            8,
            0.8,
            flexagon_sparse::MajorOrder::Row,
            &mut rng,
        );
        let b =
            flexagon_sparse::gen::random(64, 32, 0.3, flexagon_sparse::MajorOrder::Row, &mut rng);
        let f = Flexagon::with_defaults();
        let ex = f
            .execute(ExecutionRequest::new(&a, &b).format_choice(FormatChoice::Auto))
            .unwrap();
        assert!(ex.format.is_lossless());
        assert_eq!(ex.format, crate::mapper::heuristic_format(&a));
        // The resolved choice is result-transparent against the baseline.
        let base = f
            .execute(ExecutionRequest::new(&a, &b).dataflow(ex.dataflow))
            .unwrap();
        assert_eq!(ex.output.c, base.output.c);
    }

    #[test]
    fn execute_validates_when_asked() {
        let f = Flexagon::with_defaults();
        let good =
            CompressedMatrix::from_triplets(2, 2, &[(0, 0, 1.0)], flexagon_sparse::MajorOrder::Row)
                .unwrap();
        let poisoned = CompressedMatrix::from_triplets(
            2,
            2,
            &[(0, 0, f32::NAN)],
            flexagon_sparse::MajorOrder::Row,
        )
        .unwrap();
        // Without validation the NaN operand executes; with the untrusted
        // policy it is refused before the engine sees it.
        f.execute(ExecutionRequest::new(&good, &poisoned)).unwrap();
        let err = f
            .execute(
                ExecutionRequest::new(&good, &poisoned)
                    .validated(flexagon_sparse::ValidationConfig::untrusted()),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Flexagon::with_defaults().name(), "Flexagon");
        assert_eq!(SigmaLike::with_defaults().name(), "SIGMA-like");
        assert_eq!(SparchLike::with_defaults().name(), "Sparch-like");
        assert_eq!(GammaLike::with_defaults().name(), "GAMMA-like");
    }
}
