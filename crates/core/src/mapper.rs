//! Dataflow analysis — the paper's offline phase 1.
//!
//! "A mapper/compiler examines the features of the SpMSpM operation to be
//! executed (i.e., matrix dimensions and sparsity patterns) and decides the
//! dataflow (between the six available) that best matches the operation."
//! The paper leaves the tool as future work and evaluates Flexagon with
//! per-layer best dataflows; we provide both that oracle and a closed-form
//! cost-model [`heuristic`] as the documented extension.

use crate::{Accelerator, AcceleratorConfig, Dataflow, Result, RunOutput};
use flexagon_sim::Cycle;
use flexagon_sparse::{stats::SpGemmWork, CompressedMatrix, ELEMENT_BYTES};

/// Oracle selection: runs every dataflow the accelerator supports and
/// returns the fastest, together with its output.
///
/// This matches the paper's evaluation methodology ("by properly
/// configuring the control logic of Flexagon according to the most suitable
/// dataflow for each layer").
///
/// # Errors
///
/// Propagates the first execution error.
pub fn oracle<A: Accelerator + ?Sized>(
    accel: &A,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
) -> Result<(Dataflow, RunOutput)> {
    let mut best: Option<(Dataflow, RunOutput)> = None;
    for &df in accel.supported_dataflows() {
        let out = accel.run(a, b, df)?;
        let better = match &best {
            None => true,
            Some((_, prev)) => out.report.total_cycles < prev.report.total_cycles,
        };
        if better {
            best = Some((df, out));
        }
    }
    Ok(best.expect("accelerators always support at least one dataflow"))
}

/// Closed-form cycle estimates used by the heuristic mapper.
///
/// The estimates model only the first-order bottlenecks that separate the
/// dataflows:
///
/// * **IP** pays a full re-stream of B per stationary tile
///   (`ceil(nnz_A / multipliers)` tiles).
/// * **OP** reads B once but moves every product through the PSRAM twice,
///   spilling to DRAM beyond its capacity.
/// * **Gustavson** moves every product through the distribution network
///   once, with B re-fetches served by the cache when B fits and by DRAM
///   when it does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEstimates {
    /// Estimated Inner-Product cycles.
    pub inner_product: Cycle,
    /// Estimated Outer-Product cycles.
    pub outer_product: Cycle,
    /// Estimated Gustavson cycles.
    pub gustavson: Cycle,
}

impl CostEstimates {
    /// Computes the estimates for `a x b` on `cfg`.
    pub fn of(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) -> Self {
        let work = SpGemmWork::of(a, b);
        let dn = cfg.dn_bandwidth.max(1);
        let merge = cfg.merge_bandwidth.max(1);
        let mults = cfg.multipliers as u64;
        let dram_bpc = cfg.memory.dram.bytes_per_cycle.max(1);
        let cache_bytes = cfg.memory.cache.capacity_bytes;
        let psram_elems = cfg.memory.psram.capacity_bytes / ELEMENT_BYTES;
        let b_bytes = work.nnz_b * ELEMENT_BYTES;

        // Inner Product: tiles x stream-all-of-B, DRAM-bound when B does
        // not fit in the cache.
        let tiles = work.nnz_a.div_ceil(mults).max(1);
        let stream_onchip = tiles * work.nnz_b / dn;
        let reload_bytes = if b_bytes > cache_bytes {
            tiles * b_bytes
        } else {
            b_bytes
        };
        let inner_product = stream_onchip.max(reload_bytes / dram_bpc) + work.products / mults;

        // Outer Product: B once, every product written+read on-chip, spilled
        // volume through DRAM.
        let spilled = work.products.saturating_sub(psram_elems);
        let op_onchip = work.nnz_b / dn + 2 * work.products / merge;
        let op_offchip = (b_bytes + 2 * spilled * ELEMENT_BYTES) / dram_bpc;
        let outer_product = op_onchip.max(op_offchip);

        // Gustavson: every product delivered once; B fiber fetches hit the
        // cache when B fits, otherwise each fetch goes off-chip.
        let gust_onchip = (work.products / dn).max(work.products / merge);
        let fetch_bytes = if b_bytes <= cache_bytes {
            b_bytes
        } else {
            work.products * ELEMENT_BYTES
        };
        let gustavson = gust_onchip.max(fetch_bytes / dram_bpc);

        Self {
            inner_product,
            outer_product,
            gustavson,
        }
    }

    /// The M-stationary dataflow with the lowest estimate (ties resolved in
    /// IP, OP, Gust order).
    pub fn best(&self) -> Dataflow {
        let mut best = (self.inner_product, Dataflow::InnerProductM);
        if self.outer_product < best.0 {
            best = (self.outer_product, Dataflow::OuterProductM);
        }
        if self.gustavson < best.0 {
            best = (self.gustavson, Dataflow::GustavsonM);
        }
        best.1
    }
}

/// Heuristic mapper: picks a dataflow from matrix features alone, without
/// running the simulator.
pub fn heuristic(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) -> Dataflow {
    CostEstimates::of(cfg, a, b).best()
}

/// All six dataflows ranked by estimated cost, cheapest first.
///
/// M-stationary variants use the estimates directly; N-stationary variants
/// are the same class with the operand roles mirrored (B becomes the
/// stationary tensor), so their estimates come from the transposed problem.
pub fn ranked_dataflows(
    cfg: &AcceleratorConfig,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
) -> Vec<(Dataflow, Cycle)> {
    let m_est = CostEstimates::of(cfg, a, b);
    let bt = b.reinterpret_transposed();
    let at = a.reinterpret_transposed();
    let n_est = CostEstimates::of(cfg, &bt, &at);
    let mut ranked = vec![
        (Dataflow::InnerProductM, m_est.inner_product),
        (Dataflow::OuterProductM, m_est.outer_product),
        (Dataflow::GustavsonM, m_est.gustavson),
        (Dataflow::InnerProductN, n_est.inner_product),
        (Dataflow::OuterProductN, n_est.outer_product),
        (Dataflow::GustavsonN, n_est.gustavson),
    ];
    ranked.sort_by_key(|&(_, cycles)| cycles);
    ranked
}

/// Plans a whole model: one dataflow per layer such that (when possible)
/// every inter-layer transition is conversion-free (Table 4), preferring
/// each layer's cheapest dataflows.
///
/// This is the "best sequence of dataflows" decision the paper assigns to
/// the mapper/compiler (§3.3). When no conversion-free chain exists under
/// the given preferences, the planner falls back to each layer's
/// locally-cheapest dataflow (explicit conversions then show up in the
/// execution reports).
///
/// `layers` supplies `(A, B)` per layer in execution order.
pub fn plan_model(
    cfg: &AcceleratorConfig,
    layers: &[(&CompressedMatrix, &CompressedMatrix)],
) -> Vec<Dataflow> {
    let preferences: Vec<Vec<Dataflow>> = layers
        .iter()
        .map(|(a, b)| {
            ranked_dataflows(cfg, a, b)
                .into_iter()
                .map(|(d, _)| d)
                .collect()
        })
        .collect();
    crate::transitions::plan_chain(&preferences).unwrap_or_else(|| {
        preferences
            .iter()
            .map(|p| *p.first().expect("six ranked dataflows per layer"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::{gen, MajorOrder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::table5()
    }

    #[test]
    fn heuristic_prefers_gustavson_for_small_cached_b() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Small B (fits in cache easily), plenty of A rows.
        let a = gen::random(256, 128, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(128, 64, 0.3, MajorOrder::Row, &mut rng);
        assert_eq!(heuristic(&cfg(), &a, &b), Dataflow::GustavsonM);
    }

    #[test]
    fn heuristic_avoids_inner_product_when_many_tiles() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // nnz_A >> multipliers makes IP re-stream B many times.
        let a = gen::random(512, 512, 0.5, MajorOrder::Row, &mut rng);
        let b = gen::random(512, 512, 0.5, MajorOrder::Row, &mut rng);
        let est = CostEstimates::of(&cfg(), &a, &b);
        assert!(est.inner_product > est.gustavson);
        assert!(est.inner_product > est.outer_product);
    }

    #[test]
    fn heuristic_prefers_inner_product_for_tiny_a() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // A fits in one tile: B is streamed exactly once with no merge work.
        let a = gen::random_with_nnz(8, 64, 40, MajorOrder::Row, &mut rng);
        let b = gen::random(64, 256, 0.4, MajorOrder::Row, &mut rng);
        let est = CostEstimates::of(&cfg(), &a, &b);
        assert!(est.inner_product <= est.outer_product);
    }

    #[test]
    fn estimates_are_monotone_in_products() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = gen::random(64, 64, 0.2, MajorOrder::Row, &mut rng);
        let b_sparse = gen::random(64, 64, 0.1, MajorOrder::Row, &mut rng);
        let b_dense = gen::random(64, 64, 0.8, MajorOrder::Row, &mut rng);
        let sparse = CostEstimates::of(&cfg(), &a, &b_sparse);
        let dense = CostEstimates::of(&cfg(), &a, &b_dense);
        assert!(dense.gustavson >= sparse.gustavson);
        assert!(dense.outer_product >= sparse.outer_product);
    }

    #[test]
    fn best_breaks_ties_in_declared_order() {
        let est = CostEstimates {
            inner_product: 5,
            outer_product: 5,
            gustavson: 5,
        };
        assert_eq!(est.best(), Dataflow::InnerProductM);
    }

    #[test]
    fn ranked_covers_all_six_and_sorts() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = gen::random(32, 32, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(32, 32, 0.3, MajorOrder::Row, &mut rng);
        let ranked = ranked_dataflows(&cfg(), &a, &b);
        assert_eq!(ranked.len(), 6);
        let mut seen: Vec<Dataflow> = ranked.iter().map(|&(d, _)| d).collect();
        seen.sort_by_key(|d| d.loop_order());
        seen.dedup();
        assert_eq!(seen.len(), 6, "all variants ranked exactly once");
        assert!(
            ranked.windows(2).all(|w| w[0].1 <= w[1].1),
            "sorted by cost"
        );
    }

    #[test]
    fn plan_model_produces_free_chain_when_possible() {
        use crate::transitions;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = gen::random(24, 32, 0.4, MajorOrder::Row, &mut rng);
        let w1 = gen::random(32, 40, 0.3, MajorOrder::Row, &mut rng);
        let c1 = flexagon_sparse::reference::spgemm(&x, &w1).unwrap();
        let w2 = gen::random(40, 16, 0.3, MajorOrder::Row, &mut rng);
        let plan = plan_model(&cfg(), &[(&x, &w1), (&c1, &w2)]);
        assert_eq!(plan.len(), 2);
        assert!(
            transitions::is_free(plan[0], plan[1]),
            "planner must chain {} -> {} for free",
            plan[0],
            plan[1]
        );
    }

    #[test]
    fn plan_model_empty_is_empty() {
        assert!(plan_model(&cfg(), &[]).is_empty());
    }
}
