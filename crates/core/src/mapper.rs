//! Dataflow selection — the paper's offline phase 1.
//!
//! "A mapper/compiler examines the features of the SpMSpM operation to be
//! executed (i.e., matrix dimensions and sparsity patterns) and decides the
//! dataflow (between the six available) that best matches the operation."
//! The paper leaves the tool as future work and evaluates Flexagon with
//! per-layer best dataflows; this module provides both that oracle and a
//! calibrated closed-form cost model behind a first-class
//! [`MappingStrategy`]:
//!
//! * [`MappingStrategy::Oracle`] — run every candidate dataflow, keep the
//!   fastest. Exact, but pays a full sweep per operation.
//! * [`MappingStrategy::Heuristic`] — pick from matrix features alone via
//!   [`CostEstimates`], whose closed-form terms are corrected by the
//!   [`MapperCalibration`] fitted from measured execution reports (the
//!   `mapper_calibrate` harness binary re-derives the coefficients; the
//!   `mapper_accuracy` binary audits the choices against the oracle).
//! * [`MappingStrategy::Fixed`] — pin one dataflow, bypassing selection.
//!
//! Since the format-adaptive storage tier landed, the mapper's decision is
//! the *pair* `(dataflow, format)`: [`FormatChoice`] names how the fiber
//! storage format is picked (config default, per-operand heuristic, or
//! pinned token), [`FormatSelection`] holds the shape thresholds the
//! heuristic reads from [`FormatStats`], and
//! [`MappingStrategy::parse_spec`] parses the compound
//! `strategy@format` client token.

use crate::{
    Accelerator, AcceleratorConfig, Dataflow, DataflowClass, ExecutionRequest, Result, RunOutput,
};
use flexagon_sparse::{
    stats::SpGemmWork, CompressedMatrix, FiberFormat, FormatStats, ELEMENT_BYTES,
};
use serde::{Deserialize, Serialize};

/// How an accelerator chooses the dataflow for one SpMSpM operation.
///
/// Threaded through the bench runner, `spgemm_cli` and the per-layer DNN
/// flow; the oracle remains the audit reference, the heuristic is the fast
/// production path (no simulation sweep), and `Fixed` pins a dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingStrategy {
    /// Run every supported dataflow and keep the fastest (the paper's
    /// evaluation methodology; 3–6× the simulation cost per operation).
    Oracle,
    /// Select via the calibrated closed-form cost model, then run once.
    Heuristic,
    /// Always run the given dataflow.
    Fixed(Dataflow),
}

impl std::fmt::Display for MappingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Oracle => write!(f, "oracle"),
            Self::Heuristic => write!(f, "heuristic"),
            Self::Fixed(df) => write!(f, "fixed({})", df.token()),
        }
    }
}

impl std::str::FromStr for MappingStrategy {
    type Err = String;

    /// Parses `"oracle"` (alias `"auto"`), `"heuristic"`, or a dataflow
    /// token (`"ip-m"`, `"op-n"`, `"gust-m"`, ...) meaning `Fixed`.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "oracle" | "auto" => Ok(Self::Oracle),
            "heuristic" => Ok(Self::Heuristic),
            other => Dataflow::from_token(other).map(Self::Fixed).ok_or_else(|| {
                format!("unknown mapping strategy '{other}' (expected oracle, heuristic, or a dataflow token like ip-m)")
            }),
        }
    }
}

impl MappingStrategy {
    /// Parses a compound `strategy@format` spec — the client-facing form
    /// that pins a storage format next to the dataflow choice, e.g.
    /// `heuristic@bcsr4`, `gust-m@ell`, or a bare `oracle` (format
    /// defaulting to [`FormatChoice::Config`]).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unknown strategy or format
    /// token.
    pub fn parse_spec(spec: &str) -> std::result::Result<(Self, FormatChoice), String> {
        match spec.split_once('@') {
            None => Ok((spec.parse()?, FormatChoice::Config)),
            Some((strategy, format)) => Ok((strategy.parse()?, format.parse()?)),
        }
    }
}

/// How the fiber storage format is chosen for one execution — the format
/// axis of the mapper's `(dataflow, format)` decision, carried alongside a
/// [`MappingStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FormatChoice {
    /// Use the format on the accelerator's [`crate::EngineConfig`] (the
    /// SoA baseline unless the config says otherwise). The default.
    #[default]
    Config,
    /// Pick per operand via [`heuristic_format`] (lossless formats only).
    Auto,
    /// Pin the given format, exactly like pinning a dataflow.
    Fixed(FiberFormat),
}

impl std::fmt::Display for FormatChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config => write!(f, "config"),
            Self::Auto => write!(f, "auto"),
            Self::Fixed(fmt) => write!(f, "{}", fmt.token()),
        }
    }
}

impl std::str::FromStr for FormatChoice {
    type Err = String;

    /// Parses `"config"`, `"auto"`, or a [`FiberFormat`] token (`"soa"`,
    /// `"bcsr4"`, `"ell"`, ...) meaning `Fixed`.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "config" => Ok(Self::Config),
            "auto" => Ok(Self::Auto),
            other => other
                .parse::<FiberFormat>()
                .map(Self::Fixed)
                .map_err(|_| format!(
                    "unknown format choice '{other}' (expected config, auto, or a format token like bcsr4)"
                )),
        }
    }
}

/// Shape thresholds for [`choose_format`] — the format-tier analogue of
/// [`MapperCalibration`], kept as its own struct so the calibration's
/// serde shape (embedded in `MAPPER_accuracy.json`) stays frozen.
///
/// The defaults are the exact byte crossovers of the encoded layouts
/// (see `FormattedMatrix::footprint_bytes`): a width-`w` blocked fiber
/// costs `(5 + 4w) / (w · fill_w)` bytes per element against SoA's 8, so
/// 4-wide blocks pay off past `fill4 = 21/32` (and 8-wide past
/// `37/64`, the same knob rescaled by `37/42`); the ELL grid only pays
/// off when rows are uniform (low CV) *and* the padding bytes stay under
/// the pointer-array savings. The `format_kernels` bench group measures
/// the kernel-side win at these same fills (the masked dot amortizes one
/// base compare over `fill x width` multiply-adds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FormatSelection {
    /// Minimum 4-wide block fill ([`FormatStats::block_fill4`]) for the
    /// blocked format to win.
    pub min_block_fill: f64,
    /// Maximum row-length coefficient of variation
    /// ([`FormatStats::row_len_cv`]) for the ELL grid.
    pub max_row_cv: f64,
    /// Maximum ELL padding ratio ([`FormatStats::ell_waste`]).
    pub max_ell_waste: f64,
}

impl FormatSelection {
    /// Default for [`FormatSelection::min_block_fill`]: the byte
    /// crossover of the 4-wide blocked layout, `(5 + 16) / 32`.
    pub const DEFAULT_MIN_BLOCK_FILL: f64 = 21.0 / 32.0;
    /// Default for [`FormatSelection::max_row_cv`].
    pub const DEFAULT_MAX_ROW_CV: f64 = 0.25;
    /// Default for [`FormatSelection::max_ell_waste`].
    pub const DEFAULT_MAX_ELL_WASTE: f64 = 1.0;
}

impl Default for FormatSelection {
    fn default() -> Self {
        Self {
            min_block_fill: Self::DEFAULT_MIN_BLOCK_FILL,
            max_row_cv: Self::DEFAULT_MAX_ROW_CV,
            max_ell_waste: Self::DEFAULT_MAX_ELL_WASTE,
        }
    }
}

/// Picks a *lossless* storage format from a matrix's shape statistics:
/// dense-clustered coordinates (high block fill) take the blocked format,
/// uniform rows within the padding budget take ELL, everything else stays
/// on the SoA baseline. Quantization is never selected implicitly — it is
/// lossy and strictly opt-in.
pub fn choose_format(stats: &FormatStats, sel: &FormatSelection) -> FiberFormat {
    if stats.nnz == 0 {
        return FiberFormat::Soa;
    }
    // Blocked vs SoA, per width: (5 + 4w)/(w · fill_w) bytes per element
    // against 8. The knob is expressed at width 4; the width-8 gate is the
    // same knob rescaled by the exact byte ratio 37/42 between the two
    // widths' crossovers (37/64 = 21/32 · 37/42).
    let beats_soa4 = stats.block_fill4 >= sel.min_block_fill;
    let beats_soa8 = stats.block_fill8 >= sel.min_block_fill * (37.0 / 42.0);
    // Between the widths, 8-wide stores fewer bytes iff
    // 37/(8·fill8) < 21/(4·fill4), i.e. 42·fill8 > 37·fill4.
    if beats_soa8 && (!beats_soa4 || 42.0 * stats.block_fill8 >= 37.0 * stats.block_fill4) {
        return FiberFormat::Bcsr8;
    }
    if beats_soa4 {
        return FiberFormat::Bcsr4;
    }
    // The ELL grid: uniform rows (low CV), padding within the configured
    // budget, and — the byte condition — padding cells cheaper than the
    // pointer array the grid replaces (8·waste·nnz ≤ 4·fibers + 8).
    if stats.row_len_cv <= sel.max_row_cv
        && stats.ell_waste <= sel.max_ell_waste
        && 8.0 * stats.ell_waste * stats.nnz as f64 <= 4.0 * stats.fibers as f64 + 8.0
    {
        return FiberFormat::Ell;
    }
    FiberFormat::Soa
}

/// The per-operand format heuristic behind [`FormatChoice::Auto`]:
/// [`choose_format`] over the stationary operand's [`FormatStats`] with
/// the default [`FormatSelection`] thresholds.
pub fn heuristic_format(a: &CompressedMatrix) -> FiberFormat {
    choose_format(&FormatStats::of(a), &FormatSelection::default())
}

/// Fitted linear correction for one dataflow class's closed-form estimate:
///
/// `cycles ≈ scale · raw_estimate + per_nnz_a · nnz(A) + per_row · M +
/// per_nnz_b · nnz(B)`
///
/// The raw closed-form terms model bandwidth-bound streaming; the fitted
/// per-element/per-row terms absorb the constant overheads the hand
/// model ignores (per-fiber setup, intersection scheduling, merge
/// bookkeeping), which decide the near-tie cases — e.g. the MobileBERT
/// layers, whose tiny `N` makes Gustavson's per-A-element fiber machinery
/// cost as much as its streaming. `scale = 1` with zero overheads is the
/// identity (the hand-written model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassCalibration {
    /// Multiplicative coefficient on the raw closed-form estimate.
    pub scale: f64,
    /// Cycles charged per non-zero of the stationary operand A.
    pub per_nnz_a: f64,
    /// Cycles charged per stationary-dimension row (M).
    pub per_row: f64,
    /// Cycles charged per non-zero of the streaming operand B.
    pub per_nnz_b: f64,
}

impl ClassCalibration {
    /// The identity correction.
    pub const IDENTITY: Self = Self {
        scale: 1.0,
        per_nnz_a: 0.0,
        per_row: 0.0,
        per_nnz_b: 0.0,
    };

    /// Applies the correction to a raw estimate given the problem's
    /// structural features.
    pub fn apply(&self, raw: f64, nnz_a: u64, rows: u32, nnz_b: u64) -> f64 {
        self.scale * raw
            + self.per_nnz_a * nnz_a as f64
            + self.per_row * rows as f64
            + self.per_nnz_b * nnz_b as f64
    }
}

/// Per-class corrections for the heuristic mapper's cost model, fitted from
/// measured per-dataflow execution reports by the `mapper_calibrate` harness
/// binary (a log-log regression seed plus a deterministic coordinate search
/// maximizing top-1 oracle agreement, over the DNN suite and the generator
/// scenario sweep).
///
/// [`MapperCalibration::calibrated`] is the checked-in fit and the default
/// on [`crate::EngineConfig`]; [`MapperCalibration::IDENTITY`] recovers the
/// uncalibrated hand-written model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperCalibration {
    /// Correction for the Inner-Product estimate.
    pub inner_product: ClassCalibration,
    /// Correction for the Outer-Product estimate.
    pub outer_product: ClassCalibration,
    /// Correction for the Gustavson estimate.
    pub gustavson: ClassCalibration,
}

impl MapperCalibration {
    /// The uncalibrated model (all corrections identity).
    pub const IDENTITY: Self = Self {
        inner_product: ClassCalibration::IDENTITY,
        outer_product: ClassCalibration::IDENTITY,
        gustavson: ClassCalibration::IDENTITY,
    };

    /// The checked-in fit produced by `mapper_calibrate` over the Table 5
    /// configuration (DNN suite + generator scenario sweep; see
    /// `MAPPER_accuracy.json` for the audited agreement/regret it
    /// achieves). Notable corrections: the raw Outer-Product estimate is a
    /// systematic under-estimate (its merge traffic hides PSRAM block
    /// bookkeeping), and Gustavson pays real per-A-element and per-row
    /// fiber overheads that decide the tiny-`N` NLP layers.
    pub fn calibrated() -> Self {
        Self {
            inner_product: ClassCalibration {
                scale: 1.0,
                per_nnz_a: 0.0475,
                per_row: 0.1,
                per_nnz_b: 0.0,
            },
            outer_product: ClassCalibration {
                scale: 6.0,
                per_nnz_a: 0.0,
                per_row: 0.0,
                per_nnz_b: 0.0,
            },
            gustavson: ClassCalibration {
                scale: 1.0,
                per_nnz_a: 0.5,
                per_row: 8.005,
                per_nnz_b: 0.0,
            },
        }
    }

    /// The correction for one dataflow class.
    pub fn of_class(&self, class: DataflowClass) -> ClassCalibration {
        match class {
            DataflowClass::InnerProduct => self.inner_product,
            DataflowClass::OuterProduct => self.outer_product,
            DataflowClass::Gustavson => self.gustavson,
        }
    }
}

impl Default for MapperCalibration {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Oracle selection: runs every dataflow the accelerator supports and
/// returns the fastest, together with its output.
///
/// This matches the paper's evaluation methodology ("by properly
/// configuring the control logic of Flexagon according to the most suitable
/// dataflow for each layer").
///
/// # Errors
///
/// Propagates the first execution error.
pub fn oracle<A: Accelerator + ?Sized>(
    accel: &A,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
) -> Result<(Dataflow, RunOutput)> {
    accel
        .execute(ExecutionRequest::new(a, b).strategy(MappingStrategy::Oracle))
        .map(|ex| (ex.dataflow, ex.output))
}

/// Closed-form cycle estimates used by the heuristic mapper.
///
/// The raw estimates model only the first-order bottlenecks that separate
/// the dataflows:
///
/// * **IP** pays a full re-stream of B per stationary tile
///   (`ceil(nnz_A / multipliers)` tiles).
/// * **OP** reads B once but moves every product through the PSRAM twice,
///   spilling to DRAM beyond its capacity.
/// * **Gustavson** moves every product through the distribution network
///   once, with B re-fetches served by the cache when B fits and by DRAM
///   when it does not.
///
/// [`CostEstimates::of`] additionally applies the
/// [`MapperCalibration`] carried on the configuration's
/// [`crate::EngineConfig`]; [`CostEstimates::raw`] skips it (the
/// calibration harness fits against the raw values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimates {
    /// Estimated Inner-Product cycles.
    pub inner_product: f64,
    /// Estimated Outer-Product cycles.
    pub outer_product: f64,
    /// Estimated Gustavson cycles.
    pub gustavson: f64,
}

/// The raw closed-form estimates together with the structural features the
/// calibration's overhead terms are charged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFeatures {
    /// Uncalibrated closed-form estimates.
    pub raw: CostEstimates,
    /// Non-zeros of the stationary operand A.
    pub nnz_a: u64,
    /// Stationary-dimension rows (M).
    pub rows: u32,
    /// Non-zeros of the streaming operand B.
    pub nnz_b: u64,
}

impl CostFeatures {
    /// Computes the raw terms and features for `a x b` on `cfg`.
    pub fn of(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) -> Self {
        let work = SpGemmWork::of(a, b);
        let dn = cfg.dn_bandwidth.max(1);
        let merge = cfg.merge_bandwidth.max(1);
        let mults = cfg.multipliers as u64;
        let dram_bpc = cfg.memory.dram.bytes_per_cycle.max(1);
        let cache_bytes = cfg.memory.cache.capacity_bytes;
        let psram_elems = cfg.memory.psram.capacity_bytes / ELEMENT_BYTES;
        let b_bytes = work.nnz_b * ELEMENT_BYTES;

        // Inner Product: tiles x stream-all-of-B, DRAM-bound when B does
        // not fit in the cache.
        let tiles = work.nnz_a.div_ceil(mults).max(1);
        let stream_onchip = tiles * work.nnz_b / dn;
        let reload_bytes = if b_bytes > cache_bytes {
            tiles * b_bytes
        } else {
            b_bytes
        };
        let inner_product = stream_onchip.max(reload_bytes / dram_bpc) + work.products / mults;

        // Outer Product: B once, every product written+read on-chip, spilled
        // volume through DRAM.
        let spilled = work.products.saturating_sub(psram_elems);
        let op_onchip = work.nnz_b / dn + 2 * work.products / merge;
        let op_offchip = (b_bytes + 2 * spilled * ELEMENT_BYTES) / dram_bpc;
        let outer_product = op_onchip.max(op_offchip);

        // Gustavson: every product delivered once; B fiber fetches hit the
        // cache when B fits, otherwise each fetch goes off-chip.
        let gust_onchip = (work.products / dn).max(work.products / merge);
        let fetch_bytes = if b_bytes <= cache_bytes {
            b_bytes
        } else {
            work.products * ELEMENT_BYTES
        };
        let gustavson = gust_onchip.max(fetch_bytes / dram_bpc);

        Self {
            raw: CostEstimates {
                inner_product: inner_product as f64,
                outer_product: outer_product as f64,
                gustavson: gustavson as f64,
            },
            nnz_a: work.nnz_a,
            rows: a.rows(),
            nnz_b: work.nnz_b,
        }
    }

    /// Applies per-class calibration corrections to the raw estimates.
    pub fn calibrated(&self, cal: &MapperCalibration) -> CostEstimates {
        let apply =
            |c: &ClassCalibration, raw: f64| c.apply(raw, self.nnz_a, self.rows, self.nnz_b);
        CostEstimates {
            inner_product: apply(&cal.inner_product, self.raw.inner_product),
            outer_product: apply(&cal.outer_product, self.raw.outer_product),
            gustavson: apply(&cal.gustavson, self.raw.gustavson),
        }
    }
}

impl CostEstimates {
    /// Computes the calibrated estimates for `a x b` on `cfg` (the raw
    /// closed-form terms corrected by `cfg.engine.mapper`).
    pub fn of(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) -> Self {
        CostFeatures::of(cfg, a, b).calibrated(&cfg.engine.mapper)
    }

    /// Computes the uncalibrated closed-form estimates.
    pub fn raw(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) -> Self {
        CostFeatures::of(cfg, a, b).raw
    }

    /// The estimate for one dataflow class.
    pub fn of_class(&self, class: DataflowClass) -> f64 {
        match class {
            DataflowClass::InnerProduct => self.inner_product,
            DataflowClass::OuterProduct => self.outer_product,
            DataflowClass::Gustavson => self.gustavson,
        }
    }

    /// The M-stationary dataflow with the lowest estimate (ties resolved in
    /// IP, OP, Gust order).
    pub fn best(&self) -> Dataflow {
        let mut best = (self.inner_product, Dataflow::InnerProductM);
        if self.outer_product < best.0 {
            best = (self.outer_product, Dataflow::OuterProductM);
        }
        if self.gustavson < best.0 {
            best = (self.gustavson, Dataflow::GustavsonM);
        }
        best.1
    }
}

/// Heuristic mapper: picks an M-stationary dataflow from matrix features
/// alone, without running the simulator (the three-way choice the bench
/// runner and the per-layer DNN flow audit against their oracle).
pub fn heuristic(cfg: &AcceleratorConfig, a: &CompressedMatrix, b: &CompressedMatrix) -> Dataflow {
    CostEstimates::of(cfg, a, b).best()
}

/// Heuristic mapper over an explicit candidate list (e.g. an accelerator's
/// [`Accelerator::supported_dataflows`]): the candidate with the lowest
/// calibrated estimate, ties resolved in candidate order.
///
/// M-stationary candidates use the estimates directly; N-stationary ones
/// are the same class with the operand roles mirrored, so their estimates
/// come from the transposed problem (computed only when needed).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn heuristic_among(
    cfg: &AcceleratorConfig,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
    candidates: &[Dataflow],
) -> Dataflow {
    assert!(!candidates.is_empty(), "no candidate dataflows");
    let m_est = CostEstimates::of(cfg, a, b);
    let n_est = if candidates
        .iter()
        .any(|d| d.stationarity() == crate::Stationarity::N)
    {
        let bt = b.reinterpret_transposed();
        let at = a.reinterpret_transposed();
        Some(CostEstimates::of(cfg, &bt, &at))
    } else {
        None
    };
    let estimate = |df: Dataflow| match df.stationarity() {
        crate::Stationarity::M => m_est.of_class(df.class()),
        crate::Stationarity::N => n_est
            .expect("n_est computed when an N candidate exists")
            .of_class(df.class()),
    };
    let mut best = (estimate(candidates[0]), candidates[0]);
    for &df in &candidates[1..] {
        let e = estimate(df);
        if e < best.0 {
            best = (e, df);
        }
    }
    best.1
}

/// All six dataflows ranked by calibrated estimated cost, cheapest first.
///
/// M-stationary variants use the estimates directly; N-stationary variants
/// are the same class with the operand roles mirrored (B becomes the
/// stationary tensor), so their estimates come from the transposed problem.
pub fn ranked_dataflows(
    cfg: &AcceleratorConfig,
    a: &CompressedMatrix,
    b: &CompressedMatrix,
) -> Vec<(Dataflow, f64)> {
    let m_est = CostEstimates::of(cfg, a, b);
    let bt = b.reinterpret_transposed();
    let at = a.reinterpret_transposed();
    let n_est = CostEstimates::of(cfg, &bt, &at);
    let mut ranked = vec![
        (Dataflow::InnerProductM, m_est.inner_product),
        (Dataflow::OuterProductM, m_est.outer_product),
        (Dataflow::GustavsonM, m_est.gustavson),
        (Dataflow::InnerProductN, n_est.inner_product),
        (Dataflow::OuterProductN, n_est.outer_product),
        (Dataflow::GustavsonN, n_est.gustavson),
    ];
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite estimates"));
    ranked
}

/// Plans a whole model: one dataflow per layer such that (when possible)
/// every inter-layer transition is conversion-free (Table 4), preferring
/// each layer's cheapest dataflows.
///
/// This is the "best sequence of dataflows" decision the paper assigns to
/// the mapper/compiler (§3.3). When no conversion-free chain exists under
/// the given preferences, the planner falls back to each layer's
/// locally-cheapest dataflow (explicit conversions then show up in the
/// execution reports).
///
/// `layers` supplies `(A, B)` per layer in execution order.
pub fn plan_model(
    cfg: &AcceleratorConfig,
    layers: &[(&CompressedMatrix, &CompressedMatrix)],
) -> Vec<Dataflow> {
    let preferences: Vec<Vec<Dataflow>> = layers
        .iter()
        .map(|(a, b)| {
            ranked_dataflows(cfg, a, b)
                .into_iter()
                .map(|(d, _)| d)
                .collect()
        })
        .collect();
    crate::transitions::plan_chain(&preferences).unwrap_or_else(|| {
        preferences
            .iter()
            .map(|p| *p.first().expect("six ranked dataflows per layer"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_sparse::{gen, MajorOrder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::table5()
    }

    #[test]
    fn heuristic_prefers_gustavson_for_small_cached_b() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Small B (fits in cache easily), plenty of A rows.
        let a = gen::random(256, 128, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(128, 64, 0.3, MajorOrder::Row, &mut rng);
        assert_eq!(heuristic(&cfg(), &a, &b), Dataflow::GustavsonM);
    }

    #[test]
    fn heuristic_avoids_inner_product_when_many_tiles() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // nnz_A >> multipliers makes IP re-stream B many times: the raw
        // closed form ranks it worst of the three, and the calibrated
        // heuristic must not pick it either (the calibration reorders IP
        // vs OP — measured OP is the real worst here — but never makes IP
        // the winner).
        let a = gen::random(512, 512, 0.5, MajorOrder::Row, &mut rng);
        let b = gen::random(512, 512, 0.5, MajorOrder::Row, &mut rng);
        let raw = CostEstimates::raw(&cfg(), &a, &b);
        assert!(raw.inner_product > raw.gustavson);
        assert!(raw.inner_product > raw.outer_product);
        assert_ne!(heuristic(&cfg(), &a, &b), Dataflow::InnerProductM);
    }

    #[test]
    fn heuristic_prefers_inner_product_for_tiny_a() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // A fits in one tile: B is streamed exactly once with no merge work.
        let a = gen::random_with_nnz(8, 64, 40, MajorOrder::Row, &mut rng);
        let b = gen::random(64, 256, 0.4, MajorOrder::Row, &mut rng);
        let est = CostEstimates::of(&cfg(), &a, &b);
        assert!(est.inner_product <= est.outer_product);
    }

    #[test]
    fn estimates_are_monotone_in_products() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = gen::random(64, 64, 0.2, MajorOrder::Row, &mut rng);
        let b_sparse = gen::random(64, 64, 0.1, MajorOrder::Row, &mut rng);
        let b_dense = gen::random(64, 64, 0.8, MajorOrder::Row, &mut rng);
        let sparse = CostEstimates::of(&cfg(), &a, &b_sparse);
        let dense = CostEstimates::of(&cfg(), &a, &b_dense);
        assert!(dense.gustavson >= sparse.gustavson);
        assert!(dense.outer_product >= sparse.outer_product);
    }

    #[test]
    fn best_breaks_ties_in_declared_order() {
        let est = CostEstimates {
            inner_product: 5.0,
            outer_product: 5.0,
            gustavson: 5.0,
        };
        assert_eq!(est.best(), Dataflow::InnerProductM);
    }

    #[test]
    fn identity_calibration_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = gen::random(48, 48, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(48, 48, 0.3, MajorOrder::Row, &mut rng);
        let features = CostFeatures::of(&cfg(), &a, &b);
        assert_eq!(
            features.calibrated(&MapperCalibration::IDENTITY),
            features.raw
        );
    }

    #[test]
    fn calibration_applies_scale_and_overheads() {
        let cal = ClassCalibration {
            scale: 2.0,
            per_nnz_a: 0.5,
            per_row: 3.0,
            per_nnz_b: 0.25,
        };
        // 2*100 + 0.5*10 + 3*4 + 0.25*8 = 219.
        assert!((cal.apply(100.0, 10, 4, 8) - 219.0).abs() < 1e-9);
        assert_eq!(ClassCalibration::IDENTITY.apply(7.0, 999, 999, 999), 7.0);
    }

    #[test]
    fn calibration_features_match_operands() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = gen::random(48, 32, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(32, 24, 0.3, MajorOrder::Row, &mut rng);
        let f = CostFeatures::of(&cfg(), &a, &b);
        assert_eq!(f.nnz_a, a.nnz() as u64);
        assert_eq!(f.nnz_b, b.nnz() as u64);
        assert_eq!(f.rows, 48);
    }

    #[test]
    fn calibration_can_flip_the_choice() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let a = gen::random(256, 128, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(128, 64, 0.3, MajorOrder::Row, &mut rng);
        let mut cfg = cfg();
        // A Gustavson penalty large enough always changes the winner away
        // from Gustavson.
        cfg.engine.mapper = MapperCalibration {
            gustavson: ClassCalibration {
                scale: 1e12,
                ..ClassCalibration::IDENTITY
            },
            ..MapperCalibration::IDENTITY
        };
        assert_ne!(heuristic(&cfg, &a, &b), Dataflow::GustavsonM);
    }

    #[test]
    fn heuristic_among_matches_best_on_m_stationary() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = gen::random(64, 64, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(64, 64, 0.3, MajorOrder::Row, &mut rng);
        let c = cfg();
        assert_eq!(
            heuristic_among(&c, &a, &b, &Dataflow::M_STATIONARY),
            heuristic(&c, &a, &b)
        );
    }

    #[test]
    fn heuristic_among_single_candidate_is_that_candidate() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let a = gen::random(32, 32, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(32, 32, 0.3, MajorOrder::Row, &mut rng);
        for df in Dataflow::ALL {
            assert_eq!(heuristic_among(&cfg(), &a, &b, &[df]), df);
        }
    }

    #[test]
    fn heuristic_among_agrees_with_ranked_front() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = gen::random(96, 64, 0.2, MajorOrder::Row, &mut rng);
        let b = gen::random(64, 96, 0.25, MajorOrder::Row, &mut rng);
        let c = cfg();
        let ranked = ranked_dataflows(&c, &a, &b);
        let picked = heuristic_among(&c, &a, &b, &Dataflow::ALL);
        // Same estimate as the ranked front (the pick may differ only on
        // exact ties, where candidate order breaks them).
        let picked_cost = ranked.iter().find(|&&(d, _)| d == picked).unwrap().1;
        assert_eq!(picked_cost, ranked[0].1);
    }

    #[test]
    fn strategy_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(
            MappingStrategy::from_str("oracle").unwrap(),
            MappingStrategy::Oracle
        );
        assert_eq!(
            MappingStrategy::from_str("auto").unwrap(),
            MappingStrategy::Oracle
        );
        assert_eq!(
            MappingStrategy::from_str("heuristic").unwrap(),
            MappingStrategy::Heuristic
        );
        assert_eq!(
            MappingStrategy::from_str("gust-m").unwrap(),
            MappingStrategy::Fixed(Dataflow::GustavsonM)
        );
        assert!(MappingStrategy::from_str("nope").is_err());
        assert_eq!(MappingStrategy::Oracle.to_string(), "oracle");
        assert_eq!(
            MappingStrategy::Fixed(Dataflow::InnerProductN).to_string(),
            "fixed(ip-n)"
        );
    }

    #[test]
    fn parse_spec_splits_strategy_and_format() {
        assert_eq!(
            MappingStrategy::parse_spec("heuristic").unwrap(),
            (MappingStrategy::Heuristic, FormatChoice::Config)
        );
        assert_eq!(
            MappingStrategy::parse_spec("heuristic@bcsr4").unwrap(),
            (
                MappingStrategy::Heuristic,
                FormatChoice::Fixed(FiberFormat::Bcsr4)
            )
        );
        assert_eq!(
            MappingStrategy::parse_spec("gust-m@auto").unwrap(),
            (
                MappingStrategy::Fixed(Dataflow::GustavsonM),
                FormatChoice::Auto
            )
        );
        assert!(MappingStrategy::parse_spec("heuristic@csr5").is_err());
        assert!(MappingStrategy::parse_spec("nope@ell").is_err());
    }

    #[test]
    fn format_choice_parses_and_displays() {
        for (token, want) in [
            ("config", FormatChoice::Config),
            ("auto", FormatChoice::Auto),
            ("ell", FormatChoice::Fixed(FiberFormat::Ell)),
            ("q8", FormatChoice::Fixed(FiberFormat::Quant8)),
        ] {
            assert_eq!(token.parse::<FormatChoice>().unwrap(), want);
            assert_eq!(want.to_string(), token);
        }
        assert!("csr5".parse::<FormatChoice>().is_err());
        assert_eq!(FormatChoice::default(), FormatChoice::Config);
    }

    #[test]
    fn format_heuristic_reads_the_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        // Dense 8x8 blocks at 90% fill: both block fills are high and the
        // wide block stores fewer bytes -> 8-wide blocked.
        let clustered = gen::block_sparse(128, 128, 8, 0.9, MajorOrder::Row, &mut rng);
        assert_eq!(heuristic_format(&clustered), FiberFormat::Bcsr8);
        // A plain diagonal: perfectly uniform rows, zero padding -> ELL.
        let diag = gen::diagonal(256, 1.0, MajorOrder::Row);
        assert_eq!(heuristic_format(&diag), FiberFormat::Ell);
        // Scattered sparse with skewed row lengths -> stays SoA.
        let skewed = gen::rmat(
            10,
            2048,
            (0.57, 0.19, 0.19, 0.05),
            MajorOrder::Row,
            &mut rng,
        );
        assert_eq!(heuristic_format(&skewed), FiberFormat::Soa);
        // Empty -> SoA, and never a lossy pick anywhere.
        let empty = CompressedMatrix::zero(16, 16, MajorOrder::Row);
        assert_eq!(heuristic_format(&empty), FiberFormat::Soa);
        for m in [&clustered, &diag, &skewed, &empty] {
            assert!(heuristic_format(m).is_lossless());
        }
    }

    #[test]
    fn ranked_covers_all_six_and_sorts() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = gen::random(32, 32, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(32, 32, 0.3, MajorOrder::Row, &mut rng);
        let ranked = ranked_dataflows(&cfg(), &a, &b);
        assert_eq!(ranked.len(), 6);
        let mut seen: Vec<Dataflow> = ranked.iter().map(|&(d, _)| d).collect();
        seen.sort_by_key(|d| d.loop_order());
        seen.dedup();
        assert_eq!(seen.len(), 6, "all variants ranked exactly once");
        assert!(
            ranked.windows(2).all(|w| w[0].1 <= w[1].1),
            "sorted by cost"
        );
    }

    #[test]
    fn plan_model_produces_free_chain_when_possible() {
        use crate::transitions;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = gen::random(24, 32, 0.4, MajorOrder::Row, &mut rng);
        let w1 = gen::random(32, 40, 0.3, MajorOrder::Row, &mut rng);
        let c1 = flexagon_sparse::reference::spgemm(&x, &w1).unwrap();
        let w2 = gen::random(40, 16, 0.3, MajorOrder::Row, &mut rng);
        let plan = plan_model(&cfg(), &[(&x, &w1), (&c1, &w2)]);
        assert_eq!(plan.len(), 2);
        assert!(
            transitions::is_free(plan[0], plan[1]),
            "planner must chain {} -> {} for free",
            plan[0],
            plan[1]
        );
    }

    #[test]
    fn plan_model_empty_is_empty() {
        assert!(plan_model(&cfg(), &[]).is_empty());
    }
}
