//! Accelerator configuration (paper Table 5).

use flexagon_mem::MemoryConfig;
use flexagon_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Architectural parameters shared by Flexagon and the three baseline
/// accelerators ("for the three accelerators, we model the same parameters
/// presented in Table 5, and we only change the memory controllers").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of multipliers (Table 5: 64). Must be a power of two — the
    /// distribution network is a Benes topology and the MRN a binary tree.
    pub multipliers: u32,
    /// Distribution bandwidth in elements per cycle (Table 5: 16).
    pub dn_bandwidth: u64,
    /// Reduction/merging bandwidth in elements per cycle (Table 5: 16).
    pub merge_bandwidth: u64,
    /// L1 access latency in cycles (Table 5: 1).
    pub l1_latency: Cycle,
    /// Memory hierarchy configuration.
    pub memory: MemoryConfig,
}

impl AcceleratorConfig {
    /// The paper's Table 5 configuration: 64 multipliers, 16 elems/cycle
    /// distribution and merge bandwidth, 1 MiB STR cache, 256 KiB PSRAM,
    /// HBM 2.0 DRAM.
    pub fn table5() -> Self {
        Self {
            multipliers: 64,
            dn_bandwidth: 16,
            merge_bandwidth: 16,
            l1_latency: 1,
            memory: MemoryConfig::table5(),
        }
    }

    /// A deliberately tiny configuration for unit tests: 4 multipliers,
    /// 2 elements/cycle everywhere, a 512-byte cache and 256-byte PSRAM so
    /// tiling, eviction and spill paths are exercised by small matrices.
    pub fn tiny() -> Self {
        let mut memory = MemoryConfig::table5();
        memory.fifo.capacity_bytes = 32;
        memory.cache.capacity_bytes = 512;
        memory.cache.line_bytes = 16;
        memory.cache.associativity = 2;
        memory.cache.banks = 2;
        memory.psram.capacity_bytes = 256;
        memory.psram.block_bytes = 16;
        memory.psram.num_sets = 4;
        memory.psram.banks = 2;
        Self {
            multipliers: 4,
            dn_bandwidth: 2,
            merge_bandwidth: 2,
            l1_latency: 1,
            memory,
        }
    }

    /// Number of adder/comparator nodes in the MRN (`multipliers - 1`,
    /// Table 5: 63 adders).
    pub fn adders(&self) -> u32 {
        self.multipliers - 1
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers` is not a power of two or a bandwidth is zero.
    pub fn assert_valid(&self) {
        assert!(
            self.multipliers.is_power_of_two() && self.multipliers >= 2,
            "multipliers must be a power of two >= 2"
        );
        assert!(self.dn_bandwidth > 0, "dn_bandwidth must be positive");
        assert!(self.merge_bandwidth > 0, "merge_bandwidth must be positive");
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::table5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper() {
        let c = AcceleratorConfig::table5();
        assert_eq!(c.multipliers, 64);
        assert_eq!(c.adders(), 63);
        assert_eq!(c.dn_bandwidth, 16);
        assert_eq!(c.merge_bandwidth, 16);
        assert_eq!(c.l1_latency, 1);
        c.assert_valid();
    }

    #[test]
    fn tiny_is_valid_and_small() {
        let c = AcceleratorConfig::tiny();
        c.assert_valid();
        assert_eq!(c.multipliers, 4);
        assert!(c.memory.cache.capacity_bytes < 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_multiplier_count_rejected() {
        let mut c = AcceleratorConfig::table5();
        c.multipliers = 48;
        c.assert_valid();
    }
}
