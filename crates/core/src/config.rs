//! Accelerator configuration (paper Table 5) and the engine's software
//! tuning thresholds.

use crate::mapper::MapperCalibration;
use flexagon_mem::MemoryConfig;
use flexagon_sim::Cycle;
use flexagon_sparse::{AccumConfig, FiberFormat};
use serde::{Deserialize, Serialize};

/// SIMD policy for the engine's kernel layer (the `vendor/simd` shim).
///
/// Every vectorized kernel is bit-identical to its scalar twin, so this
/// knob never changes a result — only which instruction sequence computes
/// it. It exists for A/B measurement and for pinning CI legs to the
/// fallback; the `FLEXAGON_SIMD=off` environment variable forces scalar
/// regardless of this setting (the env read is process-wide and wins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimdMode {
    /// Use the best runtime-detected vector path (AVX2/NEON), falling back
    /// to scalar on machines without one.
    #[default]
    Auto,
    /// Force the scalar kernels everywhere.
    Scalar,
}

/// Thresholds steering the engine's adaptive software paths.
///
/// These do not model hardware — the cycle and traffic accounting is
/// identical whichever path runs — they pick the cheapest *software*
/// strategy for the operand shape at hand. The probe and accumulator
/// gates are derived from the `threshold_probe` benchmark group's
/// measured crossovers (see the named defaults below for the method);
/// re-run that group on a new machine class to re-derive them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Inner-Product streaming loop: probe a fiber's index with the tile's
    /// stationary list (instead of mask-scanning the fiber) when
    /// `stationary_coords * probe_gate_factor <= fiber_len`.
    pub probe_gate_factor: usize,
    /// Inner-Product dispatch: take the k-indexed tile loop when
    /// `K >= indexed_min_k_ratio * multipliers`.
    pub indexed_min_k_ratio: usize,
    /// Inner-Product dispatch: upper bound, in elements, on the dense
    /// `clusters x N` accumulator grid the k-indexed path may allocate.
    pub indexed_max_acc_elements: usize,
    /// Intra-layer shard grain: target stationary-operand nonzeros per
    /// output-row band. `0` disables sharding (one band spanning every
    /// output row — the classic sequential execution).
    ///
    /// The band partition is derived *only* from the operand structure and
    /// this grain — never from the worker count — which is what makes
    /// execution reports byte-identical at any [`EngineConfig::shard_workers`]
    /// setting: workers only schedule a fixed, deterministic decomposition.
    pub shard_grain_nnz: usize,
    /// Maximum worker threads executing a layer's bands concurrently.
    /// `1` runs the bands sequentially (still banded accounting when
    /// [`EngineConfig::shard_grain_nnz`] is set). Values above the core
    /// count oversubscribe, like rayon's global pool.
    pub shard_workers: usize,
    /// SIMD policy for the kernel layer. [`SimdMode::Auto`] (the default)
    /// takes the runtime-detected vector paths; [`SimdMode::Scalar`] forces
    /// the scalar twins. Results are bit-identical either way.
    pub simd: SimdMode,
    /// Fiber storage format the engine stages its operands through
    /// ([`FiberFormat::Soa`] by default — the baseline, no staging at
    /// all). Lossless formats are result-transparent: encode → decode
    /// reproduces the operand bit for bit, so reports and outputs are
    /// byte-identical to the SoA run. The lossy [`FiberFormat::Quant8`]
    /// is honored only when set here explicitly (opt-in). The
    /// `FLEXAGON_FORMAT` environment variable, when set to a lossless
    /// token, wins over this field for runs that don't pin a format on
    /// the request (the `FLEXAGON_SIMD` precedent); an explicit
    /// `FormatChoice::Auto`/`Fixed` always wins over the environment.
    pub format: FiberFormat,
    /// Tier cutoffs for the Outer-Product/Gustavson psum accumulators.
    pub accum: AccumConfig,
    /// Fitted corrections for the heuristic mapper's closed-form cost
    /// model (defaults to the checked-in `mapper_calibrate` fit; see
    /// [`MapperCalibration`]). Like the other fields, this has no effect
    /// on modeled cycles — only on which dataflow the heuristic picks.
    pub mapper: MapperCalibration,
}

impl EngineConfig {
    /// Default for [`EngineConfig::probe_gate_factor`].
    ///
    /// Derived from `threshold_probe/{scan,probe}`: a mask-scan of a
    /// 4096-element fiber is flat (~3.6 µs) while probing with a
    /// stationary list `R` times shorter scales down with `R` (6.1 µs at
    /// R=1, 3.0 µs at R=2, 1.5 µs at R=4) — the crossover sits between
    /// R=1 and R=2, so the gate probes from a 2:1 length ratio on. (The
    /// previous hand-tuned value of 4 left the 2–4x band on the slower
    /// scan path.)
    ///
    /// Re-checked on the SIMD build (the bitmap tier that dominates these
    /// fixtures is untouched by SIMD, but inlining around `Prober::probe`
    /// shifted): a lib-level microbench pins the bitmap probe at the same
    /// ~1.6 ns/probe as the pre-SIMD build, keeping the crossover between
    /// R=1 and R=2, and an engine A/B of gate 2 vs 4 on `execute/table5`
    /// showed no dataflow where 4 wins (KMN was 15% worse). The
    /// `threshold_probe/probe` numbers as compiled in the bench *binary*
    /// currently read ~2x the lib-level cost at low `R` (a codegen/layout
    /// artifact of that binary, not a library regression — see
    /// BENCH_spgemm.json notes); naively reading them would move the gate
    /// to 4 and lose the KMN win, so the gate stays 2.
    pub const DEFAULT_PROBE_GATE_FACTOR: usize = 2;
    /// Default for [`EngineConfig::indexed_min_k_ratio`].
    pub const DEFAULT_INDEXED_MIN_K_RATIO: usize = 2;
    /// Default for [`EngineConfig::indexed_max_acc_elements`] (8M elements,
    /// a 32 MiB `f32` grid).
    pub const DEFAULT_INDEXED_MAX_ACC_ELEMENTS: usize = 1 << 23;
    /// Default for [`EngineConfig::shard_grain_nnz`]: sharding disabled, so
    /// default-configured runs reproduce the unsharded accounting (and the
    /// recorded goldens) bit for bit.
    pub const DEFAULT_SHARD_GRAIN_NNZ: usize = 0;
    /// Default for [`EngineConfig::shard_workers`].
    pub const DEFAULT_SHARD_WORKERS: usize = 1;
    /// Default for [`EngineConfig::format`]: the SoA baseline, which skips
    /// format staging entirely and reproduces the recorded goldens bit for
    /// bit.
    pub const DEFAULT_FORMAT: FiberFormat = FiberFormat::Soa;

    /// A sharded configuration: bands of roughly `grain_nnz` stationary
    /// nonzeros executed by up to `workers` threads.
    #[must_use]
    pub fn sharded(mut self, grain_nnz: usize, workers: usize) -> Self {
        self.shard_grain_nnz = grain_nnz;
        self.shard_workers = workers.max(1);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            probe_gate_factor: Self::DEFAULT_PROBE_GATE_FACTOR,
            indexed_min_k_ratio: Self::DEFAULT_INDEXED_MIN_K_RATIO,
            indexed_max_acc_elements: Self::DEFAULT_INDEXED_MAX_ACC_ELEMENTS,
            shard_grain_nnz: Self::DEFAULT_SHARD_GRAIN_NNZ,
            shard_workers: Self::DEFAULT_SHARD_WORKERS,
            simd: SimdMode::default(),
            format: Self::DEFAULT_FORMAT,
            accum: AccumConfig::default(),
            mapper: MapperCalibration::calibrated(),
        }
    }
}

/// Architectural parameters shared by Flexagon and the three baseline
/// accelerators ("for the three accelerators, we model the same parameters
/// presented in Table 5, and we only change the memory controllers").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of multipliers (Table 5: 64). Must be a power of two — the
    /// distribution network is a Benes topology and the MRN a binary tree.
    pub multipliers: u32,
    /// Distribution bandwidth in elements per cycle (Table 5: 16).
    pub dn_bandwidth: u64,
    /// Reduction/merging bandwidth in elements per cycle (Table 5: 16).
    pub merge_bandwidth: u64,
    /// L1 access latency in cycles (Table 5: 1).
    pub l1_latency: Cycle,
    /// Memory hierarchy configuration.
    pub memory: MemoryConfig,
    /// Software-path tuning thresholds (no effect on modeled cycles).
    pub engine: EngineConfig,
}

impl AcceleratorConfig {
    /// The paper's Table 5 configuration: 64 multipliers, 16 elems/cycle
    /// distribution and merge bandwidth, 1 MiB STR cache, 256 KiB PSRAM,
    /// HBM 2.0 DRAM.
    pub fn table5() -> Self {
        Self {
            multipliers: 64,
            dn_bandwidth: 16,
            merge_bandwidth: 16,
            l1_latency: 1,
            memory: MemoryConfig::table5(),
            engine: EngineConfig::default(),
        }
    }

    /// A deliberately tiny configuration for unit tests: 4 multipliers,
    /// 2 elements/cycle everywhere, a 512-byte cache and 256-byte PSRAM so
    /// tiling, eviction and spill paths are exercised by small matrices.
    pub fn tiny() -> Self {
        let mut memory = MemoryConfig::table5();
        memory.fifo.capacity_bytes = 32;
        memory.cache.capacity_bytes = 512;
        memory.cache.line_bytes = 16;
        memory.cache.associativity = 2;
        memory.cache.banks = 2;
        memory.psram.capacity_bytes = 256;
        memory.psram.block_bytes = 16;
        memory.psram.num_sets = 4;
        memory.psram.banks = 2;
        Self {
            multipliers: 4,
            dn_bandwidth: 2,
            merge_bandwidth: 2,
            l1_latency: 1,
            memory,
            engine: EngineConfig::default(),
        }
    }

    /// Number of adder/comparator nodes in the MRN (`multipliers - 1`,
    /// Table 5: 63 adders).
    pub fn adders(&self) -> u32 {
        self.multipliers - 1
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers` is not a power of two or a bandwidth is zero.
    pub fn assert_valid(&self) {
        assert!(
            self.multipliers.is_power_of_two() && self.multipliers >= 2,
            "multipliers must be a power of two >= 2"
        );
        assert!(self.dn_bandwidth > 0, "dn_bandwidth must be positive");
        assert!(self.merge_bandwidth > 0, "merge_bandwidth must be positive");
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::table5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper() {
        let c = AcceleratorConfig::table5();
        assert_eq!(c.multipliers, 64);
        assert_eq!(c.adders(), 63);
        assert_eq!(c.dn_bandwidth, 16);
        assert_eq!(c.merge_bandwidth, 16);
        assert_eq!(c.l1_latency, 1);
        c.assert_valid();
    }

    #[test]
    fn engine_defaults_match_named_constants() {
        let e = EngineConfig::default();
        assert_eq!(e.probe_gate_factor, EngineConfig::DEFAULT_PROBE_GATE_FACTOR);
        assert_eq!(
            e.indexed_min_k_ratio,
            EngineConfig::DEFAULT_INDEXED_MIN_K_RATIO
        );
        assert_eq!(
            e.indexed_max_acc_elements,
            EngineConfig::DEFAULT_INDEXED_MAX_ACC_ELEMENTS
        );
        assert_eq!(e.simd, SimdMode::Auto);
        assert_eq!(e.format, EngineConfig::DEFAULT_FORMAT);
        assert_eq!(e.format, FiberFormat::Soa);
        assert_eq!(
            e.accum.dense_span_per_elem,
            AccumConfig::DEFAULT_DENSE_SPAN_PER_ELEM
        );
        assert_eq!(
            e.accum.runs_merge_limit,
            AccumConfig::DEFAULT_RUNS_MERGE_LIMIT
        );
        assert_eq!(e.mapper, MapperCalibration::calibrated());
    }

    #[test]
    fn tiny_is_valid_and_small() {
        let c = AcceleratorConfig::tiny();
        c.assert_valid();
        assert_eq!(c.multipliers, 4);
        assert!(c.memory.cache.capacity_bytes < 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_multiplier_count_rejected() {
        let mut c = AcceleratorConfig::table5();
        c.multipliers = 48;
        c.assert_valid();
    }
}
