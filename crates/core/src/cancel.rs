//! Cooperative cancellation for in-flight executions.
//!
//! A [`CancelToken`] is a cheap, clonable handle that the engine polls at
//! its natural scheduling boundaries — band starts, tile starts, and
//! merge-tree passes. Cancellation is *cooperative*: nothing is preempted,
//! the engine simply stops planning new work and unwinds with
//! [`crate::CoreError::DeadlineExceeded`]. Two properties make the token
//! safe to thread through every dataflow path unconditionally:
//!
//! * **Unarmed tokens are free.** [`CancelToken::never`] (the
//!   [`ExecutionRequest`](crate::ExecutionRequest) default) carries no
//!   state at all; every poll is a branch on a `None`. Results and reports
//!   are byte-identical with or without the unarmed token — the
//!   cancellation layer is result-transparent, the same contract the SIMD,
//!   sharding and format tiers honor.
//! * **Firing is a latch.** Once the deadline passes (or [`cancel`] is
//!   called) the shared flag is set and every subsequent poll is a single
//!   relaxed atomic load — concurrent band workers all observe the same
//!   decision without re-reading the clock.
//!
//! [`cancel`]: CancelToken::cancel

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    /// The fired latch: set by `cancel()` or by the first poll that
    /// observes the deadline in the past.
    fired: AtomicBool,
    /// Absolute deadline; `None` for a manually-armed token.
    deadline: Option<Instant>,
}

/// Shared cancellation handle for one execution (see the module docs).
///
/// Clones share the same underlying state, so arming a token once and
/// handing clones to concurrent workers cancels them all together.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The unarmed token: never cancels, costs one `None` check per poll.
    /// This is the default on every [`crate::ExecutionRequest`].
    pub fn never() -> Self {
        Self { inner: None }
    }

    /// A token that fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                fired: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// A token that fires `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// An armed token with no deadline — it fires only through
    /// [`CancelToken::cancel`].
    pub fn manual() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                fired: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// Whether this token can ever fire.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Fires the token explicitly. A no-op on an unarmed token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.fired.store(true, Ordering::Relaxed);
        }
    }

    /// Polls the token: `true` once cancelled. The first poll past the
    /// deadline latches the flag; later polls are a single atomic load.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                if inner.fired.load(Ordering::Relaxed) {
                    return true;
                }
                match inner.deadline {
                    Some(d) if Instant::now() >= d => {
                        inner.fired.store(true, Ordering::Relaxed);
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Polls the token as a `Result`, the form the engine propagates.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::DeadlineExceeded`] once cancelled.
    #[inline]
    pub fn check(&self) -> crate::Result<()> {
        if self.is_cancelled() {
            Err(crate::CoreError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// Time left before the deadline fires; `None` when the token has no
    /// deadline (unarmed or manual). A fired token reports zero.
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let deadline = inner.deadline?;
        if inner.fired.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        Some(deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_token_never_cancels() {
        let t = CancelToken::never();
        assert!(!t.is_armed());
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn default_is_unarmed() {
        assert!(!CancelToken::default().is_armed());
    }

    #[test]
    fn expired_deadline_latches() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_armed());
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "latched after first observation");
        assert!(matches!(t.check(), Err(crate::CoreError::DeadlineExceeded)));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::after(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().expect("deadline set") > Duration::from_secs(3000));
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        assert_eq!(t.remaining(), None, "manual token has no deadline");
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.check().is_err());
    }
}
