//! Mapper-accuracy evaluation: audit [`flexagon_core::mapper`]'s heuristic
//! against the oracle over the DNN suite and the generator scenario sweep.
//!
//! The oracle here is the same three-way choice the per-layer DNN flow
//! makes (Inner-Product(M) / Outer-Product(M) / Gustavson(M) on the Table 5
//! Flexagon): every case simulates all three dataflows once, and the
//! heuristic's pick is scored by *top-1 agreement* (did it pick the
//! winner?) and *cycle regret* (`picked_cycles / best_cycles`). The same
//! measurements double as the calibration harness's fitting data — the raw
//! closed-form estimates ride along in [`CaseOutcome`].

use flexagon_core::{mapper, Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
use flexagon_dnn::AgreementStats;
use flexagon_sparse::{gen, CompressedMatrix, FiberFormat, FormattedMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// One SpMSpM problem to audit the mapper on.
#[derive(Debug, Clone)]
pub struct AccuracyCase {
    /// Aggregation group: the model short code (`"A"`, `"MB"`, ...) or the
    /// scenario family (`"rmat"`, `"banded"`, ...).
    pub group: String,
    /// Unique row label (`"R/res12"`, `"banded/chain/512w8"`, ...).
    pub label: String,
    /// Left operand.
    pub a: CompressedMatrix,
    /// Right operand.
    pub b: CompressedMatrix,
}

/// Every layer of the eight-model DNN suite, materialized at `seed`.
///
/// With `smoke`, each model is stride-sampled down to at most
/// [`SMOKE_LAYERS_PER_MODEL`] layers so the sweep fits a CI smoke budget;
/// the stride keeps the front/middle/back spread (early convolutions,
/// bottlenecks, classifier heads) rather than truncating.
pub fn dnn_cases(seed: u64, smoke: bool) -> Vec<AccuracyCase> {
    let mut cases = Vec::new();
    for model in flexagon_dnn::suite() {
        let stride = if smoke {
            model.layers.len().div_ceil(SMOKE_LAYERS_PER_MODEL)
        } else {
            1
        };
        for spec in model.layers.iter().step_by(stride.max(1)) {
            let mats = spec.materialize(seed);
            cases.push(AccuracyCase {
                group: model.short.to_string(),
                label: format!("{}/{}", model.short, spec.name),
                a: mats.a,
                b: mats.b,
            });
        }
    }
    cases
}

/// Smoke-budget cap on audited layers per model (see [`dnn_cases`]).
pub const SMOKE_LAYERS_PER_MODEL: usize = 8;

/// The generator scenario sweep ([`gen::scenario_sweep`]) as accuracy
/// cases, grouped by generator family.
pub fn scenario_cases(seed: u64) -> Vec<AccuracyCase> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    gen::scenario_sweep(&mut rng)
        .into_iter()
        .map(|s| AccuracyCase {
            group: s
                .name
                .split('/')
                .next()
                .expect("scenario names are family/shape")
                .to_string(),
            label: s.name,
            a: s.a,
            b: s.b,
        })
        .collect()
}

/// Measured outcome of one audited case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Aggregation group (see [`AccuracyCase::group`]).
    pub group: String,
    /// Row label.
    pub label: String,
    /// The heuristic's pick.
    pub predicted: Dataflow,
    /// The oracle's winner.
    pub oracle: Dataflow,
    /// Measured cycles per M-stationary dataflow, in
    /// [`Dataflow::M_STATIONARY`] order (IP, OP, Gust).
    pub measured_cycles: [u64; 3],
    /// Raw (uncalibrated) closed-form estimates, same order — the
    /// calibration harness's fitting features.
    pub raw_estimates: [f64; 3],
    /// Structural features of the problem for calibration analysis:
    /// `[m, k, n, nnz_a, nnz_b, products, effectual_k]`.
    pub features: [f64; 7],
}

impl CaseOutcome {
    /// Cycles of the oracle's winner.
    pub fn oracle_cycles(&self) -> u64 {
        self.cycles_of(self.oracle)
    }

    /// Cycles of the heuristic's pick.
    pub fn predicted_cycles(&self) -> u64 {
        self.cycles_of(self.predicted)
    }

    /// Measured cycles for one M-stationary dataflow.
    ///
    /// # Panics
    ///
    /// Panics if `df` is not M-stationary.
    pub fn cycles_of(&self, df: Dataflow) -> u64 {
        let idx = Dataflow::M_STATIONARY
            .iter()
            .position(|&d| d == df)
            .expect("outcomes cover M-stationary dataflows");
        self.measured_cycles[idx]
    }

    /// `predicted_cycles / oracle_cycles` (≥ 1; 1.0 on agreement or tie).
    pub fn regret(&self) -> f64 {
        self.predicted_cycles() as f64 / self.oracle_cycles() as f64
    }

    /// Whether the pick costs nothing: either the exact winner, or a
    /// different dataflow with identical measured cycles (a tie the oracle
    /// broke arbitrarily).
    pub fn agrees(&self) -> bool {
        self.predicted_cycles() == self.oracle_cycles()
    }
}

/// Audits one case: simulates the three M-stationary dataflows on `accel`
/// (fanned out across cores; each simulation is a pure function of the
/// operands, so the schedule cannot change any count) and compares the
/// oracle's winner with the calibrated heuristic's feature-only pick.
///
/// # Panics
///
/// Panics if a simulation fails — audit inputs are always well-formed.
pub fn evaluate_case(accel: &Flexagon, case: &AccuracyCase) -> CaseOutcome {
    let run = |df: Dataflow| {
        accel
            .execute(ExecutionRequest::new(&case.a, &case.b).dataflow(df))
            .unwrap_or_else(|e| panic!("{}: {df} failed: {e}", case.label))
            .output
            .report
            .total_cycles
    };
    let (ip, (op, gust)) = rayon::join(
        || run(Dataflow::InnerProductM),
        || {
            rayon::join(
                || run(Dataflow::OuterProductM),
                || run(Dataflow::GustavsonM),
            )
        },
    );
    let measured = [ip, op, gust];
    let best = Dataflow::M_STATIONARY[measured
        .iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .expect("three dataflows measured")
        .0];
    let predicted = mapper::heuristic(accel.config(), &case.a, &case.b);
    let raw = mapper::CostEstimates::raw(accel.config(), &case.a, &case.b);
    let work = flexagon_sparse::stats::SpGemmWork::of(&case.a, &case.b);
    CaseOutcome {
        group: case.group.clone(),
        label: case.label.clone(),
        predicted,
        oracle: best,
        measured_cycles: measured,
        raw_estimates: [raw.inner_product, raw.outer_product, raw.gustavson],
        features: [
            case.a.rows() as f64,
            case.a.cols() as f64,
            case.b.cols() as f64,
            work.nnz_a as f64,
            work.nnz_b as f64,
            work.products as f64,
            work.effectual_k as f64,
        ],
    }
}

/// Audits every case (layer-level rayon fan-out, results in input order).
pub fn evaluate_all(cfg: &AcceleratorConfig, cases: &[AccuracyCase]) -> Vec<CaseOutcome> {
    let accel = Flexagon::new(*cfg);
    cases
        .par_iter()
        .map(|case| evaluate_case(&accel, case))
        .collect()
}

/// Per-group and overall agreement statistics for a set of outcomes.
///
/// Groups come back in first-appearance order, followed by the merged
/// overall row.
pub fn aggregate(outcomes: &[CaseOutcome]) -> (Vec<(String, AgreementStats)>, AgreementStats) {
    let mut groups: Vec<(String, AgreementStats)> = Vec::new();
    for o in outcomes {
        let stats = match groups.iter_mut().find(|(g, _)| *g == o.group) {
            Some((_, s)) => s,
            None => {
                groups.push((o.group.clone(), AgreementStats::new()));
                &mut groups.last_mut().expect("just pushed").1
            }
        };
        stats.record(&o.label, o.agrees(), o.regret());
    }
    let mut overall = AgreementStats::new();
    for (_, s) in &groups {
        overall.merge(s);
    }
    (groups, overall)
}

/// The lossless formats the selection sweep ranks, in footprint-array
/// order. `Quant8` is excluded by policy: the mapper never volunteers a
/// lossy tier, so auditing it as an "oracle" pick would be meaningless.
pub const SWEEP_FORMATS: [FiberFormat; 4] = [
    FiberFormat::Soa,
    FiberFormat::Bcsr4,
    FiberFormat::Bcsr8,
    FiberFormat::Ell,
];

/// One case of the format-selection audit: the heuristic's feature-only
/// pick against the footprint oracle (lossless formats are
/// result-transparent, so bytes — not cycles — are the objective the
/// format dimension optimizes).
#[derive(Debug, Clone)]
pub struct FormatOutcome {
    /// Aggregation group (see [`AccuracyCase::group`]).
    pub group: String,
    /// Row label.
    pub label: String,
    /// The heuristic's pick ([`mapper::heuristic_format`] on the
    /// stationary operand).
    pub predicted: FiberFormat,
    /// The smallest-footprint lossless format.
    pub oracle: FiberFormat,
    /// Encoded bytes of the stationary operand per format, in
    /// [`SWEEP_FORMATS`] order.
    pub footprints: [usize; 4],
}

impl FormatOutcome {
    fn bytes_of(&self, format: FiberFormat) -> usize {
        let idx = SWEEP_FORMATS
            .iter()
            .position(|&f| f == format)
            .expect("sweep covers lossless formats");
        self.footprints[idx]
    }

    /// `predicted_bytes / oracle_bytes` (≥ 1; 1.0 on agreement or tie) —
    /// the footprint analogue of cycle regret.
    pub fn waste(&self) -> f64 {
        self.bytes_of(self.predicted) as f64 / self.bytes_of(self.oracle) as f64
    }

    /// Whether the pick costs nothing: smallest footprint, ties included.
    pub fn agrees(&self) -> bool {
        self.bytes_of(self.predicted) == self.bytes_of(self.oracle)
    }
}

/// Audits format selection over `cases`: encodes each stationary operand
/// in every lossless format and scores [`mapper::heuristic_format`]
/// against the footprint oracle.
pub fn evaluate_formats(cases: &[AccuracyCase]) -> Vec<FormatOutcome> {
    cases
        .par_iter()
        .map(|case| {
            let footprints =
                SWEEP_FORMATS.map(|f| FormattedMatrix::encode(&case.a, f).footprint_bytes());
            let oracle_idx = (0..SWEEP_FORMATS.len())
                .min_by_key(|&i| footprints[i])
                .expect("four formats");
            FormatOutcome {
                group: case.group.clone(),
                label: case.label.clone(),
                predicted: mapper::heuristic_format(&case.a),
                oracle: SWEEP_FORMATS[oracle_idx],
                footprints,
            }
        })
        .collect()
}

/// Overall format-selection statistics: top-1 agreement fraction, geomean
/// footprint waste, and the worst (case label, waste).
pub fn aggregate_formats(outcomes: &[FormatOutcome]) -> (f64, f64, Option<(&str, f64)>) {
    if outcomes.is_empty() {
        return (1.0, 1.0, None);
    }
    let agree = outcomes.iter().filter(|o| o.agrees()).count();
    let log_sum: f64 = outcomes.iter().map(|o| o.waste().ln()).sum();
    let worst = outcomes
        .iter()
        .max_by(|a, b| a.waste().partial_cmp(&b.waste()).expect("finite waste"))
        .map(|o| (o.label.as_str(), o.waste()));
    (
        agree as f64 / outcomes.len() as f64,
        (log_sum / outcomes.len() as f64).exp(),
        worst,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cases_are_a_subset_with_all_models() {
        let smoke = dnn_cases(1, true);
        let full = dnn_cases(1, false);
        assert!(smoke.len() < full.len());
        assert!(smoke.len() <= 8 * SMOKE_LAYERS_PER_MODEL + 8);
        for short in ["A", "S", "V", "R", "S-R", "S-M", "DB", "MB"] {
            assert!(
                smoke.iter().any(|c| c.group == short),
                "model {short} missing from smoke set"
            );
        }
        let full_labels: std::collections::HashSet<&str> =
            full.iter().map(|c| c.label.as_str()).collect();
        assert!(smoke.iter().all(|c| full_labels.contains(c.label.as_str())));
    }

    #[test]
    fn scenario_cases_group_by_family() {
        let cases = scenario_cases(7);
        assert!(cases.iter().any(|c| c.group == "rmat"));
        assert!(cases.iter().any(|c| c.group == "banded"));
        assert!(cases.iter().any(|c| c.group == "block"));
        assert!(cases.iter().any(|c| c.group == "nnz"));
    }

    #[test]
    fn evaluate_case_measures_and_scores() {
        let cases = scenario_cases(3);
        let small = cases
            .iter()
            .find(|c| c.group == "nnz")
            .expect("nnz scenarios exist");
        let accel = Flexagon::with_defaults();
        let out = evaluate_case(&accel, small);
        assert!(out.measured_cycles.iter().all(|&c| c > 0));
        assert!(out.regret() >= 1.0);
        assert_eq!(
            out.oracle_cycles(),
            *out.measured_cycles.iter().min().unwrap()
        );
        if out.agrees() {
            assert_eq!(out.regret(), 1.0);
        }
        assert!(out.raw_estimates.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn aggregate_groups_and_merges() {
        let mk = |group: &str, agrees: bool, regret_cycles: u64| CaseOutcome {
            group: group.into(),
            label: format!("{group}/x"),
            predicted: if agrees {
                Dataflow::InnerProductM
            } else {
                Dataflow::OuterProductM
            },
            oracle: Dataflow::InnerProductM,
            measured_cycles: [100, regret_cycles, 400],
            raw_estimates: [1.0, 1.0, 1.0],
            features: [1.0; 7],
        };
        let outcomes = vec![mk("a", true, 200), mk("a", false, 150), mk("b", true, 300)];
        let (groups, overall) = aggregate(&outcomes);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "a");
        assert_eq!(groups[0].1.cases, 2);
        assert_eq!(overall.cases, 3);
        assert_eq!(overall.agreements, 2);
        assert!((overall.max_regret() - 1.5).abs() < 1e-12);
    }
}
