//! Mapper-accuracy report: audits the calibrated heuristic mapper against
//! the oracle over the DNN suite and the generator scenario sweep, and
//! (with `--check`) gates the numbers against the recorded floor in
//! `MAPPER_accuracy.json` — the CI `mapper-accuracy` job's guard.
//!
//! For every case, the three M-stationary dataflows are simulated once on
//! the Table 5 Flexagon; *top-1 agreement* is the fraction of cases where
//! the heuristic's feature-only pick costs nothing (same cycles as the
//! oracle's winner, so measured ties count), and *cycle regret* is
//! `picked_cycles / best_cycles`. The nine Table 6 representative layers
//! are reported individually alongside their published dataflow groups.
//!
//! Usage: `mapper_accuracy [--smoke] [--json <out.json>] [--check <MAPPER_accuracy.json>]`
//!
//! * `--smoke`  stride-sampled DNN layers (CI budget); full sweep otherwise.
//! * `--json`   write per-case rows and aggregates as JSON.
//! * `--check`  compare against the recorded thresholds; non-zero exit on
//!   a floor violation.

use flexagon_bench::mapper::{dnn_cases, evaluate_all, evaluate_case, scenario_cases};
use flexagon_bench::render::{pct, table};
use flexagon_bench::DEFAULT_SEED;
use flexagon_core::{AcceleratorConfig, Flexagon};
use flexagon_dnn::{table6, AgreementStats};
use std::io::Write;
use std::process::ExitCode;

/// One gate of the recorded thresholds file.
#[derive(Debug)]
struct Gate {
    min_top1_percent: f64,
    max_geomean_regret: f64,
}

impl serde::Deserialize for Gate {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::new("expected an object for Gate"))?;
        Ok(Self {
            min_top1_percent: serde::Deserialize::from_value(serde::map_get(
                m,
                "min_top1_percent",
            )?)?,
            max_geomean_regret: serde::Deserialize::from_value(serde::map_get(
                m,
                "max_geomean_regret",
            )?)?,
        })
    }
}

/// The format-selection gate of the thresholds file — optional, so older
/// threshold files without the section still pass the dataflow gates.
#[derive(Debug)]
struct FormatGate {
    min_top1_percent: f64,
    max_geomean_waste: f64,
}

impl serde::Deserialize for FormatGate {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::new("expected an object for FormatGate"))?;
        Ok(Self {
            min_top1_percent: serde::Deserialize::from_value(serde::map_get(
                m,
                "min_top1_percent",
            )?)?,
            max_geomean_waste: serde::Deserialize::from_value(serde::map_get(
                m,
                "max_geomean_waste",
            )?)?,
        })
    }
}

/// The recorded thresholds file (`MAPPER_accuracy.json`): only the
/// `thresholds.{smoke,full}` dataflow gates and the optional
/// `thresholds.format_selection` gate are read; the recorded results and
/// notes alongside them are documentation.
struct Thresholds {
    smoke: Gate,
    full: Gate,
    format_selection: Option<FormatGate>,
}

impl serde::Deserialize for Thresholds {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let top = v
            .as_map()
            .ok_or_else(|| serde::DeError::new("expected an object for the thresholds file"))?;
        let by_mode = serde::map_get(top, "thresholds")?
            .as_map()
            .ok_or_else(|| serde::DeError::new("expected an object for thresholds"))?;
        Ok(Self {
            smoke: serde::Deserialize::from_value(serde::map_get(by_mode, "smoke")?)?,
            full: serde::Deserialize::from_value(serde::map_get(by_mode, "full")?)?,
            format_selection: match serde::map_get(by_mode, "format_selection") {
                Ok(v) => Some(serde::Deserialize::from_value(v)?),
                Err(_) => None,
            },
        })
    }
}

fn load_thresholds(path: &str) -> Thresholds {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn stats_row(name: &str, s: &AgreementStats) -> Vec<String> {
    vec![
        name.to_string(),
        s.cases.to_string(),
        pct(s.top1_fraction()),
        format!("{:.4}x", s.geomean_regret()),
        format!("{:.3}x", s.max_regret()),
        s.worst_case().unwrap_or("-").to_string(),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };

    let cfg = AcceleratorConfig::table5();
    let mut cases = dnn_cases(DEFAULT_SEED, smoke);
    cases.extend(scenario_cases(DEFAULT_SEED));
    eprintln!(
        "auditing {} cases x 3 dataflows ({mode} sweep, table5 config)...",
        cases.len()
    );
    let outcomes = evaluate_all(&cfg, &cases);
    let (groups, overall) = flexagon_bench::mapper::aggregate(&outcomes);

    println!("Mapper accuracy — calibrated heuristic vs oracle ({mode} sweep)\n");
    let mut rows: Vec<Vec<String>> = groups.iter().map(|(g, s)| stats_row(g, s)).collect();
    rows.push(stats_row("OVERALL", &overall));
    println!(
        "{}",
        table(
            &[
                "group",
                "cases",
                "top-1",
                "geomean regret",
                "max regret",
                "worst case"
            ],
            &rows
        )
    );

    // Every disagreement that actually cost cycles, worst first.
    let mut misses: Vec<_> = outcomes.iter().filter(|o| !o.agrees()).collect();
    misses.sort_by(|a, b| b.regret().partial_cmp(&a.regret()).expect("finite regret"));
    if misses.is_empty() {
        println!("no costly disagreements.\n");
    } else {
        let rows: Vec<Vec<String>> = misses
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    o.oracle.to_string(),
                    o.predicted.to_string(),
                    format!("{:.3}x", o.regret()),
                ]
            })
            .collect();
        println!(
            "{} costly disagreement(s):\n{}",
            misses.len(),
            table(&["case", "oracle", "heuristic", "regret"], &rows)
        );
    }

    // The format-selection audit over the same cases: the feature-only
    // format heuristic against the footprint oracle (lossless formats are
    // result-transparent, so encoded bytes are the objective).
    let format_outcomes = flexagon_bench::mapper::evaluate_formats(&cases);
    let (fmt_top1, fmt_waste, fmt_worst) =
        flexagon_bench::mapper::aggregate_formats(&format_outcomes);
    let (worst_label, worst_waste) = fmt_worst.unwrap_or(("-", 1.0));
    println!(
        "Format selection — heuristic vs footprint oracle: top-1 {} over {} cases, \
         geomean waste {fmt_waste:.4}x, worst {worst_waste:.3}x ({worst_label})\n",
        pct(fmt_top1),
        format_outcomes.len()
    );

    // The Table 6 representative layers, individually (the paper's named
    // per-dataflow-group exemplars; materialized at the harness seed).
    let accel = Flexagon::new(cfg);
    let t6_rows: Vec<Vec<String>> = table6::layers()
        .iter()
        .map(|layer| {
            let mats = layer.spec.materialize(DEFAULT_SEED);
            let out = evaluate_case(
                &accel,
                &flexagon_bench::mapper::AccuracyCase {
                    group: "table6".into(),
                    label: layer.id.to_string(),
                    a: mats.a,
                    b: mats.b,
                },
            );
            vec![
                layer.id.to_string(),
                layer.favours.short_name().to_string(),
                out.oracle.to_string(),
                out.predicted.to_string(),
                if out.agrees() {
                    "yes".into()
                } else {
                    format!("{:.3}x", out.regret())
                },
            ]
        })
        .collect();
    println!(
        "Table 6 representative layers:\n{}",
        table(
            &["layer", "paper favours", "oracle", "heuristic", "agrees"],
            &t6_rows
        )
    );

    if let Some(path) = flag_value("--json") {
        let mut file =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
        writeln!(file, "{{\"mode\": \"{mode}\", \"cases\": [").expect("write json");
        for (i, o) in outcomes.iter().enumerate() {
            writeln!(
                file,
                "  {{\"label\": {}, \"oracle\": {}, \"heuristic\": {}, \"regret\": {:.6}}}{}",
                serde_json::to_string(&o.label).expect("label"),
                serde_json::to_string(&o.oracle).expect("dataflow"),
                serde_json::to_string(&o.predicted).expect("dataflow"),
                o.regret(),
                if i + 1 == outcomes.len() { "" } else { "," },
            )
            .expect("write json");
        }
        writeln!(
            file,
            "], \"top1_percent\": {:.4}, \"geomean_regret\": {:.6}, \"max_regret\": {:.6},",
            100.0 * overall.top1_fraction(),
            overall.geomean_regret(),
            overall.max_regret(),
        )
        .expect("write json");
        writeln!(
            file,
            "\"format_selection\": {{\"top1_percent\": {:.4}, \"geomean_waste\": {:.6}}}}}",
            100.0 * fmt_top1,
            fmt_waste,
        )
        .expect("write json");
        eprintln!("wrote per-case results to {path}");
    }

    if let Some(path) = flag_value("--check") {
        let thresholds = load_thresholds(&path);
        let gate = if smoke {
            thresholds.smoke
        } else {
            thresholds.full
        };
        let top1 = 100.0 * overall.top1_fraction();
        let regret = overall.geomean_regret();
        println!(
            "gate ({mode}): top-1 {top1:.2}% (floor {:.2}%), geomean regret {regret:.4}x (ceiling {:.2}x)",
            gate.min_top1_percent, gate.max_geomean_regret
        );
        let mut failed = false;
        if top1 < gate.min_top1_percent {
            eprintln!(
                "mapper_accuracy: top-1 agreement {top1:.2}% fell below the recorded floor \
                 {:.2}% — recalibrate (mapper_calibrate) or update {path}",
                gate.min_top1_percent
            );
            failed = true;
        }
        if regret > gate.max_geomean_regret {
            eprintln!(
                "mapper_accuracy: geomean regret {regret:.4}x exceeds {:.2}x — recalibrate \
                 (mapper_calibrate) or update {path}",
                gate.max_geomean_regret
            );
            failed = true;
        }
        if let Some(fg) = thresholds.format_selection {
            let ft = 100.0 * fmt_top1;
            println!(
                "gate (format): top-1 {ft:.2}% (floor {:.2}%), geomean waste {fmt_waste:.4}x \
                 (ceiling {:.3}x)",
                fg.min_top1_percent, fg.max_geomean_waste
            );
            if ft < fg.min_top1_percent {
                eprintln!(
                    "mapper_accuracy: format top-1 {ft:.2}% fell below the recorded floor \
                     {:.2}% — retune FormatSelection or update {path}",
                    fg.min_top1_percent
                );
                failed = true;
            }
            if fmt_waste > fg.max_geomean_waste {
                eprintln!(
                    "mapper_accuracy: format geomean waste {fmt_waste:.4}x exceeds {:.3}x — \
                     retune FormatSelection or update {path}",
                    fg.max_geomean_waste
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("mapper_accuracy: floor held");
    }
    ExitCode::SUCCESS
}
