//! Table 8: post-layout area and power for the four 64-multiplier designs.
//!
//! Run with `cargo run --release -p flexagon-bench --bin table8_area_power`.

use flexagon_bench::render::table;
use flexagon_rtl::table8_rows;

fn main() {
    println!("Table 8 — area (mm²) and power (mW), TSMC 28 nm @ 800 MHz\n");
    let rows = table8_rows();
    let mut area_rows = Vec::new();
    let mut power_rows = Vec::new();
    for r in &rows {
        area_rows.push(vec![
            r.kind.name().to_string(),
            format!("{:.2}", r.dn.area_mm2),
            format!("{:.2}", r.mn.area_mm2),
            format!("{:.2}", r.rn.area_mm2),
            format!("{:.2}", r.cache.area_mm2),
            format!("{:.2}", r.psram.area_mm2),
            format!("{:.2}", r.total().area_mm2),
        ]);
        power_rows.push(vec![
            r.kind.name().to_string(),
            format!("{:.2}", r.dn.power_mw),
            format!("{:.2}", r.mn.power_mw),
            format!("{:.0}", r.rn.power_mw),
            format!("{:.0}", r.cache.power_mw),
            format!("{:.0}", r.psram.power_mw),
            format!("{:.0}", r.total().power_mw),
        ]);
    }
    println!("Area results:");
    println!(
        "{}",
        table(
            &["design", "DN", "MN", "RN", "Cache", "PSRAM", "Total"],
            &area_rows
        )
    );
    println!("Power results:");
    println!(
        "{}",
        table(
            &["design", "DN", "MN", "RN", "Cache", "PSRAM", "Total"],
            &power_rows
        )
    );
    println!(
        "Paper totals — area: 4.21 / 5.14 / 4.62 / 5.28 mm²; \
         power: 2396 / 2750 / 2481 / 2998 mW."
    );
}
