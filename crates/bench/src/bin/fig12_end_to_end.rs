//! Fig. 12: end-to-end performance of the five systems on the eight DNN
//! models, as speed-up over the CPU MKL baseline.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig12_end_to_end`.

use flexagon_bench::render::{geomean, speedup, table};
use flexagon_bench::{run_model, SystemId, DEFAULT_SEED};
use flexagon_dnn::suite;

fn main() {
    println!("Fig. 12 — end-to-end speed-up over CPU MKL\n");
    let mut rows = Vec::new();
    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); SystemId::ALL.len()];
    let mut flexagon_vs = [Vec::new(), Vec::new(), Vec::new()];
    for model in suite() {
        eprintln!("running {} ({} layers)...", model.name, model.layers.len());
        let r = run_model(&model, DEFAULT_SEED, false);
        let mut row = vec![model.short.to_string()];
        for (i, system) in SystemId::ALL.into_iter().enumerate() {
            let s = r.speedup_vs_cpu(system);
            per_system[i].push(s);
            row.push(speedup(s));
        }
        flexagon_vs[0]
            .push(r.cycles(SystemId::SigmaLike) as f64 / r.cycles(SystemId::Flexagon) as f64);
        flexagon_vs[1]
            .push(r.cycles(SystemId::SparchLike) as f64 / r.cycles(SystemId::Flexagon) as f64);
        flexagon_vs[2]
            .push(r.cycles(SystemId::GammaLike) as f64 / r.cycles(SystemId::Flexagon) as f64);
        rows.push(row);
    }
    let mut gm = vec!["GEOMEAN".to_string()];
    for s in &per_system {
        gm.push(speedup(geomean(s)));
    }
    rows.push(gm);
    println!(
        "{}",
        table(
            &[
                "model",
                "CPU MKL",
                "SIGMA-like",
                "Sparch-like",
                "GAMMA-like",
                "Flexagon"
            ],
            &rows
        )
    );
    println!(
        "Flexagon speed-up: {} vs SIGMA-like (paper: 4.59x), {} vs Sparch-like \
         (paper: 1.71x), {} vs GAMMA-like (paper: 1.35x)",
        speedup(geomean(&flexagon_vs[0])),
        speedup(geomean(&flexagon_vs[1])),
        speedup(geomean(&flexagon_vs[2])),
    );
    println!(
        "Flexagon vs CPU: {} average (paper: ~31x, range 13x-163x); range {}..{}",
        speedup(geomean(&per_system[4])),
        speedup(per_system[4].iter().copied().fold(f64::INFINITY, f64::min)),
        speedup(per_system[4].iter().copied().fold(0.0, f64::max)),
    );
}
