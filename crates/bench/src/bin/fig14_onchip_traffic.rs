//! Fig. 14: on-chip memory traffic (STA / STR / psums) through the L1
//! hierarchy for the four accelerators on the nine Table 6 layers.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig14_onchip_traffic`.

use flexagon_bench::render::{mib, table};
use flexagon_bench::{run_layer, SystemId, DEFAULT_SEED};
use flexagon_dnn::table6;

fn main() {
    println!("Fig. 14 — on-chip memory traffic in MiB (STA + STR + psums)\n");
    let systems = [
        SystemId::SigmaLike,
        SystemId::SparchLike,
        SystemId::GammaLike,
        SystemId::Flexagon,
    ];
    let mut rows = Vec::new();
    for layer in table6::layers() {
        let r = run_layer(&layer.spec, DEFAULT_SEED);
        for system in systems {
            let t = &r.of(system).traffic;
            rows.push(vec![
                layer.id.to_string(),
                system.name().to_string(),
                mib(t.sta_onchip_bytes),
                mib(t.str_onchip_bytes),
                mib(t.psum_onchip_bytes),
                mib(t.onchip_total()),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "layer",
                "system",
                "STA (MiB)",
                "STR (MiB)",
                "psums (MiB)",
                "total"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: SIGMA-like psums always 0; Sparch-like psums dominate;\n\
         STA is negligible everywhere (paper §5.2)."
    );
}
