//! Fig. 15: STR cache miss rate for the four accelerators on the nine
//! Table 6 layers.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig15_miss_rate`.

use flexagon_bench::render::{pct, table};
use flexagon_bench::{run_layer, SystemId, DEFAULT_SEED};
use flexagon_dnn::table6;

fn main() {
    println!("Fig. 15 — STR cache miss rate\n");
    let systems = [
        SystemId::SigmaLike,
        SystemId::SparchLike,
        SystemId::GammaLike,
        SystemId::Flexagon,
    ];
    let mut rows = Vec::new();
    for layer in table6::layers() {
        let r = run_layer(&layer.spec, DEFAULT_SEED);
        let mut row = vec![layer.id.to_string()];
        for system in systems {
            row.push(pct(r.of(system).cache.miss_rate()));
        }
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &[
                "layer",
                "SIGMA-like",
                "Sparch-like",
                "GAMMA-like",
                "Flexagon"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: Sparch-like lowest (sequential, single pass);\n\
         GAMMA-like elevated on large-B layers (R6, S-R3, V0); SIGMA-like\n\
         elevated when B exceeds the cache and reloads per tile (V0)."
    );
}
