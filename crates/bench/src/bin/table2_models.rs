//! Table 2: the DNN model suite — layer counts, sparsities, compressed
//! sizes and CPU baseline cycles.
//!
//! Run with `cargo run --release -p flexagon-bench --bin table2_models`.

use flexagon_bench::render::table;
use flexagon_bench::DEFAULT_SEED;
use flexagon_core::CpuMkl;
use flexagon_dnn::{suite, ModelStats};

fn main() {
    println!("Table 2 — DNN models (measured on the synthetic suite)\n");
    let cpu = CpuMkl::with_defaults();
    let mut rows = Vec::new();
    for model in suite() {
        eprintln!("measuring {}...", model.name);
        let stats = ModelStats::measure(&model, DEFAULT_SEED);
        let mut cpu_cycles = 0u64;
        for layer in &model.layers {
            let mats = layer.materialize(DEFAULT_SEED);
            cpu_cycles += cpu
                .run(&mats.a, &mats.b)
                .expect("cpu run")
                .report
                .total_cycles;
        }
        rows.push(vec![
            format!("{} ({})", model.name, model.short),
            model.domain.to_string(),
            stats.num_layers.to_string(),
            format!("{:.0}", stats.avg_sp_a),
            format!("{:.0}", stats.avg_sp_b),
            format!("{:.2}", stats.avg_cs_a_mib),
            format!("{:.2}", stats.avg_cs_b_mib),
            format!("{:.3}", stats.min_cs_a_mib),
            format!("{:.3}", stats.min_cs_b_mib),
            format!("{:.2}", stats.max_cs_a_mib),
            format!("{:.2}", stats.max_cs_b_mib),
            format!("{:.1}", cpu_cycles as f64 / 1e6),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "DNN",
                "Appl",
                "nl",
                "AvSpA",
                "AvSpB",
                "AvCsA",
                "AvCsB",
                "MinCsA",
                "MinCsB",
                "MaxCsA",
                "MaxCsB",
                "CPU Mcycles"
            ],
            &rows
        )
    );
    println!(
        "Sizes in MiB. FC/transformer layers are uniformly scaled for\n\
         tractability (DESIGN.md §4), so absolute sizes sit below the paper's;\n\
         per-model orderings and sparsity averages match Table 2."
    );
}
