//! Fig. 17: area of the naive three-network design versus Flexagon's
//! unified MRN, with the mux/demux / SRAM / datapath breakdown.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig17_naive_design`.

use flexagon_bench::render::table;
use flexagon_rtl::naive_design;

fn main() {
    println!("Fig. 17 — naive (3 separate networks) vs unified MRN, area (mm²)\n");
    let mut rows = Vec::new();
    for mults in [64u32, 128, 256] {
        let cmp = naive_design(mults, 1 << 20, 256 << 10);
        for (name, d) in [("Flexagon", cmp.flexagon), ("Naive", cmp.naive)] {
            rows.push(vec![
                format!("{mults}-MS {name}"),
                format!("{:.2}", d.mux_demux.area_mm2),
                format!("{:.2}", d.sram.area_mm2),
                format!("{:.2}", d.datapath.area_mm2),
                format!("{:.2}", d.total().area_mm2),
            ]);
        }
        rows.push(vec![
            format!("{mults}-MS overhead"),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.1}%", 100.0 * cmp.naive_overhead()),
        ]);
    }
    println!(
        "{}",
        table(&["design", "Mux/Demux", "SRAM", "Datapath", "Total"], &rows)
    );
    println!(
        "Paper: at 64 multipliers the naive design's muxes/demuxes add ≈25%\n\
         area over Flexagon, while the three separate networks alone add only\n\
         ≈2% (SRAM dominates); the overhead grows with multiplier count."
    );
}
