//! Offline Matrix Market fixture generator: materialize one `.mtx` file per
//! synthetic generator family so external tools (and the CI round-trip
//! check) can exercise the `spgemm_cli mtx` path without any network
//! downloads of SuiteSparse matrices.
//!
//! Usage: `gen_fixtures [out_dir]` (default `fixtures/`).
//!
//! Every written file is immediately read back through
//! [`io::read_matrix_market`] and compared element-for-element against the
//! in-memory source, so a successful run *is* the serialization round-trip
//! proof — CI runs this binary and then feeds a generated pair back through
//! `spgemm_cli`.

use flexagon_sparse::{gen, io, CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// The fixture set: one representative per generator family, sized so the
/// whole directory stays in the tens of kilobytes.
fn fixtures() -> Vec<(&'static str, CompressedMatrix)> {
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    vec![
        (
            "uniform_96x128.mtx",
            gen::random(96, 128, 0.15, MajorOrder::Row, &mut rng),
        ),
        (
            "uniform_128x64.mtx",
            gen::random(128, 64, 0.25, MajorOrder::Row, &mut rng),
        ),
        (
            "rmat_s8.mtx",
            gen::rmat(8, 1024, (0.57, 0.19, 0.19, 0.05), MajorOrder::Row, &mut rng),
        ),
        (
            "banded_128.mtx",
            gen::banded(128, 6, 0.8, MajorOrder::Row, &mut rng),
        ),
        (
            "blocks_96x96.mtx",
            gen::block_sparse(96, 96, 8, 0.2, MajorOrder::Row, &mut rng),
        ),
        ("diagonal_64.mtx", gen::diagonal(64, 1.5, MajorOrder::Row)),
    ]
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "fixtures".into());
    let out_dir = Path::new(&out_dir);
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));

    for (name, matrix) in fixtures() {
        let path = out_dir.join(name);
        let file =
            File::create(&path).unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        io::write_matrix_market(&matrix, BufWriter::new(file))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));

        // Read-back proof: the on-disk bytes must reconstruct the exact
        // matrix (same structure, bit-identical values).
        let file =
            File::open(&path).unwrap_or_else(|e| panic!("cannot reopen {}: {e}", path.display()));
        let back = io::read_matrix_market(BufReader::new(file), MajorOrder::Row)
            .unwrap_or_else(|e| panic!("round-trip parse of {} failed: {e}", path.display()));
        assert_eq!(
            back,
            matrix,
            "{} did not survive the mtx round-trip",
            path.display()
        );
        println!(
            "{:<20} {:>4}x{:<4} nnz {:>6}  round-trip ok",
            name,
            matrix.rows(),
            matrix.cols(),
            matrix.nnz()
        );
    }
    println!(
        "wrote {} fixtures to {}",
        fixtures().len(),
        out_dir.display()
    );
}
