//! Fig. 18: performance/area of the four accelerators across the eight DNN
//! models (speed-ups and areas both normalized to the SIGMA-like design).
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig18_perf_per_area`.

use flexagon_bench::render::{geomean, table};
use flexagon_bench::{run_layer, run_model, SystemId, DEFAULT_SEED};
use flexagon_dnn::suite;
use flexagon_rtl::{perf_per_area, table8_rows, AcceleratorKind};

fn main() {
    println!("Fig. 18 — performance/area (normalized to SIGMA-like)\n");
    let areas = table8_rows();
    let area_of = |kind: AcceleratorKind| -> f64 {
        areas
            .iter()
            .find(|r| r.kind == kind)
            .expect("all kinds present")
            .total()
            .area_mm2
    };
    let ref_area = area_of(AcceleratorKind::SigmaLike);
    let systems = [
        (SystemId::SigmaLike, AcceleratorKind::SigmaLike),
        (SystemId::SparchLike, AcceleratorKind::SparchLike),
        (SystemId::GammaLike, AcceleratorKind::GammaLike),
        (SystemId::Flexagon, AcceleratorKind::Flexagon),
    ];
    let mut rows = Vec::new();
    let mut efficiencies: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for model in suite() {
        eprintln!("running {}...", model.name);
        let r = run_model(&model, DEFAULT_SEED, false);
        let base = r.cycles(SystemId::SigmaLike) as f64;
        let mut row = vec![model.short.to_string()];
        for (i, (system, kind)) in systems.into_iter().enumerate() {
            let speedup = base / r.cycles(system) as f64;
            let eff = perf_per_area(speedup, area_of(kind), ref_area);
            efficiencies[i].push(eff);
            row.push(format!("{eff:.2}"));
        }
        rows.push(row);
    }
    let mut gm = vec!["GEOMEAN".to_string()];
    for e in &efficiencies {
        gm.push(format!("{:.2}", geomean(e)));
    }
    rows.push(gm);
    println!(
        "{}",
        table(
            &[
                "model",
                "SIGMA-like",
                "Sparch-like",
                "GAMMA-like",
                "Flexagon"
            ],
            &rows
        )
    );
    let f = geomean(&efficiencies[3]);
    println!(
        "Flexagon perf/area advantage: {:.0}% vs SIGMA-like (paper: 265%), \
         {:.0}% vs Sparch-like (paper: 67%), {:.0}% vs GAMMA-like (paper: 18%).",
        100.0 * (f / geomean(&efficiencies[0]) - 1.0),
        100.0 * (f / geomean(&efficiencies[1]) - 1.0),
        100.0 * (f / geomean(&efficiencies[2]) - 1.0),
    );

    // Second view: the nine Table 6 layers at their exact published shapes
    // and sparsities. The synthetic full-model suite scales large layers
    // down (DESIGN.md §4), which shifts the OP/Gust balance; the pinned
    // layers measure perf/area free of that scaling.
    println!("\nPerf/area on the Table 6 representative layers (exact shapes):");
    let mut rows = Vec::new();
    let mut efficiencies: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for layer in flexagon_dnn::table6::layers() {
        let r = run_layer(&layer.spec, DEFAULT_SEED);
        let base = r.of(SystemId::SigmaLike).total_cycles as f64;
        let mut row = vec![layer.id.to_string()];
        for (i, (system, kind)) in systems.into_iter().enumerate() {
            let speedup = base / r.of(system).total_cycles as f64;
            let eff = perf_per_area(speedup, area_of(kind), ref_area);
            efficiencies[i].push(eff);
            row.push(format!("{eff:.2}"));
        }
        rows.push(row);
    }
    let mut gm = vec!["GEOMEAN".to_string()];
    for e in &efficiencies {
        gm.push(format!("{:.2}", geomean(e)));
    }
    rows.push(gm);
    println!(
        "{}",
        table(
            &[
                "layer",
                "SIGMA-like",
                "Sparch-like",
                "GAMMA-like",
                "Flexagon"
            ],
            &rows
        )
    );
}
