//! Fig. 1: the dataflow that obtains the best performance per layer across
//! the eight DNN models.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig01_best_dataflow`.
//! For MobileBERT the paper plots only the first 60 layers; we do the same
//! for the plot series but count all layers in the summary.

use flexagon_bench::{run_model, DEFAULT_SEED};
use flexagon_core::Dataflow;
use flexagon_dnn::suite;

fn tag(d: Dataflow) -> &'static str {
    match d {
        Dataflow::InnerProductM | Dataflow::InnerProductN => "IP",
        Dataflow::OuterProductM | Dataflow::OuterProductN => "OP",
        Dataflow::GustavsonM | Dataflow::GustavsonN => "Gust",
    }
}

fn main() {
    println!("Fig. 1 — best dataflow per layer (IP / OP / Gust)\n");
    for model in suite() {
        eprintln!("running {} ({} layers)...", model.name, model.layers.len());
        let results = run_model(&model, DEFAULT_SEED, false);
        let shown = if model.short == "MB" {
            60
        } else {
            results.winners.len()
        };
        let series: Vec<&str> = results.winners[..shown].iter().map(|&d| tag(d)).collect();
        println!("{:<4} {}", model.short, series.join(" "));
        let mut counts = [0usize; 3];
        for &w in &results.winners {
            match tag(w) {
                "IP" => counts[0] += 1,
                "OP" => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        let n = results.winners.len();
        println!(
            "     summary: IP {}/{n}, OP {}/{n}, Gust {}/{n}\n",
            counts[0], counts[1], counts[2]
        );
    }
}
