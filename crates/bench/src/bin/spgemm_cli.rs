//! General-purpose SpMSpM runner: multiply two Matrix Market files — or a
//! synthetic R-MAT graph by itself — on any accelerator and mapping
//! strategy, and print the full cycle/traffic/energy report.
//!
//! Usage:
//!   `spgemm_cli mtx <a.mtx> <b.mtx> [strategy] [--format F]`
//!   `spgemm_cli rmat <scale> <edges> [strategy] [--format F]`
//!   `spgemm_cli help`
//!
//! `strategy` is `oracle` (alias `auto`; sweep all six dataflows and keep
//! the best — the default), `heuristic` (one run, dataflow picked by the
//! calibrated cost model — the production fast path), or a fixed dataflow
//! token: ip-m, op-m, gust-m, ip-n, op-n, gust-n.
//!
//! The storage format is pinned like the dataflow: either with `--format`
//! (`auto`, `soa`, `bcsr4`, `bcsr8`, `ell`, `q8`) or inline as a
//! `strategy@format` spec (`heuristic@bcsr4`). Omitted, the engine default
//! applies; `auto` lets the mapper pick a lossless format from the
//! stationary operand's shape.

use flexagon_core::{Accelerator, ExecutionRequest, Flexagon, FormatChoice, MappingStrategy};
use flexagon_rtl::energy::{average_power_mw, energy_of, EnergyParams};
use flexagon_sparse::{gen, io, CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::io::BufReader;

fn load_mtx(path: &str) -> CompressedMatrix {
    let file = File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    io::read_matrix_market(BufReader::new(file), MajorOrder::Row)
        .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: spgemm_cli mtx <a.mtx> <b.mtx> [strategy] [--format F] \
         | rmat <scale> <edges> [strategy] [--format F]\n\
         strategy: oracle (default) | heuristic | ip-m | op-m | gust-m | ip-n | op-n | gust-n\n\
         format:   auto | soa | bcsr4 | bcsr8 | ell | q8 (also inline: strategy@format)";
    // `--format` may appear anywhere; strip it before positional parsing.
    let mut format_flag: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--format") {
        args.remove(i);
        if i < args.len() {
            format_flag = Some(args.remove(i));
        } else {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
    let (a, b, strategy_arg) = match args.first().map(String::as_str) {
        Some("mtx") => {
            let a = load_mtx(args.get(1).expect(usage));
            let b = load_mtx(args.get(2).expect(usage));
            (a, b, args.get(3).cloned())
        }
        Some("rmat") => {
            let scale: u32 = args.get(1).expect(usage).parse().expect("scale");
            let edges: usize = args.get(2).expect(usage).parse().expect("edges");
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            // Squaring an R-MAT graph: the canonical SpGEMM graph kernel
            // (two-hop neighbourhoods).
            let g = gen::rmat(
                scale,
                edges,
                (0.57, 0.19, 0.19, 0.05),
                MajorOrder::Row,
                &mut rng,
            );
            (g.clone(), g, args.get(3).cloned())
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    println!(
        "A: {}x{} nnz {} ({:.2}% sparse)  B: {}x{} nnz {} ({:.2}% sparse)",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.sparsity_percent(),
        b.rows(),
        b.cols(),
        b.nnz(),
        b.sparsity_percent()
    );

    let accel = Flexagon::with_defaults();
    let (strategy, mut format) =
        MappingStrategy::parse_spec(strategy_arg.as_deref().unwrap_or("oracle"))
            .unwrap_or_else(|e| panic!("{e}"));
    if let Some(f) = format_flag {
        format = f.parse().unwrap_or_else(|e: String| panic!("{e}"));
    }
    let ex = accel
        .execute(
            ExecutionRequest::new(&a, &b)
                .strategy(strategy)
                .format_choice(format),
        )
        .expect("run");
    let (df, out) = (ex.dataflow, ex.output);
    match strategy {
        MappingStrategy::Fixed(_) => {}
        _ => println!("{strategy} selected dataflow: {df}"),
    }
    if format != FormatChoice::Config {
        println!("{format} selected storage format: {}", ex.format);
    }
    let r = &out.report;
    println!("\n== report ({df}) ==");
    println!("cycles            {:>14}", r.total_cycles);
    println!(
        "  stationary      {:>14}",
        r.phases.of(flexagon_sim::Phase::Stationary)
    );
    println!(
        "  streaming       {:>14}",
        r.phases.of(flexagon_sim::Phase::Streaming)
    );
    println!(
        "  merging         {:>14}",
        r.phases.of(flexagon_sim::Phase::Merging)
    );
    println!("tiles             {:>14}", r.tiles);
    println!("multiplications   {:>14}", r.multiplications);
    println!("output nnz        {:>14}", out.c.nnz());
    println!("cache miss rate   {:>13.2}%", 100.0 * r.cache.miss_rate());
    println!(
        "on-chip traffic   {:>11.2} MiB",
        r.onchip_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "off-chip traffic  {:>11.2} MiB",
        r.offchip_bytes() as f64 / (1 << 20) as f64
    );
    let e = energy_of(r, &EnergyParams::default());
    println!("energy            {:>11.2} uJ", e.total_uj());
    println!("  on-chip share   {:>13.1}%", 100.0 * e.onchip_fraction());
    println!(
        "avg power         {:>11.1} mW @ 800 MHz",
        average_power_mw(&e, r.total_cycles, 800e6)
    );
}
